//! Graph + topic-space generation from a [`DatasetSpec`].

use crate::spec::{DatasetKind, DatasetSpec};
use pit_graph::stats::{weak_components, GraphStats};
use pit_graph::{CsrGraph, GraphBuilder, NodeId, ProbabilityModel};
use pit_topics::{generate_topic_space, TopicSpace, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// A fully generated dataset: graph, topics, vocabulary and provenance.
pub struct Dataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// The social graph.
    pub graph: CsrGraph,
    /// The topic space over the graph's nodes.
    pub space: TopicSpace,
    /// Keyword vocabulary (hub query terms first).
    pub vocab: Vocabulary,
}

impl Dataset {
    /// The Figure-4 summary row: (name, size, degree range, type).
    pub fn figure4_row(&self) -> (String, usize, String, &'static str) {
        let stats = GraphStats::compute(&self.graph);
        (
            self.spec.name.clone(),
            stats.node_count,
            format!("{}-{}", stats.min_degree, stats.max_degree),
            self.spec.type_label(),
        )
    }
}

/// Generate a dataset deterministically from its spec.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut builder = match spec.kind {
        DatasetKind::PowerLaw { edges_per_node } => {
            preferential_attachment(spec.nodes, edges_per_node, &mut rng)
        }
        DatasetKind::DegreeBand { lo, hi } => degree_band(spec.nodes, lo, hi, &mut rng),
    };
    repair_connectivity(&mut builder, &mut rng);
    let graph = builder
        .build_with_model(ProbabilityModel::WeightedCascade, &mut rng)
        .expect("generated graph is valid");
    let (space, vocab) = generate_topic_space(spec.nodes, &spec.topics);
    Dataset {
        spec: spec.clone(),
        graph,
        space,
        vocab,
    }
}

/// Directed preferential attachment: each arriving node attaches
/// `edges_per_node` follow edges toward endpoints sampled proportionally to
/// current degree (via the standard endpoint-list trick). A follow of `p` by
/// `n` creates the influence edge `p → n`; with probability 0.25 the
/// reciprocal edge is added too (followers also influence followees,
/// weakly), giving the graph non-trivial cycles like a real social network.
fn preferential_attachment(
    nodes: usize,
    edges_per_node: usize,
    rng: &mut SmallRng,
) -> GraphBuilder {
    assert!(nodes >= 2, "need at least two nodes");
    let m = edges_per_node.max(1);
    let mut b = GraphBuilder::with_capacity(nodes, nodes * m);
    // Endpoint multiset: every edge endpoint appears once; sampling uniform
    // from it is sampling ∝ degree.
    let mut endpoints: Vec<u32> = vec![0, 1];
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let add = |b: &mut GraphBuilder,
               seen: &mut FxHashSet<(u32, u32)>,
               endpoints: &mut Vec<u32>,
               s: u32,
               d: u32| {
        if s != d && seen.insert((s, d)) {
            b.add_edge_unweighted(NodeId(s), NodeId(d))
                .expect("generator edge valid");
            endpoints.push(s);
            endpoints.push(d);
        }
    };
    add(&mut b, &mut seen, &mut endpoints, 0, 1);
    for n in 2..nodes as u32 {
        for _ in 0..m {
            let p = endpoints[rng.gen_range(0..endpoints.len())];
            // Popular node influences the newcomer.
            add(&mut b, &mut seen, &mut endpoints, p, n);
            if rng.gen::<f64>() < 0.25 {
                add(&mut b, &mut seen, &mut endpoints, n, p);
            }
        }
    }
    b
}

/// Degree-banded generation: every node gets an out-degree uniform in
/// `[lo, hi]` toward uniformly random distinct targets.
fn degree_band(nodes: usize, lo: usize, hi: usize, rng: &mut SmallRng) -> GraphBuilder {
    assert!(lo >= 1 && hi >= lo, "invalid degree band [{lo}, {hi}]");
    assert!(nodes > hi, "band upper bound must be below the node count");
    let mut b = GraphBuilder::with_capacity(nodes, nodes * (lo + hi) / 2);
    let mut targets: FxHashSet<u32> = FxHashSet::default();
    for u in 0..nodes as u32 {
        let d = rng.gen_range(lo..=hi);
        targets.clear();
        while targets.len() < d {
            let v = rng.gen_range(0..nodes as u32);
            if v != u {
                targets.insert(v);
            }
        }
        for &v in &targets {
            b.add_edge_unweighted(NodeId(u), NodeId(v))
                .expect("generator edge valid");
        }
    }
    b
}

/// Bridge every non-giant weak component to the giant one (the paper: "To
/// ensure each generated dataset is a connected graph, a few synthetic edges
/// among the close nodes across disconnected components are added").
fn repair_connectivity(b: &mut GraphBuilder, rng: &mut SmallRng) {
    // Build a temporary graph to find components. Cheap relative to
    // generation; runs once.
    let snapshot = b.clone().build_with_model(
        ProbabilityModel::Uniform(0.5),
        &mut SmallRng::seed_from_u64(0),
    );
    let Ok(snapshot) = snapshot else {
        return;
    };
    let (labels, count) = weak_components(&snapshot);
    if count <= 1 {
        return;
    }
    // Giant = most frequent label.
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let giant = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("at least one component");
    // One representative per minor component.
    let mut rep: Vec<Option<u32>> = vec![None; count];
    for (node, &l) in labels.iter().enumerate() {
        if rep[l as usize].is_none() {
            rep[l as usize] = Some(node as u32);
        }
    }
    let giant_nodes: Vec<u32> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == giant)
        .map(|(n, _)| n as u32)
        .collect();
    for (l, r) in rep.into_iter().enumerate() {
        if l as u32 == giant {
            continue;
        }
        let Some(r) = r else { continue };
        let anchor = giant_nodes[rng.gen_range(0..giant_nodes.len())];
        // Bridge both ways so influence can flow into and out of the
        // repaired component.
        let _ = b.add_edge_unweighted(NodeId(anchor), NodeId(r));
        let _ = b.add_edge_unweighted(NodeId(r), NodeId(anchor));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{paper_specs, scaled_topic_config};

    fn small_spec(kind: DatasetKind, nodes: usize) -> DatasetSpec {
        DatasetSpec {
            name: "test".into(),
            nodes,
            kind,
            topics: scaled_topic_config(nodes, 7),
            seed: 42,
        }
    }

    #[test]
    fn power_law_is_heavy_tailed_and_connected() {
        let ds = generate(&small_spec(
            DatasetKind::PowerLaw { edges_per_node: 3 },
            3_000,
        ));
        let stats = GraphStats::compute(&ds.graph);
        assert_eq!(stats.node_count, 3_000);
        assert_eq!(stats.weak_components, 1, "must be connected after repair");
        // Heavy tail: max degree far above the mean.
        assert!(
            stats.max_degree as f64 > 10.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn degree_band_respects_band() {
        let ds = generate(&small_spec(
            DatasetKind::DegreeBand { lo: 5, hi: 10 },
            2_000,
        ));
        // Out-degree within the band (+2 possible repair edges).
        for u in ds.graph.nodes() {
            let d = ds.graph.out_degree(u);
            assert!(
                (5..=12).contains(&d),
                "node {u} out-degree {d} outside band"
            );
        }
        let stats = GraphStats::compute(&ds.graph);
        assert_eq!(stats.weak_components, 1);
    }

    #[test]
    fn deterministic_generation() {
        let spec = small_spec(DatasetKind::PowerLaw { edges_per_node: 3 }, 1_500);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn weighted_cascade_probabilities() {
        let ds = generate(&small_spec(DatasetKind::DegreeBand { lo: 4, hi: 8 }, 1_200));
        // Each in-edge of v carries 1/in_degree(v).
        for v in ds.graph.nodes().take(100) {
            let indeg = ds.graph.in_degree(v);
            for (_, p) in ds.graph.in_edges(v).iter() {
                assert!((p - 1.0 / indeg as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn topics_cover_nodes() {
        let ds = generate(&small_spec(
            DatasetKind::PowerLaw { edges_per_node: 3 },
            1_200,
        ));
        assert_eq!(ds.space.node_count(), 1_200);
        assert!(ds.space.topic_count() >= 100);
        for t in ds.space.topics() {
            assert!(!ds.space.topic_nodes(t).is_empty());
        }
    }

    #[test]
    fn figure4_rows_render() {
        let spec = &paper_specs(100)[0]; // data_2k, small for test speed
        let ds = generate(spec);
        let (name, size, degrees, kind) = ds.figure4_row();
        assert_eq!(name, "data_2k");
        assert_eq!(size, 2_000);
        assert!(degrees.contains('-'));
        assert!(kind.contains("power law"));
    }
}
