//! Dataset specifications mirroring the paper's Figure 4.

use pit_topics::SyntheticTopicConfig;

/// Structural family of a generated graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Heavy-tailed "real-like" graph via preferential attachment (stands in
    /// for the Twitter crawl and for data_2k's wide 1–500 band).
    PowerLaw {
        /// Edges attached per arriving node.
        edges_per_node: usize,
    },
    /// Degree-banded synthetic graph: every node's out-degree is uniform in
    /// `[lo, hi]`, targets sampled uniformly (the paper's degree-range
    /// resampling scheme).
    DegreeBand {
        /// Minimum out-degree.
        lo: usize,
        /// Maximum out-degree.
        hi: usize,
    },
}

/// Everything needed to deterministically generate one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Paper-style name ("data_2k", "data_350k", …).
    pub name: String,
    /// Node count after scaling.
    pub nodes: usize,
    /// Graph family.
    pub kind: DatasetKind,
    /// Topic-space generation parameters.
    pub topics: SyntheticTopicConfig,
    /// Master seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's Figure-4 "Type" column for this spec.
    pub fn type_label(&self) -> &'static str {
        match self.kind {
            DatasetKind::PowerLaw { .. } => "Real-like (power law)",
            DatasetKind::DegreeBand { .. } => "Synthetic (degree band)",
        }
    }

    /// The paper's Figure-4 "Node Degree" column (target out-degree range).
    pub fn degree_label(&self) -> String {
        match self.kind {
            DatasetKind::PowerLaw { edges_per_node } => {
                format!("power law (m = {edges_per_node})")
            }
            DatasetKind::DegreeBand { lo, hi } => format!("{lo}-{hi}"),
        }
    }
}

/// Topic configuration scaled to a node count: keeps the paper's shape
/// statistics (hundreds of q-related topics per keyword, Zipf-skewed
/// popularity, tens of topics per user).
pub fn scaled_topic_config(nodes: usize, seed: u64) -> SyntheticTopicConfig {
    // One topic per ~10 users, at least 100; hub query terms sized so one
    // keyword matches ~8% of the topic space. The per-user topic mean of 64
    // puts the average q-related |V_t| at ~640 = the paper's 20,000 topic
    // nodes per q-related topic divided by the reference scale of 30 — the
    // |V_t|-to-representative ratio is what drives the paper's efficiency
    // ordering (summarized search ≪ BasePropagation), so it must survive
    // scaling.
    let topic_count = (nodes / 10).max(100);
    let query_term_count = (topic_count / 60).clamp(8, 64);
    SyntheticTopicConfig {
        topic_count,
        query_term_count,
        tail_term_count: (topic_count / 2).max(200),
        terms_per_topic: 8,
        topics_per_node_mean: 64.0,
        zipf_exponent: 0.9,
        seed,
    }
}

/// The four datasets of Figure 4, with node counts and degree bands divided
/// by `scale` (`scale = 1` reproduces the paper's sizes; the default
/// experiments use `scale = 10`). `data_2k` is never scaled — it anchors the
/// ground-truth comparison.
pub fn paper_specs(scale: usize) -> Vec<DatasetSpec> {
    assert!(scale >= 1, "scale must be at least 1");
    let s = |n: usize| (n / scale).max(1000);
    let band = |d: usize| (d / scale).max(2);
    // data_2k keeps the paper's query statistics unscaled: each query tag
    // matches 500+ topics (Section 6.2) and users mention ~200 topics each,
    // so the k = 10..100 sweeps of Figures 5/10 keep their paper selectivity.
    let data_2k_topics = SyntheticTopicConfig {
        topic_count: 4_000,
        query_term_count: 8,
        tail_term_count: 2_000,
        terms_per_topic: 8,
        topics_per_node_mean: 200.0,
        zipf_exponent: 0.9,
        seed: 0xD2C0,
    };
    vec![
        DatasetSpec {
            name: "data_2k".into(),
            nodes: 2_000,
            kind: DatasetKind::PowerLaw { edges_per_node: 4 },
            topics: data_2k_topics,
            seed: 0xD2C0,
        },
        DatasetSpec {
            name: "data_350k".into(),
            nodes: s(350_000),
            kind: DatasetKind::DegreeBand {
                lo: band(51),
                hi: band(100),
            },
            topics: scaled_topic_config(s(350_000), 0xD350),
            seed: 0xD350,
        },
        DatasetSpec {
            name: "data_1.2m".into(),
            nodes: s(1_200_000),
            kind: DatasetKind::DegreeBand {
                lo: band(101),
                hi: band(500),
            },
            topics: scaled_topic_config(s(1_200_000), 0xD120),
            seed: 0xD120,
        },
        DatasetSpec {
            name: "data_3m".into(),
            nodes: s(3_000_000),
            kind: DatasetKind::PowerLaw { edges_per_node: 4 },
            topics: scaled_topic_config(s(3_000_000), 0xD300),
            seed: 0xD300,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_paper_datasets() {
        let specs = paper_specs(10);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["data_2k", "data_350k", "data_1.2m", "data_3m"]);
        assert_eq!(specs[0].nodes, 2_000);
        assert_eq!(specs[1].nodes, 35_000);
        assert_eq!(specs[2].nodes, 120_000);
        assert_eq!(specs[3].nodes, 300_000);
    }

    #[test]
    fn scale_one_matches_paper_sizes() {
        let specs = paper_specs(1);
        assert_eq!(specs[1].nodes, 350_000);
        assert_eq!(specs[2].nodes, 1_200_000);
        assert_eq!(specs[3].nodes, 3_000_000);
        assert_eq!(specs[1].kind, DatasetKind::DegreeBand { lo: 51, hi: 100 });
    }

    #[test]
    fn labels_render() {
        let specs = paper_specs(10);
        assert!(specs[0].type_label().contains("power law"));
        assert_eq!(specs[1].degree_label(), "5-10");
        assert!(specs[1].type_label().contains("Synthetic"));
    }

    #[test]
    fn topic_config_scales() {
        let small = scaled_topic_config(2_000, 1);
        let large = scaled_topic_config(300_000, 1);
        assert!(large.topic_count > small.topic_count);
        assert!(large.query_term_count >= small.query_term_count);
        // Topics per keyword in the paper's hundreds at large scale.
        let per_keyword = large.topic_count / large.query_term_count;
        assert!(per_keyword >= 100, "topics per keyword = {per_keyword}");
    }
}
