//! # pit-datasets
//!
//! Synthetic social-network datasets following the paper's own recipe
//! (Section 6.1 and Figure 4): one "real-like" heavy-tailed graph and three
//! degree-banded synthetic graphs derived from it, with connectivity repair
//! ("a few synthetic edges among the close nodes across disconnected
//! components are added").
//!
//! The paper's 2011 Twitter crawl is proprietary; per DESIGN.md §5 the
//! substitution is a generator controlling exactly the statistics the
//! algorithms are sensitive to — node count, degree distribution, topic
//! popularity skew and topics-per-keyword. Node counts and degree bands are
//! scaled by a configurable factor (default 10×) so every figure regenerates
//! on one machine:
//!
//! | paper      | nodes  | degree band | here (scale 10) | band |
//! |------------|--------|-------------|-----------------|------|
//! | data_2k    | 2 000  | 1–500       | 2 000           | preferential attachment |
//! | data_350k  | 350 k  | 51–100      | 35 k            | 5–10 |
//! | data_1.2m  | 1.2 M  | 101–500     | 120 k           | 10–50 |
//! | data_3m    | 3 M    | 0–695 509   | 300 k           | power law |

#![forbid(unsafe_code)]

pub mod generator;
pub mod resample;
pub mod spec;

pub use generator::{generate, Dataset};
pub use resample::{resample_by_degree, Resampled};
pub use spec::{paper_specs, DatasetKind, DatasetSpec};
