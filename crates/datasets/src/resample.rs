//! Degree-band resampling — the paper's own derivation of its synthetic
//! datasets.
//!
//! Section 6.1: "Using a similar node degree distribution, three synthetic
//! datasets are produced from the nodes with degree range 51–100, 101–500,
//! and 500–1000." This module implements that derivation directly: extract
//! the subgraph induced by the nodes whose total degree falls in a band,
//! relabel densely, carry the topic assignments over, and bridge any
//! disconnected components (the paper adds "a few synthetic edges" for the
//! same reason).
//!
//! The generative [`crate::generator`] path and this extractive path are
//! complementary: generation controls statistics exactly; resampling
//! reproduces the paper's provenance (synthetic-from-real) and preserves
//! whatever correlations the source graph had.

use pit_graph::stats::weak_components;
use pit_graph::{CsrGraph, GraphBuilder, NodeId};
use pit_topics::{TopicSpace, TopicSpaceBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The induced subgraph plus the mapping back to the source graph.
pub struct Resampled {
    /// The induced graph (dense ids `0..kept.len()`).
    pub graph: CsrGraph,
    /// `kept[new_id] = old NodeId` in the source graph.
    pub kept: Vec<NodeId>,
    /// The topic space restricted to the kept nodes (same topic ids as the
    /// source space; topics whose members all fell outside the band become
    /// empty).
    pub space: TopicSpace,
}

/// Extract the subgraph induced by nodes with total degree in `[lo, hi]`,
/// carrying `space`'s assignments over and bridging weak components.
///
/// Edge probabilities are inherited from the source graph. Returns `None`
/// when fewer than two nodes fall in the band.
pub fn resample_by_degree(
    g: &CsrGraph,
    space: &TopicSpace,
    lo: usize,
    hi: usize,
    seed: u64,
) -> Option<Resampled> {
    assert!(lo <= hi, "invalid degree band [{lo}, {hi}]");
    let mut new_id = vec![u32::MAX; g.node_count()];
    let mut kept: Vec<NodeId> = Vec::new();
    for u in g.nodes() {
        let d = g.out_degree(u) + g.in_degree(u);
        if (lo..=hi).contains(&d) {
            new_id[u.index()] = kept.len() as u32;
            kept.push(u);
        }
    }
    if kept.len() < 2 {
        return None;
    }

    let mut builder = GraphBuilder::new(kept.len());
    for (ni, &old) in kept.iter().enumerate() {
        for (v, p) in g.out_edges(old).iter() {
            let nv = new_id[v.index()];
            if nv != u32::MAX {
                builder
                    .add_edge(NodeId(ni as u32), NodeId(nv), p)
                    .expect("induced edge valid");
            }
        }
    }

    // Bridge components as the paper does. Inherited probabilities don't
    // exist for synthetic bridges; use the source graph's mean edge
    // probability so the bridges are unremarkable.
    let mean_prob = if g.edge_count() > 0 {
        g.nodes().map(|u| g.out_prob_mass(u)).sum::<f64>() / g.edge_count() as f64
    } else {
        0.5
    };
    bridge_components(&mut builder, mean_prob.clamp(0.01, 1.0), seed);
    let graph = builder.build().expect("resampled graph valid");

    // Restrict the topic space.
    let mut tb = TopicSpaceBuilder::new(kept.len(), space.term_count());
    for t in space.topics() {
        let terms = space.topic_terms(t).to_vec();
        let nt = tb.add_topic(terms);
        debug_assert_eq!(nt, t);
        for &member in space.topic_nodes(t) {
            let ni = new_id[member.index()];
            if ni != u32::MAX {
                tb.assign(NodeId(ni), nt);
            }
        }
    }

    Some(Resampled {
        graph,
        kept,
        space: tb.build(),
    })
}

fn bridge_components(b: &mut GraphBuilder, prob: f64, seed: u64) {
    let Ok(snapshot) = b.clone().build() else {
        return;
    };
    let (labels, count) = weak_components(&snapshot);
    if count <= 1 {
        return;
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let giant = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("components exist");
    let giant_nodes: Vec<u32> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == giant)
        .map(|(n, _)| n as u32)
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rep: Vec<Option<u32>> = vec![None; count];
    for (node, &l) in labels.iter().enumerate() {
        if rep[l as usize].is_none() {
            rep[l as usize] = Some(node as u32);
        }
    }
    for (l, r) in rep.into_iter().enumerate() {
        if l as u32 == giant {
            continue;
        }
        let Some(r) = r else { continue };
        let anchor = giant_nodes[rng.gen_range(0..giant_nodes.len())];
        let _ = b.add_edge(NodeId(anchor), NodeId(r), prob);
        let _ = b.add_edge(NodeId(r), NodeId(anchor), prob);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec::{scaled_topic_config, DatasetKind, DatasetSpec};
    use pit_graph::stats::GraphStats;

    fn source() -> crate::generator::Dataset {
        generate(&DatasetSpec {
            name: "src".into(),
            nodes: 3_000,
            kind: DatasetKind::PowerLaw { edges_per_node: 4 },
            topics: scaled_topic_config(3_000, 9),
            seed: 9,
        })
    }

    #[test]
    fn band_membership_and_connectivity() {
        let ds = source();
        let r = resample_by_degree(&ds.graph, &ds.space, 5, 12, 42).expect("band non-empty");
        assert!(r.kept.len() >= 100, "band too small: {}", r.kept.len());
        // Every kept node had source degree within the band.
        for &old in &r.kept {
            let d = ds.graph.out_degree(old) + ds.graph.in_degree(old);
            assert!((5..=12).contains(&d));
        }
        let stats = GraphStats::compute(&r.graph);
        assert_eq!(stats.weak_components, 1, "must be bridged");
    }

    #[test]
    fn edges_inherit_probabilities() {
        let ds = source();
        let r = resample_by_degree(&ds.graph, &ds.space, 5, 12, 42).unwrap();
        // Spot-check: every induced edge that isn't a bridge exists in the
        // source with the same probability.
        let mut checked = 0;
        for (u, v, p) in r.graph.edges().take(500) {
            let (ou, ov) = (r.kept[u.index()], r.kept[v.index()]);
            if let Some(op) = ds.graph.edge_prob(ou, ov) {
                assert!((op - p).abs() < 1e-12);
                checked += 1;
            }
        }
        assert!(checked > 50, "too few inherited edges checked: {checked}");
    }

    #[test]
    fn topics_carry_over() {
        let ds = source();
        let r = resample_by_degree(&ds.graph, &ds.space, 5, 12, 42).unwrap();
        assert_eq!(r.space.topic_count(), ds.space.topic_count());
        assert_eq!(r.space.node_count(), r.kept.len());
        // Members map back to source members of the same topic.
        let mut verified = 0;
        for t in r.space.topics() {
            for &m in r.space.topic_nodes(t) {
                let old = r.kept[m.index()];
                assert!(
                    ds.space.topic_nodes(t).contains(&old),
                    "topic {t}: node {old} not a source member"
                );
                verified += 1;
            }
        }
        assert!(verified > 100, "too few memberships verified");
    }

    #[test]
    fn empty_band_returns_none() {
        let ds = source();
        assert!(resample_by_degree(&ds.graph, &ds.space, 100_000, 200_000, 1).is_none());
    }

    #[test]
    fn deterministic() {
        let ds = source();
        let a = resample_by_degree(&ds.graph, &ds.space, 5, 12, 7).unwrap();
        let b = resample_by_degree(&ds.graph, &ds.space, 5, 12, 7).unwrap();
        assert_eq!(a.kept, b.kept);
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }
}
