//! Generation determinism: the same spec must yield byte-identical corpora
//! on every run — the guarantee that lets snapshots, benchmarks, and the
//! serving layer all agree on what "dataset X, seed S" means.

use pit_datasets::{generate, DatasetKind, DatasetSpec};

fn spec(nodes: usize, seed: u64) -> DatasetSpec {
    DatasetSpec {
        name: format!("det-{seed}"),
        nodes,
        kind: DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(nodes, seed),
        seed,
    }
}

/// Encode every artifact so the comparison is bit-level, not structural.
fn fingerprint(spec: &DatasetSpec) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let ds = generate(spec);
    (
        pit_graph::snapshot::encode(&ds.graph).to_vec(),
        pit_topics::snapshot::encode_space(&ds.space).to_vec(),
        pit_topics::snapshot::encode_vocab(&ds.vocab).to_vec(),
    )
}

#[test]
fn same_spec_is_byte_identical() {
    let s = spec(800, 42);
    let (g1, t1, v1) = fingerprint(&s);
    let (g2, t2, v2) = fingerprint(&s);
    assert_eq!(g1, g2, "graph bytes diverged across runs");
    assert_eq!(t1, t2, "topic-space bytes diverged across runs");
    assert_eq!(v1, v2, "vocabulary bytes diverged across runs");
}

#[test]
fn different_seeds_actually_differ() {
    let (g1, t1, _) = fingerprint(&spec(800, 1));
    let (g2, t2, _) = fingerprint(&spec(800, 2));
    assert!(
        g1 != g2 || t1 != t2,
        "seeds 1 and 2 produced identical corpora — generator ignores the seed"
    );
}

#[test]
fn paper_specs_are_deterministic() {
    // The scaled-down paper spec used across tests and benches must also be
    // stable run to run.
    let mut specs = pit_datasets::paper_specs(200);
    let s = specs.remove(0);
    let (g1, t1, v1) = fingerprint(&s);
    let (g2, t2, v2) = fingerprint(&s);
    assert_eq!(g1, g2);
    assert_eq!(t1, t2);
    assert_eq!(v1, v2);
}
