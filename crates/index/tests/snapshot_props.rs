//! Snapshot codec robustness for the propagation index: decoding must be an
//! exact inverse of encoding on valid input and must return `SnapshotError`
//! — never panic — on truncated or corrupted input.

use pit_graph::{GraphBuilder, NodeId};
use pit_index::{snapshot, PropIndexConfig, PropagationIndex};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (3usize..=12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..0.9)
            .prop_filter("no self-loops", |(a, b, _)| a != b);
        proptest::collection::vec(edge, n..3 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b, _)| seen.insert((a, b)));
            (n, es)
        })
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)], theta: f64) -> PropagationIndex {
    let mut b = GraphBuilder::new(n);
    for &(u, v, p) in edges {
        b.add_edge(NodeId(u), NodeId(v), p).unwrap();
    }
    PropagationIndex::build(&b.build().unwrap(), PropIndexConfig::with_theta(theta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode ∘ decode ∘ encode is the identity on bytes.
    #[test]
    fn roundtrip_is_byte_exact((n, edges) in graph_strategy(), theta in 0.005f64..0.1) {
        let bytes = snapshot::encode(&build(n, &edges, theta));
        let restored = snapshot::decode(&bytes).expect("valid snapshot decodes");
        prop_assert_eq!(snapshot::encode(&restored).as_ref(), bytes.as_ref());
    }

    /// Every strict prefix of a snapshot is rejected with an error.
    #[test]
    fn truncation_always_errors((n, edges) in graph_strategy(), cut in 0usize..10_000) {
        let bytes = snapshot::encode(&build(n, &edges, 0.01));
        let cut = cut % bytes.len();
        prop_assert!(snapshot::decode(&bytes[..cut]).is_err());
    }

    /// Single-byte corruption anywhere never panics: either a clean error or
    /// (when the byte is immaterial, e.g. inside a float) a decoded index.
    #[test]
    fn corruption_never_panics(
        (n, edges) in graph_strategy(),
        pos in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let bytes = snapshot::encode(&build(n, &edges, 0.01));
        let mut corrupt = bytes.to_vec();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= xor;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            snapshot::decode(&corrupt).map(|_| ())
        }));
        prop_assert!(outcome.is_ok(), "decode panicked on byte {} ^ {}", pos, xor);
    }
}
