//! Property-based tests for the personalized propagation index.

use pit_graph::{GraphBuilder, NodeId};
use pit_index::{PropIndexConfig, PropagationIndex};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (3usize..=14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..0.95)
            .prop_filter("no self-loops", |(a, b, _)| a != b);
        proptest::collection::vec(edge, n..4 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b, _)| seen.insert((a, b)));
            (n, es)
        })
    })
}

fn build(
    n: usize,
    edges: &[(u32, u32, f64)],
    theta: f64,
) -> (pit_graph::CsrGraph, PropagationIndex) {
    let mut b = GraphBuilder::new(n);
    for &(u, v, p) in edges {
        b.add_edge(NodeId(u), NodeId(v), p).unwrap();
    }
    let g = b.build().unwrap();
    let idx = PropagationIndex::build(&g, PropIndexConfig::with_theta(theta));
    (g, idx)
}

/// Exhaustive thresholded simple-path sum (reference implementation):
/// aggregate of all simple paths `u ⇢ v` whose *every prefix* keeps the
/// running product ≥ θ (the same pruning rule the index applies branch-wise),
/// up to the default depth cap.
fn reference_gamma(
    g: &pit_graph::CsrGraph,
    v: NodeId,
    theta: f64,
    max_depth: usize,
) -> Vec<(NodeId, f64)> {
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &pit_graph::CsrGraph,
        cur: NodeId,
        prob: f64,
        depth: usize,
        theta: f64,
        max_depth: usize,
        on_path: &mut [bool],
        acc: &mut std::collections::BTreeMap<u32, f64>,
    ) {
        if depth >= max_depth {
            return;
        }
        for (u, p) in g.in_edges(cur).iter() {
            if on_path[u.index()] {
                continue;
            }
            let pp = prob * p;
            if pp < theta {
                continue;
            }
            *acc.entry(u.0).or_insert(0.0) += pp;
            on_path[u.index()] = true;
            dfs(g, u, pp, depth + 1, theta, max_depth, on_path, acc);
            on_path[u.index()] = false;
        }
    }
    let mut on_path = vec![false; g.node_count()];
    on_path[v.index()] = true;
    let mut acc = std::collections::BTreeMap::new();
    dfs(g, v, 1.0, 0, theta, max_depth, &mut on_path, &mut acc);
    acc.into_iter().map(|(n, p)| (NodeId(n), p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The index equals the reference thresholded path aggregation exactly.
    #[test]
    fn matches_reference((n, edges) in graph_strategy(), theta_pct in 1u32..20) {
        let theta = theta_pct as f64 / 100.0;
        let (g, idx) = build(n, &edges, theta);
        for v in g.nodes() {
            let expect = reference_gamma(&g, v, theta, 6);
            let got: Vec<(NodeId, f64)> = idx.gamma(v).iter().collect();
            prop_assert_eq!(got.len(), expect.len(), "Γ({}) size mismatch", v);
            for ((gn, gp), (en, ep)) in got.iter().zip(expect.iter()) {
                prop_assert_eq!(gn, en);
                prop_assert!((gp - ep).abs() < 1e-9, "Γ({})[{}]: {} vs {}", v, gn, gp, ep);
            }
        }
    }

    /// Every indexed entry is at least θ (some path cleared the threshold)
    /// and the source node never indexes itself.
    #[test]
    fn entries_cleared_threshold((n, edges) in graph_strategy(), theta_pct in 1u32..20) {
        let theta = theta_pct as f64 / 100.0;
        let (g, idx) = build(n, &edges, theta);
        for v in g.nodes() {
            prop_assert!(!idx.gamma(v).contains(v));
            for (_, p) in idx.gamma(v).iter() {
                prop_assert!(p >= theta - 1e-12, "entry below theta: {}", p);
            }
        }
    }

    /// Marked nodes are exactly the Γ(v) members with an in-neighbor outside
    /// Γ(v) ∪ {v}.
    #[test]
    fn marking_criterion((n, edges) in graph_strategy()) {
        let theta = 0.05;
        let (g, idx) = build(n, &edges, theta);
        for v in g.nodes() {
            let gamma = idx.gamma(v);
            let members: FxHashSet<NodeId> = gamma.nodes().iter().copied().collect();
            for &x in gamma.nodes() {
                let expect = g
                    .in_neighbors(x)
                    .iter()
                    .any(|&u| u != v && !members.contains(&u));
                prop_assert_eq!(
                    gamma.is_marked(x), expect,
                    "marking mismatch at Γ({})[{}]", v, x
                );
            }
        }
    }

    /// maxEP is the maximum entry value over the marked subset.
    #[test]
    fn max_marked_prob_is_max((n, edges) in graph_strategy()) {
        let (g, idx) = build(n, &edges, 0.03);
        for v in g.nodes() {
            let gamma = idx.gamma(v);
            let expect = gamma
                .marked()
                .iter()
                .filter_map(|&m| gamma.get(m))
                .fold(0.0f64, f64::max);
            prop_assert!((gamma.max_marked_prob() - expect).abs() < 1e-15);
        }
    }
}
