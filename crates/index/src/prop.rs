//! Propagation-index construction (Section 5.1).

use crate::node::{Gamma, NodePropagation};
use pit_graph::{CsrGraph, NodeId};
use pit_store::Sect;
use rustc_hash::FxHashMap;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct PropIndexConfig {
    /// Path-probability threshold `θ`: a branch stops expanding as soon as
    /// its cumulative probability drops below this (paper's example: 0.05).
    pub theta: f64,
    /// Safety cap on path length (hops). The threshold already bounds the
    /// enumeration on realistic probability models; the cap guards degenerate
    /// graphs with probability-1.0 chains. Defaults to 6 — the same horizon
    /// the paper uses for the BaseMatrix iterations.
    pub max_depth: usize,
}

impl Default for PropIndexConfig {
    fn default() -> Self {
        PropIndexConfig {
            theta: 0.05,
            max_depth: 6,
        }
    }
}

impl PropIndexConfig {
    /// Config with the given threshold and the default depth cap.
    pub fn with_theta(theta: f64) -> Self {
        PropIndexConfig {
            theta,
            ..Default::default()
        }
    }
}

/// The full personalized propagation index: one table `Γ(v)` per node, i.e.
/// the paper's "materialize every node" requirement (Section 5, problem (1)).
///
/// Stored flattened as five CSR arrays rather than one struct per node:
/// `nodes[offsets[v]..offsets[v+1]]` / `probs[..]` hold `v`'s sorted
/// `(node, probability)` entries, and `marked[marked_offsets[v]..]` its
/// marked subset. Each array is a [`Sect`] — owned when built, a borrowed
/// window of the snapshot mapping when loaded zero-copy — and
/// [`PropagationIndex::gamma`] hands out a borrowed [`Gamma`] view either
/// way.
#[derive(Clone, Debug)]
pub struct PropagationIndex {
    pub(crate) config: PropIndexConfig,
    /// `offsets[v] .. offsets[v+1]` delimits `v`'s entry slice. `n + 1` long.
    offsets: Sect<u64>,
    /// Entry node ids, grouped per table, strictly sorted within a group.
    nodes: Sect<NodeId>,
    /// Propagation probabilities, parallel to `nodes`.
    probs: Sect<f64>,
    /// `marked_offsets[v] .. marked_offsets[v+1]` delimits `v`'s marks.
    marked_offsets: Sect<u64>,
    /// Marked node ids, grouped per table, each a subset of the entry group.
    marked: Sect<NodeId>,
}

impl PropagationIndex {
    /// Materialize the index for every node, in parallel.
    pub fn build(g: &CsrGraph, config: PropIndexConfig) -> Self {
        assert!(
            config.theta > 0.0 && config.theta <= 1.0,
            "theta must be in (0,1]"
        );
        assert!(config.max_depth >= 1, "max_depth must be positive");
        let n = g.node_count();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let chunk = n.div_ceil(threads);

        let mut chunks: Vec<(usize, Vec<NodePropagation>)> = Vec::with_capacity(threads);
        crossbeam::scope(|s| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(s.spawn(move |_| {
                    let mut builder = TableBuilder::new(g, config);
                    let tables: Vec<NodePropagation> = (lo..hi)
                        .map(|v| builder.build_for(NodeId::from_index(v)))
                        .collect();
                    (lo, tables)
                }));
            }
            for h in handles {
                chunks.push(h.join().expect("propagation index worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        chunks.sort_by_key(|&(lo, _)| lo);
        let tables: Vec<NodePropagation> = chunks.into_iter().flat_map(|(_, t)| t).collect();
        Self::from_tables(config, &tables)
    }

    /// Flatten per-node tables into the CSR representation.
    pub fn from_tables(config: PropIndexConfig, tables: &[NodePropagation]) -> Self {
        let total: usize = tables.iter().map(NodePropagation::len).sum();
        let total_marked: usize = tables.iter().map(|t| t.marked.len()).sum();
        let mut offsets = Vec::with_capacity(tables.len() + 1);
        let mut nodes = Vec::with_capacity(total);
        let mut probs = Vec::with_capacity(total);
        let mut marked_offsets = Vec::with_capacity(tables.len() + 1);
        let mut marked = Vec::with_capacity(total_marked);
        offsets.push(0u64);
        marked_offsets.push(0u64);
        for t in tables {
            for &(n, p) in &t.entries {
                nodes.push(n);
                probs.push(p);
            }
            marked.extend_from_slice(&t.marked);
            offsets.push(nodes.len() as u64);
            marked_offsets.push(marked.len() as u64);
        }
        PropagationIndex {
            config,
            offsets: offsets.into(),
            nodes: nodes.into(),
            probs: probs.into(),
            marked_offsets: marked_offsets.into(),
            marked: marked.into(),
        }
    }

    /// Assemble an index from its five raw arrays (typically borrowed
    /// windows of a flat-snapshot mapping). Performs only O(1) shape checks
    /// so the zero-copy load path stays O(sections); call
    /// [`PropagationIndex::validate_deep`] for the per-element invariants.
    pub fn from_raw_parts(
        config: PropIndexConfig,
        offsets: Sect<u64>,
        nodes: Sect<NodeId>,
        probs: Sect<f64>,
        marked_offsets: Sect<u64>,
        marked: Sect<NodeId>,
    ) -> Result<Self, String> {
        if !(config.theta > 0.0 && config.theta <= 1.0) || config.max_depth == 0 {
            return Err("invalid propagation configuration".into());
        }
        if offsets.is_empty() || marked_offsets.len() != offsets.len() {
            return Err("propagation offset arrays have mismatched lengths".into());
        }
        if nodes.len() != probs.len() {
            return Err("entry node/prob arrays have mismatched lengths".into());
        }
        if offsets.first() != Some(&0) || marked_offsets.first() != Some(&0) {
            return Err("propagation offsets do not start at 0".into());
        }
        if offsets.last().copied().map(|v| v as usize) != Some(nodes.len()) {
            return Err("propagation offsets do not cover the entry array".into());
        }
        if marked_offsets.last().copied().map(|v| v as usize) != Some(marked.len()) {
            return Err("marked offsets do not cover the marked array".into());
        }
        Ok(PropagationIndex {
            config,
            offsets,
            nodes,
            probs,
            marked_offsets,
            marked,
        })
    }

    /// Per-element invariants — monotonic offsets, strictly sorted in-range
    /// entry groups, finite positive probabilities, marks a subset of their
    /// entry group. O(index size); run by the deep-validation loader only.
    pub fn validate_deep(&self) -> Result<(), String> {
        let n = self.len();
        if self.offsets.windows(2).any(|w| w[0] > w[1])
            || self.marked_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("propagation offsets are not monotonic".into());
        }
        for v in 0..n {
            let g = self.gamma(NodeId::from_index(v));
            let mut prev: Option<NodeId> = None;
            for (u, p) in g.iter() {
                if u.index() >= n || u.index() == v {
                    return Err(format!("Γ({v}) entry {u} out of range"));
                }
                if !(p.is_finite() && p > 0.0) {
                    return Err(format!("Γ({v}) has invalid probability {p}"));
                }
                if prev.is_some_and(|q| q >= u) {
                    return Err(format!("Γ({v}) entries are not strictly sorted"));
                }
                prev = Some(u);
            }
            let mut prev_mark: Option<NodeId> = None;
            for &m in g.marked() {
                if !g.contains(m) {
                    return Err(format!("Γ({v}) mark {m} is not an entry"));
                }
                if prev_mark.is_some_and(|q| q >= m) {
                    return Err(format!("Γ({v}) marks are not strictly sorted"));
                }
                prev_mark = Some(m);
            }
        }
        Ok(())
    }

    /// The five raw arrays in `from_raw_parts` order, for snapshot writers.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (&[u64], &[NodeId], &[f64], &[u64], &[NodeId]) {
        (
            &self.offsets,
            &self.nodes,
            &self.probs,
            &self.marked_offsets,
            &self.marked,
        )
    }

    /// Bytes of this index served by a snapshot mapping (0 for built ones).
    pub fn mapped_bytes(&self) -> usize {
        self.offsets.mapped_bytes()
            + self.nodes.mapped_bytes()
            + self.probs.mapped_bytes()
            + self.marked_offsets.mapped_bytes()
            + self.marked.mapped_bytes()
    }

    /// Materialize a single node's table (used by tests and on-demand paths).
    pub fn build_for(g: &CsrGraph, v: NodeId, config: PropIndexConfig) -> NodePropagation {
        TableBuilder::new(g, config).build_for(v)
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> &PropIndexConfig {
        &self.config
    }

    /// Number of per-node tables (= node count of the graph).
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `Γ(v)` — a borrowed view of node `v`'s table.
    ///
    /// Out-of-range `v` (or corrupt offsets on the structural-only load
    /// path) yields the empty table rather than a panic — the search layer
    /// treats an absent table as "no nearby influence".
    #[inline]
    pub fn gamma(&self, v: NodeId) -> Gamma<'_> {
        let i = v.index();
        let (Some(&lo), Some(&hi)) = (self.offsets.get(i), self.offsets.get(i + 1)) else {
            return Gamma::EMPTY;
        };
        let (Some(&mlo), Some(&mhi)) = (self.marked_offsets.get(i), self.marked_offsets.get(i + 1))
        else {
            return Gamma::EMPTY;
        };
        let (lo, hi) = (lo as usize, hi as usize);
        let (mlo, mhi) = (mlo as usize, mhi as usize);
        Gamma::new(
            self.nodes.get(lo..hi).unwrap_or(&[]),
            self.probs.get(lo..hi).unwrap_or(&[]),
            self.marked.get(mlo..mhi).unwrap_or(&[]),
        )
    }

    /// Recompute the tables of `nodes` against (a possibly updated) `g`,
    /// leaving every other table untouched — the localized refresh of the
    /// paper's Section-4.4 maintenance story. For an edge insertion
    /// `u → v`, the exact affected set is `g.downstream_within(&[v],
    /// config.max_depth)`: a table `Γ(x)` can only change if some path into
    /// `x` traverses the new edge, i.e. `x` is reachable from `v` within the
    /// enumeration depth.
    ///
    /// # Panics
    /// Panics if `g`'s node count differs from the indexed node count.
    pub fn refresh_nodes(&mut self, g: &CsrGraph, nodes: &[NodeId]) {
        assert_eq!(
            g.node_count(),
            self.len(),
            "refresh requires the same node universe"
        );
        let mut affected = vec![false; self.len()];
        for &v in nodes {
            affected[v.index()] = true;
        }
        // The CSR layout cannot grow a table in place, so a refresh re-packs
        // the arrays once: rebuilt tables for the affected set, copies of the
        // existing Γ(v) views for everything else. One O(index) pass per
        // delta, and the result is always owned (a mapped index detaches
        // from its snapshot here).
        let mut builder = TableBuilder::new(g, self.config);
        let tables: Vec<NodePropagation> = (0..self.len())
            .map(|i| {
                let v = NodeId::from_index(i);
                if affected[i] {
                    builder.build_for(v)
                } else {
                    self.gamma(v).to_table()
                }
            })
            .collect();
        *self = Self::from_tables(self.config, &tables);
    }

    /// A copy of this index that keeps only the tables of nodes selected by
    /// `keep`; every other node gets an empty table. The table vector stays
    /// full-length — the node universe is unchanged, only residency shrinks —
    /// so `len()`, `gamma(v)` and the store's node-count validation all keep
    /// working on a slice. This is how a shard holds just its own users'
    /// Γ(v) tables (see the `pit` crate's shard module).
    pub fn sliced(&self, keep: &dyn Fn(NodeId) -> bool) -> Self {
        let tables: Vec<NodePropagation> = (0..self.len())
            .map(|i| {
                let v = NodeId::from_index(i);
                if keep(v) {
                    self.gamma(v).to_table()
                } else {
                    NodePropagation::default()
                }
            })
            .collect();
        Self::from_tables(self.config, &tables)
    }

    /// Total entries across all tables (index size metric, Figures 13/14).
    pub fn total_entries(&self) -> usize {
        self.nodes.len()
    }

    /// Logical size of the index arrays in bytes, independent of backing.
    pub fn heap_size_bytes(&self) -> usize {
        self.offsets.size_bytes()
            + self.nodes.size_bytes()
            + self.probs.size_bytes()
            + self.marked_offsets.size_bytes()
            + self.marked.size_bytes()
    }
}

/// Reusable single-table builder with workhorse buffers.
struct TableBuilder<'a> {
    g: &'a CsrGraph,
    config: PropIndexConfig,
    on_path: Vec<bool>,
    agg: FxHashMap<NodeId, f64>,
}

impl<'a> TableBuilder<'a> {
    fn new(g: &'a CsrGraph, config: PropIndexConfig) -> Self {
        TableBuilder {
            g,
            config,
            on_path: vec![false; g.node_count()],
            agg: FxHashMap::default(),
        }
    }

    fn build_for(&mut self, v: NodeId) -> NodePropagation {
        self.agg.clear();
        debug_assert!(self.on_path.iter().all(|&b| !b));
        self.on_path[v.index()] = true;
        self.dfs(v, 1.0, 0);
        self.on_path[v.index()] = false;

        let entries: Vec<(NodeId, f64)> = self.agg.drain().collect();
        // Post-pass marking: x ∈ Γ(v) is expandable iff some in-neighbor of x
        // is outside Γ(v) ∪ {v} — its upstream influence was cut off.
        let in_gamma: rustc_hash::FxHashSet<NodeId> = entries.iter().map(|&(n, _)| n).collect();
        let marked: Vec<NodeId> = entries
            .iter()
            .map(|&(x, _)| x)
            .filter(|&x| {
                self.g
                    .in_neighbors(x)
                    .iter()
                    .any(|&u| u != v && !in_gamma.contains(&u))
            })
            .collect();
        NodePropagation::new(entries, marked)
    }

    /// Reverse DFS over in-edges, enumerating simple paths `u ↪ … ↪ v` with
    /// probability ≥ θ and aggregating per source node.
    fn dfs(&mut self, current: NodeId, prob: f64, depth: usize) {
        if depth >= self.config.max_depth {
            return;
        }
        // Iterate by slice index to avoid borrowing `self.g` across the
        // recursive call.
        let deg = self.g.in_degree(current);
        for i in 0..deg {
            let (u, p) = self.g.in_edges(current).get(i);
            if self.on_path[u.index()] {
                continue; // simple paths only
            }
            let path_prob = prob * p;
            if path_prob < self.config.theta {
                continue; // branch terminated below threshold
            }
            *self.agg.entry(u).or_insert(0.0) += path_prob;
            self.on_path[u.index()] = true;
            self.dfs(u, path_prob, depth + 1);
            self.on_path[u.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{self, user, FIGURE3_THETA};
    use pit_graph::GraphBuilder;

    /// The paper's Figure 3 example: Γ(8), values, marks and maxEP.
    #[test]
    fn figure3_example() {
        let g = fixtures::figure3_graph();
        let idx = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA));
        let gamma8 = idx.gamma(user(8));

        let mut expect: Vec<(NodeId, f64)> = vec![
            (user(7), 0.5),
            (user(9), 0.4),
            (user(12), 0.3),
            (user(5), 0.32),
            (user(1), 0.28),
            (user(4), 0.327),
            (user(11), 0.1),
        ];
        expect.sort_unstable_by_key(|&(n, _)| n);
        let got: Vec<(NodeId, f64)> = gamma8.iter().collect();
        assert_eq!(got.len(), expect.len(), "Γ(8) = {got:?}");
        for ((gn, gp), (en, ep)) in got.iter().zip(expect.iter()) {
            assert_eq!(gn, en);
            assert!((gp - ep).abs() < 1e-9, "node {gn}: got {gp}, want {ep}");
        }
        // Only node 11 is marked; maxEP = 0.10 as in the Section 5.2 trace.
        assert_eq!(gamma8.marked(), &[user(11)]);
        assert!((gamma8.max_marked_prob() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn threshold_prunes_far_nodes() {
        // Path a→b→c→d with probability 0.3 per hop: Γ(d) at θ=0.05 holds
        // c (0.3) and b (0.09) but not a (0.027).
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.3).unwrap();
        }
        let g = b.build().unwrap();
        let t = PropagationIndex::build_for(&g, NodeId(3), PropIndexConfig::with_theta(0.05));
        assert_eq!(t.len(), 2);
        assert!((t.get(NodeId(2)).unwrap() - 0.3).abs() < 1e-12);
        assert!((t.get(NodeId(1)).unwrap() - 0.09).abs() < 1e-12);
        assert_eq!(t.get(NodeId(0)), None);
        // Node 1 is marked: its in-neighbor 0 is outside Γ.
        assert_eq!(t.marked(), &[NodeId(1)]);
    }

    #[test]
    fn multiple_paths_aggregate() {
        // Diamond: 0→1→3 (0.5·0.5) and 0→2→3 (0.5·0.4): Γ(3)[0] = 0.45.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        let g = b.build().unwrap();
        let t = PropagationIndex::build_for(&g, NodeId(3), PropIndexConfig::with_theta(0.01));
        assert!((t.get(NodeId(0)).unwrap() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn cycles_do_not_loop() {
        // 0→1→0 cycle feeding 1→2; simple-path restriction terminates.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        let g = b.build().unwrap();
        let t = PropagationIndex::build_for(&g, NodeId(2), PropIndexConfig::with_theta(0.01));
        assert!((t.get(NodeId(1)).unwrap() - 0.9).abs() < 1e-12);
        assert!((t.get(NodeId(0)).unwrap() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn depth_cap_bounds_probability_one_chains() {
        let n = 20;
        let mut b = GraphBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let cfg = PropIndexConfig {
            theta: 0.5,
            max_depth: 4,
        };
        let t = PropagationIndex::build_for(&g, NodeId(19), cfg);
        assert_eq!(t.len(), 4, "depth cap must bound the table");
        // The frontier node is marked: influence beyond the cap is unexplored.
        assert!(t.is_marked(NodeId(15)));
    }

    #[test]
    fn source_node_not_in_own_table() {
        let g = fixtures::figure3_graph();
        let idx = PropagationIndex::build(&g, PropIndexConfig::default());
        for v in g.nodes() {
            assert!(!idx.gamma(v).contains(v), "node {v} indexes itself");
        }
    }

    #[test]
    fn full_build_matches_single_builds() {
        let g = fixtures::figure1_graph();
        let cfg = PropIndexConfig::with_theta(0.02);
        let idx = PropagationIndex::build(&g, cfg);
        for v in g.nodes() {
            let single = PropagationIndex::build_for(&g, v, cfg);
            assert_eq!(idx.gamma(v), single, "mismatch at node {v}");
        }
    }

    #[test]
    fn lower_theta_never_shrinks_tables() {
        let g = fixtures::figure1_graph();
        let tight = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.2));
        let loose = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.01));
        for v in g.nodes() {
            assert!(loose.gamma(v).len() >= tight.gamma(v).len());
        }
        assert!(loose.total_entries() > tight.total_entries());
    }

    #[test]
    #[should_panic]
    fn invalid_theta_rejected() {
        let g = fixtures::figure1_graph();
        let _ = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.0));
    }
}
