//! Binary snapshots of a [`PropagationIndex`].
//!
//! Materializing `Γ(v)` for every node is the second expensive offline
//! artifact (after the walk index); snapshots let deployments rebuild it only
//! when the graph actually changes. Little-endian, versioned, validated.

use crate::node::NodePropagation;
use crate::prop::{PropIndexConfig, PropagationIndex};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pit_graph::NodeId;

const MAGIC: &[u8; 4] = b"PITP";
const VERSION: u8 = 1;

/// Snapshot decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt propagation-index snapshot: {}", self.0)
    }
}
impl std::error::Error for SnapshotError {}

fn err(msg: &str) -> SnapshotError {
    SnapshotError(msg.to_string())
}

/// Serialize the index into a self-describing buffer.
pub fn encode(idx: &PropagationIndex) -> Bytes {
    let n = idx.len();
    let mut buf = BytesMut::with_capacity(32 + n * 16 + idx.total_entries() * 12);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_f64_le(idx.config().theta);
    buf.put_u32_le(idx.config().max_depth as u32);
    buf.put_u64_le(n as u64);
    for v in 0..n {
        let t = idx.gamma(NodeId(v as u32));
        buf.put_u32_le(t.len() as u32);
        for (u, p) in t.iter() {
            buf.put_u32_le(u.0);
            buf.put_f64_le(p);
        }
        buf.put_u32_le(t.marked().len() as u32);
        for &u in t.marked() {
            buf.put_u32_le(u.0);
        }
    }
    buf.freeze()
}

/// Deserialize an index previously produced by [`encode`].
pub fn decode(mut data: &[u8]) -> Result<PropagationIndex, SnapshotError> {
    if data.len() < 4 + 1 + 8 + 4 + 8 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let theta = data.get_f64_le();
    let max_depth = data.get_u32_le() as usize;
    if !(theta > 0.0 && theta <= 1.0) || max_depth == 0 {
        return Err(err("invalid configuration"));
    }
    let n = data.get_u64_le() as usize;
    // Each table costs at least 8 bytes (two u32 counts); bound n before
    // allocating so a corrupt count cannot demand an absurd Vec.
    if n > pit_graph::snapshot::MAX_NODES || n.saturating_mul(8) > data.remaining() {
        return Err(err("table count exceeds payload"));
    }
    let mut tables = Vec::with_capacity(n);
    for v in 0..n {
        if data.remaining() < 4 {
            return Err(err("truncated entry count"));
        }
        let e = data.get_u32_le() as usize;
        if data.remaining() < e * 12 + 4 {
            return Err(err("truncated entries"));
        }
        let mut entries = Vec::with_capacity(e);
        let mut prev: Option<u32> = None;
        for _ in 0..e {
            let node = data.get_u32_le();
            let p = data.get_f64_le();
            if node as usize >= n || node as usize == v {
                return Err(err("entry node out of range"));
            }
            if !(p.is_finite() && p > 0.0) {
                return Err(err("invalid propagation value"));
            }
            if prev.is_some_and(|q| q >= node) {
                return Err(err("entries not strictly sorted"));
            }
            prev = Some(node);
            entries.push((NodeId(node), p));
        }
        let m = data.get_u32_le() as usize;
        if data.remaining() < m * 4 {
            return Err(err("truncated marks"));
        }
        let mut marked = Vec::with_capacity(m);
        for _ in 0..m {
            let node = NodeId(data.get_u32_le());
            if entries.binary_search_by_key(&node, |&(x, _)| x).is_err() {
                return Err(err("marked node is not an entry"));
            }
            marked.push(node);
        }
        tables.push(NodePropagation { entries, marked });
    }
    if data.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(PropagationIndex::from_tables(
        PropIndexConfig { theta, max_depth },
        &tables,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{figure3_graph, user, FIGURE3_THETA};

    fn sample() -> PropagationIndex {
        PropagationIndex::build(&figure3_graph(), PropIndexConfig::with_theta(FIGURE3_THETA))
    }

    #[test]
    fn roundtrip_preserves_tables() {
        let idx = sample();
        let restored = decode(&encode(&idx)).unwrap();
        assert_eq!(restored.len(), idx.len());
        assert!((restored.config().theta - idx.config().theta).abs() < 1e-15);
        for v in 0..idx.len() {
            let v = NodeId(v as u32);
            assert_eq!(restored.gamma(v), idx.gamma(v), "table {v} differs");
        }
        // The Figure-3 facts survive the roundtrip.
        let g8 = restored.gamma(user(8));
        assert_eq!(g8.marked(), &[user(11)]);
        assert!((g8.max_marked_prob() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn rejects_corruption() {
        let idx = sample();
        let bytes = encode(&idx);
        let mut b = bytes.to_vec();
        b[0] = b'Z';
        assert!(decode(&b).is_err());
        assert!(decode(&bytes[..10]).is_err());
        let mut b = bytes.to_vec();
        b.push(7);
        assert!(decode(&b).is_err());
    }

    #[test]
    fn rejects_unsorted_entries() {
        // Hand-craft a payload with two entries out of order.
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"PITP");
        buf.put_u8(1);
        buf.put_f64_le(0.05);
        buf.put_u32_le(6);
        buf.put_u64_le(3); // 3 nodes
                           // node 0: entries (2, 0.5), (1, 0.4) — unsorted
        buf.put_u32_le(2);
        buf.put_u32_le(2);
        buf.put_f64_le(0.5);
        buf.put_u32_le(1);
        buf.put_f64_le(0.4);
        buf.put_u32_le(0);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn rejects_marked_non_entry() {
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"PITP");
        buf.put_u8(1);
        buf.put_f64_le(0.05);
        buf.put_u32_le(6);
        buf.put_u64_le(2);
        // node 0: one entry (1, 0.5), marked = [0] which is not an entry.
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_f64_le(0.5);
        buf.put_u32_le(1);
        buf.put_u32_le(0);
        assert!(decode(&buf).is_err());
    }
}
