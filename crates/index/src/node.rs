//! Per-node materialization: the lookup table `Γ(v)` plus the marked subset.
//!
//! Two representations live here. [`NodePropagation`] is the *owned*
//! per-node table the builder produces and the legacy codec round-trips.
//! [`Gamma`] is the *borrowed* view the flattened [`crate::PropagationIndex`]
//! hands out — three slices into the index's CSR arrays, which may in turn
//! be zero-copy windows of a snapshot mapping. Readers take `Gamma`.

use pit_graph::NodeId;

/// Borrowed view of one node's propagation table: sorted `(node, prob)`
/// pairs as parallel slices, plus the sorted marked subset `Γ*(v)`.
///
/// `Copy`: three fat pointers, pass it by value.
#[derive(Clone, Copy, Debug)]
pub struct Gamma<'a> {
    nodes: &'a [NodeId],
    probs: &'a [f64],
    marked: &'a [NodeId],
}

impl<'a> Gamma<'a> {
    /// Wrap pre-sorted parallel slices (the flattened index's accessor).
    pub fn new(nodes: &'a [NodeId], probs: &'a [f64], marked: &'a [NodeId]) -> Self {
        debug_assert_eq!(nodes.len(), probs.len());
        Gamma {
            nodes,
            probs,
            marked,
        }
    }

    /// The empty table.
    pub const EMPTY: Gamma<'static> = Gamma {
        nodes: &[],
        probs: &[],
        marked: &[],
    };

    /// Number of nearby nodes `|Γ(v)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `Γ(v)` is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The aggregated propagation probability of `u` toward this node
    /// (the paper's `v.hashmap(u)`), or `None` when `u` is not nearby.
    pub fn get(&self, u: NodeId) -> Option<f64> {
        self.nodes
            .binary_search(&u)
            .ok()
            .and_then(|i| self.probs.get(i).copied())
    }

    /// Whether `u ∈ Γ(v)`.
    pub fn contains(&self, u: NodeId) -> bool {
        self.nodes.binary_search(&u).is_ok()
    }

    /// Iterate `(u, probability)` in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + 'a {
        self.nodes.iter().copied().zip(self.probs.iter().copied())
    }

    /// Sorted nearby node ids.
    pub fn nodes(&self) -> &'a [NodeId] {
        self.nodes
    }

    /// Propagation probabilities, parallel to [`Gamma::nodes`].
    pub fn probs(&self) -> &'a [f64] {
        self.probs
    }

    /// The marked subset `Γ*(v)` (sorted).
    #[inline]
    pub fn marked(&self) -> &'a [NodeId] {
        self.marked
    }

    /// Whether `u` is marked for expansion.
    pub fn is_marked(&self, u: NodeId) -> bool {
        self.marked.binary_search(&u).is_ok()
    }

    /// `maxEP`: the largest propagation value among marked nodes (Algorithm
    /// 10 line 16); 0 when nothing is marked.
    pub fn max_marked_prob(&self) -> f64 {
        self.marked
            .iter()
            .filter_map(|&u| self.get(u))
            .fold(0.0, f64::max)
    }

    /// Deep-copy into an owned table (refresh/slice paths).
    pub fn to_table(&self) -> NodePropagation {
        NodePropagation {
            entries: self.iter().collect(),
            marked: self.marked.to_vec(),
        }
    }
}

impl PartialEq for Gamma<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.probs == other.probs && self.marked == other.marked
    }
}

impl PartialEq<NodePropagation> for Gamma<'_> {
    fn eq(&self, t: &NodePropagation) -> bool {
        self.len() == t.entries.len()
            && self.marked == &t.marked[..]
            && self.iter().eq(t.entries.iter().copied())
    }
}

/// The materialized propagation table of one node `v`: for each nearby node
/// `u`, the aggregated probability that `u`'s influence propagates to `v`
/// over paths with probability ≥ θ, plus the marked subset `Γ*(v)` of nodes
/// with unexplored upstream influence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodePropagation {
    /// Sorted by node id; `(u, aggregated propagation probability)`.
    pub(crate) entries: Vec<(NodeId, f64)>,
    /// Sorted subset of entry nodes that are marked for expansion.
    pub(crate) marked: Vec<NodeId>,
}

impl NodePropagation {
    /// Build from unsorted parts (used by the index builder).
    pub(crate) fn new(mut entries: Vec<(NodeId, f64)>, mut marked: Vec<NodeId>) -> Self {
        entries.sort_unstable_by_key(|&(n, _)| n);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate entries must be pre-aggregated"
        );
        marked.sort_unstable();
        marked.dedup();
        NodePropagation { entries, marked }
    }

    /// Number of nearby nodes `|Γ(v)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `Γ(v)` is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The aggregated propagation probability of `u` toward this node
    /// (the paper's `v.hashmap(u)`), or `None` when `u` is not nearby.
    pub fn get(&self, u: NodeId) -> Option<f64> {
        self.entries
            .binary_search_by_key(&u, |&(n, _)| n)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `u ∈ Γ(v)`.
    pub fn contains(&self, u: NodeId) -> bool {
        self.entries.binary_search_by_key(&u, |&(n, _)| n).is_ok()
    }

    /// Iterate `(u, probability)` in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sorted nearby node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|&(n, _)| n)
    }

    /// The marked subset `Γ*(v)` (sorted).
    #[inline]
    pub fn marked(&self) -> &[NodeId] {
        &self.marked
    }

    /// Whether `u` is marked for expansion.
    pub fn is_marked(&self, u: NodeId) -> bool {
        self.marked.binary_search(&u).is_ok()
    }

    /// `maxEP`: the largest propagation value among marked nodes (Algorithm
    /// 10 line 16); 0 when nothing is marked.
    pub fn max_marked_prob(&self) -> f64 {
        self.marked
            .iter()
            .filter_map(|&u| self.get(u))
            .fold(0.0, f64::max)
    }

    /// Estimated resident heap size in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(NodeId, f64)>()
            + self.marked.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodePropagation {
        NodePropagation::new(
            vec![(NodeId(7), 0.5), (NodeId(2), 0.3), (NodeId(11), 0.1)],
            vec![NodeId(11)],
        )
    }

    #[test]
    fn lookup_and_order() {
        let p = sample();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(NodeId(7)), Some(0.5));
        assert_eq!(p.get(NodeId(3)), None);
        assert!(p.contains(NodeId(2)));
        let nodes: Vec<NodeId> = p.nodes().collect();
        assert_eq!(nodes, vec![NodeId(2), NodeId(7), NodeId(11)]);
    }

    #[test]
    fn marked_queries() {
        let p = sample();
        assert!(p.is_marked(NodeId(11)));
        assert!(!p.is_marked(NodeId(7)));
        assert_eq!(p.marked(), &[NodeId(11)]);
        assert!((p.max_marked_prob() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_table() {
        let p = NodePropagation::default();
        assert!(p.is_empty());
        assert_eq!(p.max_marked_prob(), 0.0);
        assert_eq!(p.get(NodeId(0)), None);
    }

    #[test]
    fn duplicate_marks_dedup() {
        let p = NodePropagation::new(vec![(NodeId(1), 0.2)], vec![NodeId(1), NodeId(1)]);
        assert_eq!(p.marked(), &[NodeId(1)]);
    }
}
