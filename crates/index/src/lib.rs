//! # pit-index
//!
//! The **personalized influence propagation index** of Section 5.1.
//!
//! For every node `v`, the index materializes the "nearby" nodes: every node
//! `u` with at least one simple propagation path `u ↪ v` whose probability
//! (product of edge transition probabilities) is at least a threshold `θ`.
//! Construction is a reverse breadth/depth expansion from `v` over in-edges,
//! terminating a branch as soon as its path probability drops below `θ`; a
//! node may appear on many branches, and its per-path probabilities are
//! **aggregated** into a single lookup value — the paper's per-node hash map.
//!
//! A node `x ∈ Γ(v)` is *marked* (`Γ*(v)`, "potential node to be expanded")
//! when it has an in-neighbor that is neither in `Γ(v)` nor `v` itself: the
//! influence behind `x` is unexplored, and the online search may need to
//! expand through `x` (Algorithm 11). This is exactly the Figure-3 criterion:
//! node 11 is marked because its feeder arrives below `θ`, while nodes whose
//! in-neighbors are all already indexed are not.

#![forbid(unsafe_code)]

pub mod node;
pub mod prop;
pub mod snapshot;

pub use node::{Gamma, NodePropagation};
pub use prop::{PropIndexConfig, PropagationIndex};
