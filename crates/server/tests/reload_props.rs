//! Property: a delta served through the live `UPDATE` path must be
//! indistinguishable from tearing the daemon down and rebuilding the whole
//! engine from scratch on the updated corpus.
//!
//! The offline stage is seed-deterministic end to end (walks, propagation,
//! summaries), and `PitEngine::with_delta` documents that its localized
//! refresh lands on the same artifacts a from-scratch build would produce.
//! This test closes the loop at the serving layer: random edge/assignment
//! deltas go over the wire into a live server, and the post-swap rankings
//! are compared bit-for-bit against a from-scratch build queried offline.

use pit::{Delta, PitEngine, SummarizerKind};
use pit_graph::{NodeId, TopicId};
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use pit_server::{serve, ServerConfig, ServerState};
use proptest::prelude::*;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

const NODES: usize = 250;
const DATA_SEED: u64 = 31;
const WALK_SEED: u64 = 6;

fn spec() -> pit_datasets::DatasetSpec {
    pit_datasets::DatasetSpec {
        name: "reload-props".to_string(),
        nodes: NODES,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(NODES, DATA_SEED),
        seed: DATA_SEED,
    }
}

fn build(
    graph: pit_graph::CsrGraph,
    space: pit_topics::TopicSpace,
    vocab: pit_topics::Vocabulary,
) -> PitEngine {
    PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(3, 8).with_seed(WALK_SEED))
        .propagation(pit_index::PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            rep_count: Some(8),
            ..pit_summarize::LrwConfig::default()
        }))
        .build_with_vocab(graph, space, Some(vocab))
}

/// The base engine, built once and shared by every case (`apply_update`
/// never mutates the engine it starts from).
fn base_engine() -> Arc<PitEngine> {
    static BASE: OnceLock<Arc<PitEngine>> = OnceLock::new();
    Arc::clone(BASE.get_or_init(|| {
        let ds = pit_datasets::generate(&spec());
        Arc::new(build(ds.graph, ds.space, ds.vocab))
    }))
}

/// Turn raw samples into a delta that is valid against the base engine:
/// in-range endpoints, no self-loops, no duplicates of existing (or
/// already-chosen) edges, assignments onto existing topics.
fn sanitize(
    base: &PitEngine,
    raw_edges: &[(u32, u32, f64)],
    raw_assignments: &[(u32, u32)],
) -> Delta {
    let n = base.graph().node_count() as u32;
    let topics = base.space().topic_count() as u32;
    let mut chosen: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for &(u, v, p) in raw_edges {
        let u = NodeId(u % n);
        // Walk the target forward until it makes a fresh, non-self edge.
        let start = v % n;
        let picked = (0..n).find_map(|step| {
            let cand = NodeId((start + step) % n);
            let fresh = cand != u
                && !base.graph().has_edge(u, cand)
                && !chosen.iter().any(|&(cu, cv, _)| (cu, cv) == (u, cand));
            fresh.then_some(cand)
        });
        if let Some(cand) = picked {
            chosen.push((u, cand, p));
        }
    }
    Delta {
        new_edges: chosen,
        new_assignments: raw_assignments
            .iter()
            .map(|&(u, t)| (NodeId(u % n), TopicId(t % topics)))
            .collect(),
    }
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn offline_ranking(engine: &PitEngine, user: u32, k: usize) -> Vec<(u32, f64)> {
    engine
        .search_keywords(NodeId(user), &["query-0"], k)
        .expect("offline search")
        .top_k
        .iter()
        .map(|s| (s.topic.0, s.score))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn served_update_equals_a_from_scratch_build(
        raw_edges in proptest::collection::vec((0u32..10_000, 0u32..10_000, 0.05f64..0.9), 1..=3),
        raw_assignments in proptest::collection::vec((0u32..10_000, 0u32..10_000), 0..=2),
        probe in 0u32..10_000,
    ) {
        let base = base_engine();
        let delta = sanitize(&base, &raw_edges, &raw_assignments);
        prop_assert!(!delta.is_empty());

        // From-scratch reference: regenerate the corpus (seed-deterministic),
        // apply the same delta to its builders, and run the whole offline
        // stage under the same seeds.
        let ds = pit_datasets::generate(&spec());
        let mut gb = ds.graph.to_builder();
        for &(u, v, p) in &delta.new_edges {
            gb.add_edge(u, v, p).expect("sanitized edge");
        }
        let mut sb = ds.space.to_builder();
        for &(u, t) in &delta.new_assignments {
            sb.assign(u, t);
        }
        let fresh = build(gb.build().expect("graph rebuild"), sb.build(), ds.vocab);

        // Live side: serve the base engine, push the delta over the wire.
        let state = Arc::new(ServerState::new(Arc::clone(&base), ServerConfig {
            workers: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        }));
        let handle = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
        let mut c = TcpStream::connect(handle.addr()).expect("connect");
        let update = Request::Update {
            edges: delta.new_edges.iter().map(|&(u, v, p)| (u.0, v.0, p)).collect(),
            assignments: delta.new_assignments.iter().map(|&(u, t)| (u.0, t.0)).collect(),
        };
        prop_assert_eq!(ask(&mut c, &update), Response::Generation(2));

        // Served rankings (through the wire, post-swap) must equal the
        // from-scratch build queried offline — for a sampled probe user and
        // fixed sentinels, including every delta endpoint's own view.
        let mut users: Vec<u32> = vec![5, 111, probe % NODES as u32];
        users.extend(delta.new_edges.iter().flat_map(|&(u, v, _)| [u.0, v.0]));
        users.sort_unstable();
        users.dedup();
        for user in users {
            let expected = offline_ranking(&fresh, user, 7);
            let served = ask(&mut c, &Request::Query {
                user,
                k: 7,
                keywords: vec!["query-0".to_string()],
            });
            let Response::Topics { ranked, .. } = served else {
                panic!("expected topics for user {user}");
            };
            prop_assert_eq!(
                ranked,
                expected,
                "user {} diverged from the from-scratch build", user
            );
        }

        prop_assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
        handle.join();
    }
}
