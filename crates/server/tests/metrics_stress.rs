//! Concurrency stress for the serving metrics: N threads hammering one
//! [`LatencyHistogram`] and the `STATS` counters must lose no sample — the
//! per-bucket totals equal the per-thread sums exactly, because every
//! observation is a single atomic `fetch_add` on its bucket.

use pit_server::{LatencyHistogram, Metrics};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 8;
const PER_THREAD: u64 = 20_000;

/// Each thread writes into its own private bucket: thread `t` observes
/// `2^(2t)` µs, which lands in bucket `2t + 1` (buckets cover
/// `[2^(i-1), 2^i)` µs). Disjoint targets make the final assertion exact:
/// any lost update would show up as a short bucket.
#[test]
fn histogram_loses_no_sample_across_threads() {
    let h = Arc::new(LatencyHistogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = Arc::clone(&h);
        handles.push(std::thread::spawn(move || {
            let micros = 1u64 << (2 * t);
            for _ in 0..PER_THREAD {
                h.observe(Duration::from_micros(micros));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("observer thread");
    }

    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    let buckets = h.bucket_counts();
    for t in 0..THREADS {
        assert_eq!(
            buckets[2 * t + 1],
            PER_THREAD,
            "thread {t}'s bucket lost samples"
        );
    }
    let touched: Vec<usize> = (0..THREADS).map(|t| 2 * t + 1).collect();
    for (i, &count) in buckets.iter().enumerate() {
        if !touched.contains(&i) {
            assert_eq!(count, 0, "bucket {i} was never written");
        }
    }
}

/// All threads contend on the *same* bucket: the total must still be exact.
#[test]
fn histogram_survives_single_bucket_contention() {
    let h = Arc::new(LatencyHistogram::new());
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let h = Arc::clone(&h);
        handles.push(std::thread::spawn(move || {
            for _ in 0..PER_THREAD {
                h.observe(Duration::from_micros(100));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("observer thread");
    }
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    // 100µs lands in bucket 7 ([64, 128)); everything should be there.
    assert_eq!(h.bucket_counts()[7], THREADS as u64 * PER_THREAD);
}

/// The `STATS` counters under the same hammering: per-thread bump counts
/// must sum exactly, and the rendered snapshot must agree with the atomics.
#[test]
fn counters_sum_exactly_across_threads() {
    let m = Arc::new(Metrics::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let m = Arc::clone(&m);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                Metrics::bump(&m.queries);
                if i % 3 == 0 {
                    Metrics::bump(&m.shed);
                }
                if t == 0 && i % 7 == 0 {
                    Metrics::bump(&m.timeouts);
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("bumper thread");
    }

    let expected_queries = THREADS as u64 * PER_THREAD;
    let expected_shed = THREADS as u64 * PER_THREAD.div_ceil(3);
    let expected_timeouts = PER_THREAD.div_ceil(7);
    assert_eq!(m.queries.load(Ordering::Relaxed), expected_queries);
    assert_eq!(m.shed.load(Ordering::Relaxed), expected_shed);
    assert_eq!(m.timeouts.load(Ordering::Relaxed), expected_timeouts);

    let snapshot = m.snapshot();
    let get = |name: &str| -> String {
        snapshot
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing stat {name}"))
    };
    assert_eq!(get("queries"), expected_queries.to_string());
    assert_eq!(get("shed"), expected_shed.to_string());
    assert_eq!(get("timeouts"), expected_timeouts.to_string());
}
