//! Concurrency stress for the serving metrics: N threads hammering one
//! [`LatencyHistogram`] and the `STATS` counters must lose no sample — the
//! per-bucket totals equal the per-thread sums exactly, because every
//! observation is a single atomic `fetch_add` on its bucket.

use pit_server::{LatencyHistogram, Metrics};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 8;
const PER_THREAD: u64 = 20_000;

/// The histogram's bucket layout, restated independently: 24 power-of-two
/// buckets, value 0 in bucket 0, value `v ≥ 1` in bucket
/// `floor(log2 v) + 1`, saturating into the catch-all.
const BUCKETS: usize = 24;

/// The exclusive upper bound of the bucket holding `value` — what
/// `quantile_micros` reports when the quantile lands in that bucket.
fn bucket_bound(value: u64) -> u64 {
    1u64 << (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Each thread writes into its own private bucket: thread `t` observes
/// `2^(2t)` µs, which lands in bucket `2t + 1` (buckets cover
/// `[2^(i-1), 2^i)` µs). Disjoint targets make the final assertion exact:
/// any lost update would show up as a short bucket.
#[test]
fn histogram_loses_no_sample_across_threads() {
    let h = Arc::new(LatencyHistogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = Arc::clone(&h);
        handles.push(std::thread::spawn(move || {
            let micros = 1u64 << (2 * t);
            for _ in 0..PER_THREAD {
                h.observe(Duration::from_micros(micros));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("observer thread");
    }

    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    let buckets = h.bucket_counts();
    for t in 0..THREADS {
        assert_eq!(
            buckets[2 * t + 1],
            PER_THREAD,
            "thread {t}'s bucket lost samples"
        );
    }
    let touched: Vec<usize> = (0..THREADS).map(|t| 2 * t + 1).collect();
    for (i, &count) in buckets.iter().enumerate() {
        if !touched.contains(&i) {
            assert_eq!(count, 0, "bucket {i} was never written");
        }
    }
}

/// All threads contend on the *same* bucket: the total must still be exact.
#[test]
fn histogram_survives_single_bucket_contention() {
    let h = Arc::new(LatencyHistogram::new());
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let h = Arc::clone(&h);
        handles.push(std::thread::spawn(move || {
            for _ in 0..PER_THREAD {
                h.observe(Duration::from_micros(100));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("observer thread");
    }
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    // 100µs lands in bucket 7 ([64, 128)); everything should be there.
    assert_eq!(h.bucket_counts()[7], THREADS as u64 * PER_THREAD);
}

/// The `STATS` counters under the same hammering: per-thread bump counts
/// must sum exactly, and the rendered snapshot must agree with the atomics.
#[test]
fn counters_sum_exactly_across_threads() {
    let m = Arc::new(Metrics::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let m = Arc::clone(&m);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                Metrics::bump(&m.queries);
                if i % 3 == 0 {
                    Metrics::bump(&m.shed);
                }
                if t == 0 && i % 7 == 0 {
                    Metrics::bump(&m.timeouts);
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("bumper thread");
    }

    let expected_queries = THREADS as u64 * PER_THREAD;
    let expected_shed = THREADS as u64 * PER_THREAD.div_ceil(3);
    let expected_timeouts = PER_THREAD.div_ceil(7);
    assert_eq!(m.queries.load(Ordering::Relaxed), expected_queries);
    assert_eq!(m.shed.load(Ordering::Relaxed), expected_shed);
    assert_eq!(m.timeouts.load(Ordering::Relaxed), expected_timeouts);

    let snapshot = m.snapshot();
    let get = |name: &str| -> String {
        snapshot
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing stat {name}"))
    };
    assert_eq!(get("queries"), expected_queries.to_string());
    assert_eq!(get("shed"), expected_shed.to_string());
    assert_eq!(get("timeouts"), expected_timeouts.to_string());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `quantile_micros` is monotone in `q`: a higher quantile can never
    /// report a lower bound. Exercised over the full value range the work
    /// histograms see (0, small counts, huge latencies past the catch-all).
    #[test]
    fn quantile_is_monotone_in_q(
        values in proptest::collection::vec(0u64..(1u64 << 40), 1..=200),
        qs in proptest::collection::vec(0.0f64..1.0, 2..=8),
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.observe_value(v);
        }
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let bounds: Vec<u64> = qs.iter().map(|&q| h.quantile_micros(q)).collect();
        for pair in bounds.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "quantile not monotone: {bounds:?} for qs {qs:?}"
            );
        }
    }

    /// Every quantile is at least the observed minimum's bucket bound (and
    /// at most the maximum's): the report can be coarse, but it can never
    /// point below where any sample actually landed.
    #[test]
    fn quantile_never_undershoots_the_minimum(
        values in proptest::collection::vec(0u64..(1u64 << 40), 1..=200),
        q in 0.0f64..1.0,
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.observe_value(v);
        }
        let min = *values.iter().min().expect("nonempty");
        let max = *values.iter().max().expect("nonempty");
        let got = h.quantile_micros(q);
        prop_assert!(
            got >= bucket_bound(min),
            "quantile {q} reported {got} below the minimum {min}'s bucket bound {}",
            bucket_bound(min)
        );
        prop_assert!(
            got <= bucket_bound(max),
            "quantile {q} reported {got} above the maximum {max}'s bucket bound {}",
            bucket_bound(max)
        );
    }

    /// Conservation under concurrent `observe_value` (the path the new
    /// work/stage histograms use): per-bucket totals and `_sum` must equal
    /// the per-thread contributions exactly — no lost updates, no drift
    /// between the bucket array and the sum.
    #[test]
    fn observe_value_conserves_buckets_and_sum_concurrently(
        per_thread in proptest::collection::vec(0u64..(1u64 << 30), 4..=4),
    ) {
        const ROUNDS: u64 = 2_000;
        let h = Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for &value in &per_thread {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    h.observe_value(value);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("observer thread");
        }
        prop_assert_eq!(h.count(), per_thread.len() as u64 * ROUNDS);
        let expected_sum: u64 = per_thread.iter().map(|&v| v * ROUNDS).sum();
        prop_assert_eq!(h.sum_value(), expected_sum);
        // Recompute the bucket totals independently and compare exactly.
        let mut expected = vec![0u64; BUCKETS];
        for &v in &per_thread {
            expected[(64 - v.leading_zeros() as usize).min(BUCKETS - 1)] += ROUNDS;
        }
        prop_assert_eq!(h.bucket_counts(), expected);
    }
}
