//! Single-flight coalescing and event-loop deadline/idle semantics, proven
//! over the real wire.
//!
//! The herd test is the tentpole's acceptance criterion: N concurrent
//! identical cold queries must execute exactly one search (one
//! `inflight_executions`, N−1 `coalesced_queries`) and every client must
//! receive a bit-identical reply. The deadline and idle tests pin the two
//! bugfixes that rode along: the budget is anchored at request receipt (no
//! overshoot from validation/cache-probe time), and idle connections are
//! cut against a real clock even when `io_timeout` is shorter than any
//! internal poll period.

use pit::{PitEngine, SummarizerKind};
use pit_index::PropIndexConfig;
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use pit_server::{serve, ServerConfig, ServerState};
use pit_summarize::LrwConfig;
use pit_walk::WalkConfig;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const HERD: usize = 8;

fn tiny_engine() -> PitEngine {
    let spec = pit_datasets::DatasetSpec {
        name: "coalesce-test".to_string(),
        nodes: 300,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(300, 9),
        seed: 9,
    };
    let ds = pit_datasets::generate(&spec);
    PitEngine::builder()
        .walk(WalkConfig::new(3, 8).with_seed(2))
        .propagation(PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(LrwConfig {
            rep_count: Some(8),
            ..LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab))
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn get_stat(pairs: &[(String, String)], name: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing stat {name}"))
        .1
        .parse()
        .unwrap_or_else(|_| panic!("stat {name} not numeric"))
}

/// Fire `HERD` identical cold queries from separate connections through a
/// barrier and return every reply.
fn herd(addr: std::net::SocketAddr, query: &Request) -> Vec<Response> {
    let barrier = Arc::new(Barrier::new(HERD));
    let handles: Vec<_> = (0..HERD)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let query = query.clone();
            // Connect before the barrier so every request hits the wire
            // within the same few milliseconds.
            let mut c = TcpStream::connect(addr).expect("connect");
            std::thread::spawn(move || {
                barrier.wait();
                ask(&mut c, &query)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("herd thread"))
        .collect()
}

#[test]
fn herd_of_identical_cold_queries_executes_exactly_once() {
    // The dragged user makes the single execution slow enough (~100 ms per
    // probed table) that every joiner registers while it is in flight.
    let engine = Arc::new(tiny_engine());
    let state = Arc::new(ServerState::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            cache_capacity: 16,
            query_budget: Duration::from_secs(30),
            cancel_check_tables: 1,
            drag_user: Some(7),
            drag_per_check: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    ));
    let handle = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let query = Request::Query {
        user: 7,
        k: 5,
        keywords: vec!["query-0".to_string()],
    };
    let replies = herd(handle.addr(), &query);

    // Every reply is the same bits: same ranking, same service micros (the
    // flight's one execution), same cached=false.
    let offline: Vec<(u32, f64)> = engine
        .search_keywords(pit_graph::NodeId(7), &["query-0"], 5)
        .unwrap()
        .top_k
        .iter()
        .map(|s| (s.topic.0, s.score))
        .collect();
    for reply in &replies {
        assert_eq!(
            reply, &replies[0],
            "coalesced replies must be bit-identical"
        );
        let Response::Topics { ranked, cached, .. } = reply else {
            panic!("expected topics, got {reply:?}");
        };
        assert!(!cached);
        assert_eq!(ranked, &offline);
    }

    let mut c = TcpStream::connect(handle.addr()).expect("connect");
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(
        get_stat(&pairs, "inflight_executions"),
        1,
        "the herd must share exactly one execution"
    );
    assert_eq!(
        get_stat(&pairs, "coalesced_queries"),
        (HERD - 1) as u64,
        "every non-leader must have joined the flight"
    );
    assert_eq!(
        get_stat(&pairs, "queries"),
        HERD as u64,
        "each client still counts as one served query"
    );
    // One execution also means one cache fill: the next identical query is
    // a plain hit.
    assert!(matches!(
        ask(&mut c, &query),
        Response::Topics { cached: true, .. }
    ));

    ask(&mut c, &Request::Shutdown);
    handle.join();
}

#[test]
fn coalescing_off_runs_every_query_itself() {
    let state = Arc::new(ServerState::new(
        Arc::new(tiny_engine()),
        ServerConfig {
            workers: HERD,
            cache_capacity: 0,
            coalesce: false,
            query_budget: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    ));
    let handle = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let query = Request::Query {
        user: 7,
        k: 5,
        keywords: vec!["query-0".to_string()],
    };
    let replies = herd(handle.addr(), &query);
    for reply in &replies {
        assert!(matches!(reply, Response::Topics { cached: false, .. }));
    }

    let mut c = TcpStream::connect(handle.addr()).expect("connect");
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(get_stat(&pairs, "inflight_executions"), HERD as u64);
    assert_eq!(get_stat(&pairs, "coalesced_queries"), 0);
    assert_eq!(get_stat(&pairs, "queries"), HERD as u64);

    ask(&mut c, &Request::Shutdown);
    handle.join();
}

#[test]
fn total_wall_wait_honors_the_budget() {
    // Regression for the deadline overshoot: the budget used to be measured
    // from pool submission, so validation/cache-probe time was added on
    // top. The deadline is now anchored at request receipt — the client's
    // total wall wait stays within the budget (plus scheduling slack) even
    // though the dragged search would run for multiple seconds.
    let state = Arc::new(ServerState::new(
        Arc::new(tiny_engine()),
        ServerConfig {
            workers: 1,
            cache_capacity: 0,
            query_budget: Duration::from_millis(150),
            cancel_check_tables: 1,
            drag_user: Some(7),
            drag_per_check: Duration::from_secs(1),
            ..ServerConfig::default()
        },
    ));
    let handle = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let mut c = TcpStream::connect(handle.addr()).expect("connect");
    let started = Instant::now();
    let reply = ask(
        &mut c,
        &Request::Query {
            user: 7,
            k: 3,
            keywords: vec!["query-0".to_string()],
        },
    );
    let waited = started.elapsed();
    assert_eq!(reply, Response::Err("timeout".to_string()));
    assert!(
        waited < Duration::from_millis(700),
        "timeout reply must arrive within the budget plus slack, took {waited:?}"
    );

    ask(&mut c, &Request::Shutdown);
    handle.join();
}

#[test]
fn idle_cut_tracks_a_real_deadline_even_below_the_poll_period() {
    // Regression for the idle-accounting drift: idle time used to be
    // counted in fixed 100 ms increments per poll wake, so an `io_timeout`
    // under the poll period was both reachable early (a spurious wake
    // charged a full increment) and ragged. The allowance is now a real
    // `Instant` comparison.
    let io_timeout = Duration::from_millis(80);
    let state = Arc::new(ServerState::new(
        Arc::new(tiny_engine()),
        ServerConfig {
            workers: 1,
            io_timeout,
            ..ServerConfig::default()
        },
    ));
    let handle = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");

    // A silent connection is cut after io_timeout — not before (no drift
    // from spurious wakes), not minutes later.
    let mut idle = TcpStream::connect(handle.addr()).expect("connect");
    let started = Instant::now();
    let eof = read_frame(&mut idle).expect("idle read");
    let cut_after = started.elapsed();
    assert_eq!(eof, None, "server must close an idle connection cleanly");
    assert!(
        cut_after >= Duration::from_millis(70),
        "idle connection cut early ({cut_after:?} < io_timeout {io_timeout:?})"
    );
    assert!(
        cut_after < Duration::from_secs(3),
        "idle connection lingered for {cut_after:?}"
    );

    // Activity resets the allowance: a connection chatting faster than
    // io_timeout stays alive well past it.
    let mut chatty = TcpStream::connect(handle.addr()).expect("connect");
    let started = Instant::now();
    while started.elapsed() < io_timeout * 4 {
        assert_eq!(ask(&mut chatty, &Request::Ping), Response::Pong);
        std::thread::sleep(io_timeout / 2);
    }

    ask(&mut chatty, &Request::Shutdown);
    handle.join();
}
