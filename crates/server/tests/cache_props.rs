//! Property: the delta-scoped cache retag is sound. For an arbitrary
//! delta, every entry that survives `retag_after_update` under the new
//! generation is **bit-identical** to a fresh recomputation on the
//! post-delta engine, and every entry whose answer actually changed was
//! invalidated.
//!
//! The fixture is four disconnected eight-node islands, each with its own
//! topic and term, so random deltas leave some islands untouched — the
//! survive branch and the invalidate branch are both exercised on every
//! run, not just the trivial "flush everything" corner.

use pit::{Delta, PitEngine, SummarizerKind};
use pit_graph::{GraphBuilder, NodeId, TermId, TopicId};
use pit_server::cache::QueryCache;
use pit_server::QueryKey;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const ISLANDS: u32 = 4;
const ISLAND_SIZE: u32 = 8;
const NODES: u32 = ISLANDS * ISLAND_SIZE;
const K: usize = 4;

fn base_engine() -> Arc<PitEngine> {
    static BASE: OnceLock<Arc<PitEngine>> = OnceLock::new();
    Arc::clone(BASE.get_or_init(|| {
        let mut g = GraphBuilder::new(NODES as usize);
        let mut vocab = pit_topics::Vocabulary::new();
        let mut sb = pit_topics::TopicSpaceBuilder::new(NODES as usize, ISLANDS as usize);
        for isle in 0..ISLANDS {
            let base = isle * ISLAND_SIZE;
            // A ring plus one shortcut; plenty of fresh edges remain for
            // the deltas to add. Rings make influence mutual, so answers
            // carry nonzero scores and the bit-identity check below bites —
            // a chain's source-node rep degenerates every score to 0.0.
            for i in 0..ISLAND_SIZE {
                g.add_edge(NodeId(base + i), NodeId(base + (i + 1) % ISLAND_SIZE), 0.5)
                    .unwrap();
            }
            g.add_edge(NodeId(base), NodeId(base + 2), 0.4).unwrap();
            let term = vocab.intern(&format!("isle-{isle}"));
            let t = sb.add_topic(vec![term]);
            for i in 0..ISLAND_SIZE {
                sb.assign(NodeId(base + i), t);
            }
        }
        Arc::new(
            PitEngine::builder()
                .walk(pit_walk::WalkConfig::new(4, 8).with_seed(3))
                .propagation(pit_index::PropIndexConfig::with_theta(0.01))
                .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig::default()))
                .build_with_vocab(g.build().unwrap(), sb.build(), Some(vocab)),
        )
    }))
}

/// Ranking with exact bit representation of every score — `f64` compared
/// through `to_bits`, so "identical" means identical, not approximately.
fn ranking(engine: &PitEngine, user: u32, isle: u32) -> Vec<(u32, u64)> {
    engine
        .search_keywords(NodeId(user), &[&format!("isle-{isle}")], K)
        .expect("search")
        .top_k
        .iter()
        .map(|s| (s.topic.0, s.score.to_bits()))
        .collect()
}

/// One warmed cache entry: `(user, isle, key, generation-1 answer)`.
type Entry = (u32, u32, QueryKey, Vec<(u32, u64)>);

/// Every (user, island-term) query key against the base engine with its
/// generation-1 answer. Computed once; the base engine never mutates.
fn base_entries() -> &'static Vec<Entry> {
    static ENTRIES: OnceLock<Vec<Entry>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        let base = base_engine();
        let vocab = base.vocab().expect("vocab");
        let mut out = Vec::new();
        for user in 0..NODES {
            for isle in 0..ISLANDS {
                let term: TermId = vocab.get(&format!("isle-{isle}")).expect("term");
                let key = QueryKey::new(user, K, vec![term]);
                out.push((user, isle, key, ranking(&base, user, isle)));
            }
        }
        out
    })
}

/// Turn raw samples into a delta valid against the base engine: in-range
/// endpoints, no self-loops, no duplicate or pre-existing edges. Edges may
/// cross islands — the scope is computed on the post-delta graph, so the
/// property must hold there too.
fn sanitize(
    base: &PitEngine,
    raw_edges: &[(u32, u32, f64)],
    raw_assignments: &[(u32, u32)],
) -> Delta {
    let mut chosen: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for &(u, v, p) in raw_edges {
        let u = NodeId(u % NODES);
        let start = v % NODES;
        let picked = (0..NODES).find_map(|step| {
            let cand = NodeId((start + step) % NODES);
            let fresh = cand != u
                && !base.graph().has_edge(u, cand)
                && !chosen.iter().any(|&(cu, cv, _)| (cu, cv) == (u, cand));
            fresh.then_some(cand)
        });
        if let Some(cand) = picked {
            chosen.push((u, cand, p));
        }
    }
    Delta {
        new_edges: chosen,
        new_assignments: raw_assignments
            .iter()
            .map(|&(u, t)| (NodeId(u % NODES), TopicId(t % ISLANDS)))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn retag_survivors_are_bit_identical_and_changed_answers_die(
        raw_edges in proptest::collection::vec(
            (0u32..10_000, 0u32..10_000, 0.1f64..0.9), 1..=3),
        raw_assignments in proptest::collection::vec(
            (0u32..10_000, 0u32..10_000), 0..=2),
    ) {
        let base = base_engine();
        let delta = sanitize(&base, &raw_edges, &raw_assignments);
        // The islands are sparse (9 edges of 56 possible each), so the
        // sanitizer always finds a fresh edge for at least one sample.
        prop_assert!(!delta.is_empty());
        let (next, report) = base.with_delta(&delta).expect("apply delta");
        let scope = report.scope;

        // A cache warmed entirely under generation 1, then retagged by the
        // delta's scope exactly as the server's swap path does.
        let cache: QueryCache<Vec<(u32, u64)>> = QueryCache::new(1024);
        for (_, _, key, old) in base_entries() {
            cache.insert(key.clone(), 1, old.clone());
        }
        cache.retag_after_update(1, 2, &scope);

        let mut survived = 0u32;
        let mut invalidated = 0u32;
        for (user, isle, key, old) in base_entries() {
            let fresh = ranking(&next, *user, *isle);
            match cache.get(key, 2) {
                Some(served) => {
                    survived += 1;
                    // The soundness core: a survivor answers under the new
                    // generation, so it must equal the new engine's answer
                    // down to the last bit.
                    prop_assert_eq!(
                        &served, &fresh,
                        "survivor (user {}, isle {}) diverged from recompute \
                         under delta {:?} (scope {:?})",
                        user, isle, &delta, &scope
                    );
                }
                None => invalidated += 1,
            }
            if &fresh != old {
                // Redundant with the branch above (a surviving changed
                // answer already failed), stated directly for the record:
                // changed answers never survive.
                prop_assert!(
                    !cache.contains(key, 2),
                    "changed answer (user {}, isle {}) survived the retag",
                    user, isle
                );
            }
        }
        prop_assert_eq!(survived, cache.survivors() as u32);
        prop_assert_eq!(survived + invalidated, base_entries().len() as u32);
    }
}
