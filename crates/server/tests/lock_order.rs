//! Proof that the lock-order deadlock detector is live.
//!
//! These tests compile only under the `lock-order-diagnostics` feature
//! (`cargo test -p pit-server --features lock-order-diagnostics`), which CI
//! runs for the whole pit-server suite. The central negative test seeds a
//! deliberate acquisition-order inversion between two named locks and
//! asserts the detector panics, naming both locks — so a green diagnostics
//! run over the real serving stack means the detector was actually armed,
//! not silently compiled out.
//!
//! The acquisition-order graph is process-global and keyed by lock name;
//! every test here uses names unique to itself so tests stay independent
//! under the parallel test runner.

#![cfg(feature = "lock-order-diagnostics")]

use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f` and return the panic message it died with.
fn panic_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a diagnostic panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[test]
fn seeded_inversion_fires_the_detector() {
    let a = Mutex::named("test.inversion.a", 0u32);
    let b = Mutex::named("test.inversion.b", 0u32);

    // Establish the legal order a → b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // Now seed the inversion: acquiring a while holding b must panic
    // (instead of deadlocking against a concurrent a-then-b thread).
    let msg = panic_message(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(
        msg.contains("test.inversion.a") && msg.contains("test.inversion.b"),
        "diagnostic must name both locks, got: {msg}"
    );
    assert!(msg.contains("lock-order inversion"), "got: {msg}");
}

#[test]
fn inversion_across_threads_fires_on_the_closing_thread() {
    let msg = {
        let x = std::sync::Arc::new(Mutex::named("test.xthread.x", ()));
        let y = std::sync::Arc::new(Mutex::named("test.xthread.y", ()));
        // Thread 1 establishes x → y and fully exits before thread 2 runs,
        // so the test is deterministic: thread 2's y-then-x must panic.
        {
            let (x, y) = (std::sync::Arc::clone(&x), std::sync::Arc::clone(&y));
            std::thread::spawn(move || {
                let _gx = x.lock();
                let _gy = y.lock();
            })
            .join()
            .expect("order-establishing thread");
        }
        let t = std::thread::spawn(move || {
            panic_message(|| {
                let _gy = y.lock();
                let _gx = x.lock();
            })
        });
        t.join().expect("probing thread returns the message")
    };
    assert!(
        msg.contains("test.xthread.x") && msg.contains("test.xthread.y"),
        "got: {msg}"
    );
}

#[test]
fn transitive_inversion_is_detected() {
    let a = Mutex::named("test.chain.a", ());
    let b = Mutex::named("test.chain.b", ());
    let c = Mutex::named("test.chain.c", ());
    // Establish a → b and b → c.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // c → a closes a cycle through b.
    let msg = panic_message(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    });
    assert!(
        msg.contains("test.chain.a") && msg.contains("test.chain.c"),
        "got: {msg}"
    );
}

#[test]
fn consistent_order_never_fires() {
    let outer = Mutex::named("test.consistent.outer", 0u64);
    let inner = Mutex::named("test.consistent.inner", 0u64);
    // Many rounds of the same nesting order, including reacquisitions,
    // must sail through.
    for _ in 0..100 {
        let mut go = outer.lock();
        let mut gi = inner.lock();
        *go += 1;
        *gi += 1;
    }
    assert_eq!(*outer.lock(), 100);
}

#[test]
fn rwlock_participates_in_the_order_graph() {
    let gen = RwLock::named("test.rw.generation", 1u64);
    let cache = Mutex::named("test.rw.cache", ());
    // Reader path establishes generation → cache.
    {
        let _g = gen.read();
        let _c = cache.lock();
    }
    // Writer acquiring the generation lock while holding the cache mutex
    // is the same inversion, via a different guard kind.
    let msg = panic_message(|| {
        let _c = cache.lock();
        let _g = gen.write();
    });
    assert!(
        msg.contains("test.rw.generation") && msg.contains("test.rw.cache"),
        "got: {msg}"
    );
}

#[test]
fn self_relock_is_a_diagnosed_deadlock() {
    let m = Mutex::named("test.self.relock", ());
    let msg = panic_message(|| {
        let _g1 = m.lock();
        let _g2 = m.lock(); // would deadlock forever without diagnostics
    });
    assert!(msg.contains("test.self.relock"), "got: {msg}");
    assert!(msg.contains("self-deadlock"), "got: {msg}");
}

#[test]
fn shared_rereads_are_permitted() {
    // std allows one thread to take two read guards on the same RwLock;
    // the detector must not misreport that as a self-deadlock.
    let l = RwLock::named("test.self.reread", vec![1, 2, 3]);
    let a = l.read();
    let b = l.read();
    assert_eq!(a.len() + b.len(), 6);
}

#[test]
fn server_nesting_order_is_recorded_and_clean() {
    // Drive the real serving-state code paths (engine generation read,
    // cache fill/lookup) and assert the detector saw them without firing:
    // the suite running green under diagnostics is only meaningful because
    // `seeded_inversion_fires_the_detector` proves the panic is reachable.
    use pit_server::{QueryCache, QueryKey};
    let cache: QueryCache<u64> = QueryCache::new(8);
    let key = QueryKey::new(1, 10, vec![pit_graph::TermId(0)]);
    cache.insert(key.clone(), 1, 42);
    assert_eq!(cache.get(&key, 1), Some(42));
}
