//! Property tests for the wire protocol: the parsers must be total (no
//! panic on any byte soup a client can send), and render → reparse must be
//! the identity for every request and response shape — including the
//! observability verbs `TRACE` and `METRICS`, whose replies carry verbatim
//! multi-line bodies.

use pit_server::protocol::{read_frame, Request, Response, MAX_K, MAX_KEYWORDS, MAX_TRACE_DUMP};
use proptest::prelude::*;

/// Tokens that steer the fuzz toward the parser's deep branches: real
/// verbs, line kinds, and separators, mixed with junk.
const TOKENS: &[&str] = &[
    "PING",
    "QUERY",
    "STATS",
    "METRICS",
    "TRACE",
    "RELOAD",
    "UPDATE",
    "SHUTDOWN",
    "EDGE",
    "ASSIGN",
    "TOPICS",
    "GEN",
    "ERR",
    "PONG",
    "BYE",
    "TRACES",
    "0",
    "1",
    "42",
    "-7",
    "18446744073709551615",
    "0.5",
    "inf",
    "NaN",
    "kw",
    "∞",
    "\n",
    " ",
    "\t",
    "\r\n",
    "",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totality on raw bytes: whatever arrives in a frame, the parsers
    /// return `Err`, never panic.
    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..=160),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&text);
        let _ = Response::parse(&text);
    }

    /// Totality on verb-shaped noise: sequences of real protocol tokens in
    /// wrong orders/arities exercise every arm past the verb dispatch.
    #[test]
    fn parsers_never_panic_on_verb_shaped_noise(
        picks in proptest::collection::vec(0usize..TOKENS.len(), 0..=24),
        joiner in 0usize..3,
    ) {
        let sep = [" ", "\n", ""][joiner];
        let text: String = picks
            .iter()
            .map(|&i| TOKENS[i])
            .collect::<Vec<_>>()
            .join(sep);
        let _ = Request::parse(&text);
        let _ = Response::parse(&text);
    }

    /// Totality on the frame reader: truncated prefixes, lying length
    /// headers, and invalid UTF-8 all come back as `Err`/EOF, never panic.
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..=64),
    ) {
        let mut r: &[u8] = &bytes;
        let _ = read_frame(&mut r);
    }

    /// render → parse is the identity for every query shape the caps admit.
    #[test]
    fn query_requests_roundtrip(
        user in any::<u32>(),
        k in 1usize..=MAX_K,
        kw_seeds in proptest::collection::vec(0u32..10_000, 1..=MAX_KEYWORDS),
    ) {
        let req = Request::Query {
            user,
            k,
            keywords: kw_seeds.iter().map(|s| format!("kw{s}")).collect(),
        };
        prop_assert_eq!(Request::parse(&req.render()), Ok(req));
    }

    /// render → parse identity for the observability and admin verbs.
    #[test]
    fn admin_and_observability_requests_roundtrip(
        n in 1usize..=MAX_TRACE_DUMP,
        dir_seed in 0u32..10_000,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>(), 0.0001f64..1.0), 0..=4),
        assignments in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..=4),
    ) {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Trace { n },
            Request::Reload { dir: format!("/srv/engine-{dir_seed}") },
            Request::Update { edges: edges.clone(), assignments: assignments.clone() },
        ] {
            prop_assert_eq!(Request::parse(&req.render()), Ok(req));
        }
    }

    /// render → parse identity for the verbatim-body replies (`METRICS`,
    /// `TRACES`): any newline-joined body of plain lines must survive.
    #[test]
    fn body_carrying_responses_roundtrip(
        line_seeds in proptest::collection::vec((0u32..1000, 0u64..u64::MAX), 0..=12),
    ) {
        let body = line_seeds
            .iter()
            .map(|(name, value)| format!("pit_fuzzed_{name}_total {value}"))
            .collect::<Vec<_>>()
            .join("\n");
        for resp in [Response::Metrics(body.clone()), Response::Traces(body.clone())] {
            prop_assert_eq!(Response::parse(&resp.render()), Ok(resp));
        }
    }

    /// render → parse identity for the remaining response shapes.
    #[test]
    fn plain_responses_roundtrip(
        generation in any::<u64>(),
        micros in any::<u64>(),
        cached in any::<bool>(),
        ranked in proptest::collection::vec((any::<u32>(), 0.0f64..1.0), 0..=8),
        stats in proptest::collection::vec((0u32..1000, any::<u64>()), 0..=8),
    ) {
        for resp in [
            Response::Pong,
            Response::Bye,
            Response::Generation(generation),
            Response::Err("timeout".to_string()),
            Response::Topics { ranked: ranked.clone(), cached, micros },
            Response::Stats(
                stats
                    .iter()
                    .map(|(k, v)| (format!("stat_{k}"), v.to_string()))
                    .collect(),
            ),
        ] {
            prop_assert_eq!(Response::parse(&resp.render()), Ok(resp));
        }
    }
}
