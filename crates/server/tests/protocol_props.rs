//! Property tests for the wire protocol: the parsers must be total (no
//! panic on any byte soup a client can send), and render → reparse must be
//! the identity for every request and response shape — including the
//! observability verbs `TRACE` and `METRICS`, whose replies carry verbatim
//! multi-line bodies.

use pit_server::protocol::{
    read_frame, ProbeTable, Request, Response, MAX_EXPAND_PROBES, MAX_K, MAX_KEYWORDS,
    MAX_TRACE_DUMP,
};
use proptest::prelude::*;

/// Tokens that steer the fuzz toward the parser's deep branches: real
/// verbs, line kinds, and separators, mixed with junk.
const TOKENS: &[&str] = &[
    "PING",
    "QUERY",
    "STATS",
    "METRICS",
    "TRACE",
    "RELOAD",
    "UPDATE",
    "SHUTDOWN",
    "EDGE",
    "ASSIGN",
    "TOPICS",
    "GEN",
    "ERR",
    "PONG",
    "BYE",
    "TRACES",
    "SHARD",
    "EXPAND",
    "EXPANDED",
    "PREPARE",
    "DIR",
    "COMMIT",
    "ABORT",
    "STAGED",
    "F",
    "T",
    "H",
    "C",
    "partial=",
    "partial=1:timeout",
    "0",
    "1",
    "42",
    "-7",
    "18446744073709551615",
    "0.5",
    "inf",
    "NaN",
    "kw",
    "∞",
    "\n",
    " ",
    "\t",
    "\r\n",
    "",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totality on raw bytes: whatever arrives in a frame, the parsers
    /// return `Err`, never panic.
    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..=160),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&text);
        let _ = Response::parse(&text);
    }

    /// Totality on verb-shaped noise: sequences of real protocol tokens in
    /// wrong orders/arities exercise every arm past the verb dispatch.
    #[test]
    fn parsers_never_panic_on_verb_shaped_noise(
        picks in proptest::collection::vec(0usize..TOKENS.len(), 0..=24),
        joiner in 0usize..3,
    ) {
        let sep = [" ", "\n", ""][joiner];
        let text: String = picks
            .iter()
            .map(|&i| TOKENS[i])
            .collect::<Vec<_>>()
            .join(sep);
        let _ = Request::parse(&text);
        let _ = Response::parse(&text);
    }

    /// Totality on the frame reader: truncated prefixes, lying length
    /// headers, and invalid UTF-8 all come back as `Err`/EOF, never panic.
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..=64),
    ) {
        let mut r: &[u8] = &bytes;
        let _ = read_frame(&mut r);
    }

    /// render → parse is the identity for every query shape the caps admit.
    #[test]
    fn query_requests_roundtrip(
        user in any::<u32>(),
        k in 1usize..=MAX_K,
        kw_seeds in proptest::collection::vec(0u32..10_000, 1..=MAX_KEYWORDS),
    ) {
        let req = Request::Query {
            user,
            k,
            keywords: kw_seeds.iter().map(|s| format!("kw{s}")).collect(),
        };
        prop_assert_eq!(Request::parse(&req.render()), Ok(req));
    }

    /// render → parse identity for the observability and admin verbs.
    #[test]
    fn admin_and_observability_requests_roundtrip(
        n in 1usize..=MAX_TRACE_DUMP,
        dir_seed in 0u32..10_000,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>(), 0.0001f64..1.0), 0..=4),
        assignments in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..=4),
    ) {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Trace { n },
            Request::Reload { dir: format!("/srv/engine-{dir_seed}") },
            Request::Update { edges: edges.clone(), assignments: assignments.clone() },
        ] {
            prop_assert_eq!(Request::parse(&req.render()), Ok(req));
        }
    }

    /// render → parse identity for the router-facing request verbs.
    #[test]
    fn router_requests_roundtrip(
        gen in any::<u64>(),
        dir_seed in 0u32..10_000,
        terms in proptest::collection::vec(any::<u32>(), 1..=MAX_KEYWORDS),
        probes in proptest::collection::vec((any::<u32>(), 0.0f64..1.0), 1..=16),
        edges in proptest::collection::vec((any::<u32>(), any::<u32>(), 0.0001f64..1.0), 0..=4),
        assignments in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..=4),
    ) {
        prop_assert!(probes.len() <= MAX_EXPAND_PROBES);
        for req in [
            Request::Shard,
            Request::Commit,
            Request::Abort,
            Request::PrepareDir { dir: format!("/srv/shard-{dir_seed}") },
            Request::PrepareUpdate { edges: edges.clone(), assignments: assignments.clone() },
            Request::Expand { gen, terms: terms.clone(), probes: probes.clone() },
        ] {
            prop_assert_eq!(Request::parse(&req.render()), Ok(req));
        }
    }

    /// render → parse identity for the verbatim-body replies (`METRICS`,
    /// `TRACES`): any newline-joined body of plain lines must survive.
    #[test]
    fn body_carrying_responses_roundtrip(
        line_seeds in proptest::collection::vec((0u32..1000, 0u64..u64::MAX), 0..=12),
    ) {
        let body = line_seeds
            .iter()
            .map(|(name, value)| format!("pit_fuzzed_{name}_total {value}"))
            .collect::<Vec<_>>()
            .join("\n");
        for resp in [Response::Metrics(body.clone()), Response::Traces(body.clone())] {
            prop_assert_eq!(Response::parse(&resp.render()), Ok(resp));
        }
    }

    /// render → parse identity for the remaining response shapes.
    #[test]
    fn plain_responses_roundtrip(
        generation in any::<u64>(),
        micros in any::<u64>(),
        cached in any::<bool>(),
        ranked in proptest::collection::vec((any::<u32>(), 0.0f64..1.0), 0..=8),
        stats in proptest::collection::vec((0u32..1000, any::<u64>()), 0..=8),
        partial_seeds in proptest::collection::vec((any::<u32>(), 0usize..3), 0..=3),
    ) {
        let reasons = ["timeout", "overloaded", "internal"];
        let partial: Vec<(u32, String)> = partial_seeds
            .iter()
            .map(|&(shard, r)| (shard, reasons[r].to_string()))
            .collect();
        for resp in [
            Response::Pong,
            Response::Bye,
            Response::Generation(generation),
            Response::Err("timeout".to_string()),
            Response::Staged,
            Response::Topics {
                ranked: ranked.clone(),
                cached,
                micros,
                partial: partial.clone(),
            },
            Response::Stats(
                stats
                    .iter()
                    .map(|(k, v)| (format!("stat_{k}"), v.to_string()))
                    .collect(),
            ),
        ] {
            prop_assert_eq!(Response::parse(&resp.render()), Ok(resp));
        }
    }

    /// Router-facing responses survive render → parse for arbitrary
    /// generations, shard layouts, and probe-table contents — including the
    /// bit-exact `f64` transport the sharded/single-node identity rests on.
    #[test]
    fn router_responses_roundtrip(
        gen in any::<u64>(),
        index in 0u32..16,
        extra in 0u32..16,
        bound in 0.0f64..1.0,
        tables in proptest::collection::vec(
            (
                any::<u32>(),
                proptest::collection::vec((any::<u32>(), 0.0f64..1.0), 0..=4),
                proptest::collection::vec((any::<u32>(), 0.0f64..1.0), 0..=4),
            ),
            0..=4,
        ),
    ) {
        let count = index + extra + 1; // index < count always holds
        let shard = Response::ShardInfo { index, count, gen };
        prop_assert_eq!(Response::parse(&shard.render()), Ok(shard));
        let expanded = Response::Expanded {
            gen,
            bound,
            tables: tables
                .iter()
                .map(|(node, hits, cands)| ProbeTable {
                    node: *node,
                    hits: hits.clone(),
                    cands: cands.clone(),
                })
                .collect(),
        };
        prop_assert_eq!(Response::parse(&expanded.render()), Ok(expanded));
    }
}
