//! Golden wire-contract test: the full key set of the `STATS` reply and
//! the full metric-name set of the `METRICS` reply are pinned here,
//! exactly. Both are consumed by machines — operator scripts parse STATS,
//! dashboards and alerts reference Prometheus series by name — so a rename
//! or silent drop is a breaking change that must fail loudly in review.
//! Adding a metric is fine: add it to the golden list in the same commit.
//!
//! The METRICS body is additionally checked for Prometheus text-exposition
//! well-formedness: every series has a `# TYPE`, every sample line parses,
//! and every histogram's cumulative buckets are monotone and consistent
//! with its `_count`.

use pit::{PitEngine, SummarizerKind};
use pit_index::PropIndexConfig;
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use pit_server::{serve, ServerConfig, ServerState};
use pit_summarize::LrwConfig;
use pit_walk::WalkConfig;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Every key the `STATS` reply carries, in reply order.
const STATS_KEYS: &[&str] = &[
    // Serving counters (Metrics::snapshot).
    "queries",
    "shed",
    "timeouts",
    "errors",
    "internal_errors",
    "panics",
    "connections",
    "reloads",
    "reload_failures",
    "slow_queries",
    "traces_sampled",
    "shards_pruned",
    "partial_replies",
    "coalesced_queries",
    "inflight_executions",
    "accept_errors",
    "latency_p50_us",
    "latency_p99_us",
    "queue_p50_us",
    "queue_p99_us",
    "exec_p50_us",
    "exec_p99_us",
    "reload_p50_us",
    "reload_p99_us",
    // Post-reload warmup (lifetime counters + last-run coverage).
    "warmup_queries",
    "warmup_coverage",
    "warmup_budget_exhausted",
    // Cache counters (QueryCache::snapshot).
    "cache_entries",
    "cache_capacity",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_stale_evictions",
    "cache_hit_rate",
    // Delta-aware invalidation: live/stale split, survivors of scoped
    // UPDATE retags, and per-reason staleness counts.
    "cache_entries_live",
    "cache_entries_stale",
    "cache_survivors",
    "cache_stale_edge_added",
    "cache_stale_edge_removed",
    "cache_stale_assignment_changed",
    "cache_stale_full_reload",
    // Engine inventory.
    "generation",
    "workers",
    "queue_depth",
    "io_threads",
    "open_connections",
    "queued_jobs",
    "graph_nodes",
    "topics",
    "index_bytes",
    "shards",
    // Flat-snapshot backing: "flat-mapped" when the index arrays are
    // borrowed windows of the snapshot mapping, "owned" otherwise.
    "snapshot_format",
];

/// Every Prometheus series the `METRICS` reply exposes, in reply order.
const METRIC_NAMES: &[(&str, &str)] = &[
    ("pit_queries_total", "counter"),
    ("pit_shed_total", "counter"),
    ("pit_timeouts_total", "counter"),
    ("pit_errors_total", "counter"),
    ("pit_internal_errors_total", "counter"),
    ("pit_panics_total", "counter"),
    ("pit_connections_total", "counter"),
    ("pit_reloads_total", "counter"),
    ("pit_reload_failures_total", "counter"),
    ("pit_slow_queries_total", "counter"),
    ("pit_traces_sampled_total", "counter"),
    ("pit_shards_pruned_total", "counter"),
    ("pit_partial_replies_total", "counter"),
    ("pit_coalesced_queries_total", "counter"),
    ("pit_inflight_executions_total", "counter"),
    ("pit_accept_errors_total", "counter"),
    ("pit_warmup_queries_total", "counter"),
    ("pit_warmup_budget_exhausted_total", "counter"),
    ("pit_latency_us", "histogram"),
    ("pit_queue_wait_us", "histogram"),
    ("pit_execution_us", "histogram"),
    ("pit_reload_us", "histogram"),
    ("pit_expand_rounds", "histogram"),
    ("pit_probed_tables", "histogram"),
    ("pit_cache_probe_us", "histogram"),
    ("pit_gather_us", "histogram"),
    ("pit_rank_us", "histogram"),
    // Labeled per-shard fan-out histogram: header always present, one
    // series per shard that has answered an EXPAND (none on a single node).
    ("pit_shard_fanout_us", "histogram"),
    ("pit_cache_hits_total", "counter"),
    ("pit_cache_misses_total", "counter"),
    ("pit_cache_evictions_total", "counter"),
    ("pit_cache_stale_evictions_total", "counter"),
    ("pit_cache_survivors_total", "counter"),
    // Labeled by `reason`: edge-added | edge-removed | assignment-changed
    // | full-reload.
    ("pit_cache_stale_by_reason_total", "counter"),
    ("pit_generation", "gauge"),
    ("pit_cache_entries", "gauge"),
    ("pit_cache_entries_live", "gauge"),
    ("pit_cache_entries_stale", "gauge"),
    ("pit_workers", "gauge"),
    ("pit_queue_depth", "gauge"),
    ("pit_io_threads", "gauge"),
    ("pit_open_connections", "gauge"),
    ("pit_queued_jobs", "gauge"),
    ("pit_graph_nodes", "gauge"),
    ("pit_topics", "gauge"),
    ("pit_index_bytes", "gauge"),
    ("pit_shards", "gauge"),
    ("pit_warmup_coverage", "gauge"),
    ("pit_reload_bytes_mapped", "gauge"),
];

fn tiny_engine() -> PitEngine {
    let spec = pit_datasets::DatasetSpec {
        name: "golden-wire".to_string(),
        nodes: 250,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(250, 17),
        seed: 17,
    };
    let ds = pit_datasets::generate(&spec);
    PitEngine::builder()
        .walk(WalkConfig::new(3, 8).with_seed(2))
        .propagation(PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(LrwConfig {
            rep_count: Some(8),
            ..LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab))
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

#[test]
fn stats_and_metrics_wire_replies_match_the_golden_registry() {
    let state = Arc::new(ServerState::new(
        Arc::new(tiny_engine()),
        ServerConfig {
            workers: 2,
            cache_capacity: 16,
            trace_sample: 1,
            slow_threshold: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    ));
    let handle = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let mut c = TcpStream::connect(handle.addr()).expect("connect");

    // Put traffic through every serving path the counters see: a fresh
    // query, its cached repeat, and a malformed request.
    let query = Request::Query {
        user: 5,
        k: 5,
        keywords: vec!["query-0".to_string()],
    };
    assert!(matches!(
        ask(&mut c, &query),
        Response::Topics { cached: false, .. }
    ));
    assert!(matches!(
        ask(&mut c, &query),
        Response::Topics { cached: true, .. }
    ));
    write_frame(&mut c, "FROBNICATE").expect("send junk");
    let _ = read_frame(&mut c).expect("junk reply");

    // STATS: the key list — names and order — is the wire contract.
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected STATS reply");
    };
    let got_keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        got_keys, STATS_KEYS,
        "STATS wire reply diverged from the golden key registry"
    );

    // METRICS: the `# TYPE` registry — names, order, and types.
    let Response::Metrics(body) = ask(&mut c, &Request::Metrics) else {
        panic!("expected METRICS reply");
    };
    let got_names = pit_obs::prom::type_line_names(&body);
    let want_names: Vec<String> = METRIC_NAMES.iter().map(|(n, _)| n.to_string()).collect();
    assert_eq!(
        got_names, want_names,
        "METRICS exposition diverged from the golden name registry"
    );
    for (name, kind) in METRIC_NAMES {
        assert!(
            body.contains(&format!("# TYPE {name} {kind}")),
            "metric {name} is not declared as a {kind}"
        );
    }
    assert_valid_prometheus(&body);

    // The traffic above must be visible: sampled traces, queries, a cache
    // hit, and a malformed-request error.
    let get = |name: &str| -> f64 { sample_value(&body, name) };
    assert_eq!(get("pit_queries_total"), 2.0);
    assert_eq!(get("pit_traces_sampled_total"), 2.0);
    assert_eq!(get("pit_cache_hits_total"), 1.0);
    assert_eq!(get("pit_errors_total"), 1.0);
    assert_eq!(get("pit_generation"), 1.0);
    assert!(get("pit_graph_nodes") == 250.0);

    ask(&mut c, &Request::Shutdown);
    handle.join();
}

/// The plain (unlabeled, non-histogram) sample value for `name`.
fn sample_value(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|l| {
            let (n, v) = l.split_once(' ')?;
            (n == name).then(|| v.parse().expect("sample value"))
        })
        .unwrap_or_else(|| panic!("no sample line for {name}"))
}

/// Structural well-formedness of a Prometheus text exposition: every
/// non-comment line is `name[{labels}] value`, every named series has a
/// preceding `# TYPE`, and every histogram's cumulative bucket counts are
/// monotone, ending in a `+Inf` bucket equal to `_count`.
fn assert_valid_prometheus(body: &str) {
    let mut typed: Vec<String> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split(' ');
            let name = words.next().expect("TYPE name");
            let kind = words.next().expect("TYPE kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} for {name}"
            );
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.split_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample value in {line:?}"
        );
        let base = series
            .split('{')
            .next()
            .expect("series name")
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            typed.iter().any(|t| t == base),
            "sample {series} has no # TYPE declaration"
        );
    }

    for (name, kind) in METRIC_NAMES {
        if *kind != "histogram" {
            continue;
        }
        // The per-shard fan-out histogram is labeled (one series per shard)
        // and legitimately empty on a single node: only its header is
        // pinned above, not a bucket shape.
        if *name == "pit_shard_fanout_us" {
            continue;
        }
        let buckets: Vec<(String, u64)> = body
            .lines()
            .filter_map(|l| {
                let rest = l.strip_prefix(&format!("{name}_bucket{{le=\""))?;
                let (le, tail) = rest.split_once("\"}")?;
                Some((le.to_string(), tail.trim().parse().expect("bucket count")))
            })
            .collect();
        assert!(!buckets.is_empty(), "histogram {name} has no buckets");
        assert_eq!(
            buckets.last().expect("nonempty").0,
            "+Inf",
            "histogram {name} is missing its +Inf bucket"
        );
        for pair in buckets.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "histogram {name} buckets are not cumulative: {buckets:?}"
            );
        }
        let count = sample_value(body, &format!("{name}_count"));
        assert_eq!(
            buckets.last().expect("nonempty").1 as f64,
            count,
            "histogram {name}: +Inf bucket disagrees with _count"
        );
    }
}
