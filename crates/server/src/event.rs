//! The readiness-driven I/O loop: a small fixed set of threads owning all
//! client sockets.
//!
//! Each I/O thread runs [`io_loop`] over its own registry of [`Conn`]s,
//! sweeping every connection with nonblocking reads/writes and an adaptive
//! backoff sleep between sweeps: any observable progress (bytes moved, a
//! frame dispatched, a worker reply delivered) resets the backoff to
//! [`BACKOFF_MIN`], and a fully idle sweep doubles it up to [`BACKOFF_MAX`].
//! That keeps a busy loop hot (sub-millisecond reaction) while ten thousand
//! idle connections cost a 10 ms-period scan and zero threads — the whole
//! point of the refactor. The std library exposes no portable readiness
//! API, so this is a polling loop by construction; an epoll/kqueue poller
//! could replace the sleep without touching [`Conn`] (the per-connection
//! state machine is readiness-agnostic).
//!
//! The acceptor hands fresh sockets over a channel (round-robin across
//! threads); a disconnected channel is the drain signal, after which the
//! loop exits as soon as its last connection finishes.

use crate::conn::Conn;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::state::ServerState;
use crate::AdminJob;
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sleep after a sweep that made progress (and the backoff floor).
const BACKOFF_MIN: Duration = Duration::from_micros(200);
/// Backoff ceiling: the worst-case reaction latency of a fully idle loop.
const BACKOFF_MAX: Duration = Duration::from_millis(10);

/// Everything a connection needs to serve a request, shared by every I/O
/// thread and the acceptor.
pub(crate) struct EventShared {
    pub(crate) state: Arc<ServerState>,
    pub(crate) pool: WorkerPool,
    /// Sending side of the updater thread's queue.
    pub(crate) admin: Sender<AdminJob>,
    /// The graceful-stop flag (`SHUTDOWN` verb or [`crate::ServerHandle`]).
    pub(crate) stop: Arc<AtomicBool>,
}

/// One I/O thread: own a share of the client sockets, sweep them until the
/// acceptor hangs up and the last connection drains.
pub(crate) fn io_loop(shared: &EventShared, incoming: &Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut backoff = BACKOFF_MIN;
    let mut disconnected = false;
    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        let mut progress = false;
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    progress = true;
                    if stopping {
                        // Accepted just as the drain began: closing the
                        // socket unanswered is exactly what the listener
                        // going away looks like to the client.
                        Metrics::dec(&shared.state.metrics().open_connections);
                        drop(stream);
                    } else {
                        conns.push(Conn::new(stream, Instant::now()));
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let now = Instant::now();
        conns.retain_mut(|conn| {
            let stepped = conn.step(shared, stopping, now);
            if stepped.progress {
                progress = true;
            }
            if !stepped.alive {
                Metrics::dec(&shared.state.metrics().open_connections);
            }
            stepped.alive
        });
        if disconnected && conns.is_empty() {
            return;
        }
        if progress {
            backoff = BACKOFF_MIN;
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }
    }
}
