//! Per-query trace lifecycle: sampling decision at admission, span
//! recording across threads, and capture into the trace ring / slow-query
//! log at finalization.
//!
//! A [`TraceCtx`] is created once per admitted query (after validation) and
//! travels with it — connection thread for the cache probe, worker thread
//! for queue wait and execution — then comes back to the
//! [`TraceCollector`] exactly once via [`TraceCollector::finish`]. The
//! unsampled path is deliberately near-free: the sampling decision is one
//! branch plus one relaxed counter, and every span hook on an unsampled
//! context is a single `Option` branch.
//!
//! The slow-query log is independent of sampling: any query whose total
//! service time crosses the configured threshold is captured — with full
//! spans when it happened to be sampled, as a counters-only summary
//! otherwise — so the queries an operator most needs to see are never lost
//! to the sampling rate.
//!
//! This module is also where pit-lint rule L4 is honored: the deterministic
//! searcher emits clock-free [`SearchPhase`] callbacks, and the
//! [`SearchTracer`] impl here timestamps them against the admission epoch.

use crate::cache::QueryKey;
use crate::metrics::Metrics;
use pit_obs::trace::{SpanRecorder, Stage, Trace, TraceId};
use pit_obs::{Sampler, TraceRing};
use pit_search_core::{SearchPhase, SearchStats, SearchTracer};
use std::time::{Duration, Instant};

/// The per-server trace state: sampler, rings, and the slow threshold.
pub struct TraceCollector {
    sampler: Sampler,
    /// Sampled traces (full spans).
    ring: TraceRing,
    /// Slow queries — captured regardless of sampling.
    slow: TraceRing,
    slow_threshold: Duration,
}

/// One query's trace handle. Created at admission, finalized exactly once.
pub struct TraceCtx {
    generation: u64,
    /// Present only when this query was sampled; every hook is a single
    /// branch on this option when it is not.
    rec: Option<Box<SpanRecorder>>,
}

impl TraceCtx {
    /// Whether this query records spans.
    pub fn is_sampled(&self) -> bool {
        self.rec.is_some()
    }

    /// Open `stage` now (no-op when unsampled).
    pub fn begin(&mut self, stage: Stage) {
        if let Some(rec) = &mut self.rec {
            rec.begin(stage);
        }
    }

    /// Close `stage` now (no-op when unsampled).
    pub fn end(&mut self, stage: Stage, detail: u64) {
        if let Some(rec) = &mut self.rec {
            rec.end(stage, detail);
        }
    }

    /// Record a stage measured elsewhere, ending now (no-op when
    /// unsampled). Used for queue wait, which only the dequeuing worker
    /// can measure.
    pub fn event(&mut self, stage: Stage, dur: Duration, detail: u64) {
        if let Some(rec) = &mut self.rec {
            rec.event(stage, dur, detail);
        }
    }
}

/// The L4 boundary: the clock-free searcher's phase callbacks are
/// timestamped here, on the server side of the trait object.
impl SearchTracer for TraceCtx {
    fn phase_begin(&mut self, phase: SearchPhase) {
        self.begin(stage_of(phase));
    }

    fn phase_end(&mut self, phase: SearchPhase, detail: u64) {
        self.end(stage_of(phase), detail);
    }
}

fn stage_of(phase: SearchPhase) -> Stage {
    match phase {
        SearchPhase::Gather => Stage::Gather,
        SearchPhase::ExpandRound => Stage::ExpandRound,
        SearchPhase::Rank => Stage::Rank,
    }
}

impl TraceCollector {
    /// Build from the serving knobs: sample one query in `sample_every`
    /// (0 disables sampling), log queries slower than `slow_threshold`,
    /// keep the last `ring_capacity` captures per ring.
    pub fn new(sample_every: u64, slow_threshold: Duration, ring_capacity: usize) -> Self {
        TraceCollector {
            sampler: Sampler::every(sample_every),
            ring: TraceRing::new(ring_capacity),
            slow: TraceRing::new(ring_capacity),
            slow_threshold,
        }
    }

    /// The configured sampling period (0 = off).
    pub fn sample_every(&self) -> u64 {
        self.sampler.period()
    }

    /// The slow-query threshold.
    pub fn slow_threshold(&self) -> Duration {
        self.slow_threshold
    }

    /// Decide this query's fate at admission: sampled queries get a live
    /// span recorder with `epoch` (the admission instant) as time zero.
    pub fn begin(&self, generation: u64, epoch: Instant) -> TraceCtx {
        let rec = if self.sampler.hit() {
            Some(Box::new(SpanRecorder::starting_at(epoch)))
        } else {
            None
        };
        TraceCtx { generation, rec }
    }

    /// Finalize one query: feed the per-stage histograms, and capture the
    /// trace into the sampled ring and/or the slow-query log. `stats` is
    /// present for queries that actually executed a search (fully or until
    /// cancellation); cached and shed queries pass `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        ctx: TraceCtx,
        key: &QueryKey,
        outcome: &'static str,
        cached: bool,
        stats: Option<SearchStats>,
        total: Duration,
        metrics: &Metrics,
    ) {
        if let Some(s) = stats {
            metrics.expand_rounds.observe_value(s.expand_rounds as u64);
            metrics.probed_tables.observe_value(s.probed_tables as u64);
        }
        let slow = total >= self.slow_threshold;
        if slow {
            Metrics::bump(&metrics.slow_queries);
        }
        let sampled = ctx.is_sampled();
        if !sampled && !slow {
            return; // the common path: nothing to capture
        }
        let total_us = total.as_micros().min(u64::MAX as u128) as u64;
        let s = stats.unwrap_or_default();
        let spans = match ctx.rec {
            Some(rec) => rec.into_spans(),
            None => Vec::new(),
        };
        if sampled {
            Metrics::bump(&metrics.traces_sampled);
            for span in &spans {
                match span.stage {
                    Stage::CacheProbe => metrics.cache_probe.observe_value(span.dur_us),
                    Stage::Gather => metrics.gather.observe_value(span.dur_us),
                    Stage::Rank => metrics.rank.observe_value(span.dur_us),
                    Stage::QueueWait | Stage::ExpandRound => {}
                }
            }
        }
        let trace = Trace {
            id: TraceId::next(),
            generation: ctx.generation,
            user: key.user,
            k: key.k,
            terms: key.terms.iter().map(|t| t.0).collect(),
            outcome,
            cached,
            slow,
            sampled,
            total_us,
            expand_rounds: s.expand_rounds as u64,
            probed_tables: s.probed_tables as u64,
            candidate_topics: s.candidate_topics as u64,
            pruned_topics: s.pruned_topics as u64,
            loaded_reps: s.loaded_reps as u64,
            spans,
        };
        if slow {
            self.slow.push(trace.clone());
        }
        if sampled {
            self.ring.push(trace);
        }
    }

    /// Render the last `n` captures of each ring for the `TRACE` verb:
    /// slow queries first (the ones an operator is hunting), then sampled
    /// traces, both newest-first. A trace that is both slow and sampled
    /// appears in both sections under the same id.
    pub fn dump(&self, n: usize) -> String {
        let mut out = format!(
            "captured sampled={} slow={} sample_every={} slow_threshold_ms={}",
            self.ring.captured(),
            self.slow.captured(),
            self.sampler.period(),
            self.slow_threshold.as_millis(),
        );
        for (label, ring) in [("slow", &self.slow), ("sampled", &self.ring)] {
            let recent = ring.recent(n);
            out.push_str(&format!("\n[{label}] showing {} of {}", recent.len(), {
                ring.captured()
            }));
            for t in recent {
                out.push('\n');
                out.push_str(&t.render());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::TermId;

    fn key() -> QueryKey {
        QueryKey::new(7, 5, vec![TermId(0), TermId(2)])
    }

    fn stats() -> SearchStats {
        SearchStats {
            candidate_topics: 3,
            pruned_topics: 1,
            expand_rounds: 2,
            probed_tables: 9,
            loaded_reps: 12,
        }
    }

    #[test]
    fn unsampled_fast_query_captures_nothing() {
        let c = TraceCollector::new(0, Duration::from_secs(1), 8);
        let m = Metrics::new();
        let ctx = c.begin(1, Instant::now());
        assert!(!ctx.is_sampled());
        c.finish(
            ctx,
            &key(),
            "ok",
            false,
            Some(stats()),
            Duration::from_micros(50),
            &m,
        );
        // Work histograms always observe; nothing lands in the rings.
        assert_eq!(m.expand_rounds.count(), 1);
        assert_eq!(m.probed_tables.sum_value(), 9);
        assert!(c.dump(8).contains("[slow] showing 0 of 0"));
        assert!(c.dump(8).contains("[sampled] showing 0 of 0"));
    }

    #[test]
    fn sampled_query_lands_in_the_ring_with_spans() {
        let c = TraceCollector::new(1, Duration::from_secs(1), 8);
        let m = Metrics::new();
        let mut ctx = c.begin(3, Instant::now());
        assert!(ctx.is_sampled());
        ctx.begin(Stage::CacheProbe);
        ctx.end(Stage::CacheProbe, 0);
        ctx.phase_begin(SearchPhase::Gather);
        ctx.phase_end(SearchPhase::Gather, 12);
        c.finish(
            ctx,
            &key(),
            "ok",
            false,
            Some(stats()),
            Duration::from_micros(50),
            &m,
        );
        assert_eq!(
            m.traces_sampled.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(m.cache_probe.count(), 1);
        assert_eq!(m.gather.count(), 1);
        let dump = c.dump(8);
        assert!(dump.contains("user=7"), "{dump}");
        assert!(dump.contains("gen=3"), "{dump}");
        assert!(dump.contains("cache_probe"), "{dump}");
        assert!(dump.contains("[slow] showing 0 of 0"), "fast query: {dump}");
    }

    #[test]
    fn slow_query_is_captured_even_when_unsampled() {
        let c = TraceCollector::new(0, Duration::from_millis(1), 8);
        let m = Metrics::new();
        let ctx = c.begin(1, Instant::now());
        c.finish(
            ctx,
            &key(),
            "timeout",
            false,
            Some(stats()),
            Duration::from_millis(100),
            &m,
        );
        assert_eq!(m.slow_queries.load(std::sync::atomic::Ordering::Relaxed), 1);
        let dump = c.dump(8);
        assert!(dump.contains("[slow] showing 1 of 1"), "{dump}");
        assert!(dump.contains("outcome=timeout"), "{dump}");
        assert!(dump.contains("sampled=no"), "summary capture: {dump}");
        assert!(dump.contains("tables=9"), "work counters survive: {dump}");
    }

    #[test]
    fn slow_and_sampled_appears_in_both_sections() {
        let c = TraceCollector::new(1, Duration::ZERO, 8);
        let m = Metrics::new();
        let ctx = c.begin(1, Instant::now());
        c.finish(ctx, &key(), "ok", false, None, Duration::from_micros(5), &m);
        let dump = c.dump(8);
        assert!(dump.contains("[slow] showing 1 of 1"), "{dump}");
        assert!(dump.contains("[sampled] showing 1 of 1"), "{dump}");
    }
}
