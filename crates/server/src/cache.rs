//! LRU cache of recent query results.
//!
//! Keyed by the full query identity `(user, k, sorted terms)` so a hit is
//! guaranteed to be byte-identical to recomputing. Entries form an intrusive
//! doubly-linked list over a slab (`Vec`) — `get`/`insert` are O(1) with no
//! per-operation allocation beyond the stored value — behind one
//! `parking_lot::Mutex`, with hit/miss/eviction counters read by `STATS`.

use parking_lot::Mutex;
use pit_graph::TermId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache key: the complete identity of a query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Querying user.
    pub user: u32,
    /// Result size.
    pub k: usize,
    /// Resolved term ids, sorted — keyword order does not change the answer,
    /// so `a b` and `b a` share an entry.
    pub terms: Vec<TermId>,
}

impl QueryKey {
    /// Build a key, normalizing term order.
    pub fn new(user: u32, k: usize, mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        QueryKey { user, k, terms }
    }
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: QueryKey,
    value: V,
    prev: usize,
    next: usize,
}

struct Inner<V> {
    map: HashMap<QueryKey, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

/// Thread-safe LRU cache of query results.
pub struct QueryCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> QueryCache<V> {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity.min(1 << 20)),
                slots: Vec::with_capacity(capacity.min(1 << 20)),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &QueryKey) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        let Some(&slot) = inner.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        inner.unlink(slot);
        inner.push_front(slot);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(inner.slots[slot].value.clone())
    }

    /// Insert `key → value`, evicting the least-recently-used entry when at
    /// capacity. Overwrites any existing entry for `key`.
    pub fn insert(&self, key: QueryKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&key) {
            inner.slots[slot].value = value;
            inner.unlink(slot);
            inner.push_front(slot);
            return;
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            debug_assert_ne!(lru, NIL);
            inner.unlink(lru);
            let old = &mut inner.slots[lru];
            let old_key = std::mem::replace(&mut old.key, key.clone());
            old.value = value;
            inner.map.remove(&old_key);
            inner.map.insert(key, lru);
            inner.push_front(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = if let Some(free) = inner.free.pop() {
            let s = &mut inner.slots[free];
            s.key = key.clone();
            s.value = value;
            free
        } else {
            inner.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            inner.slots.len() - 1
        };
        inner.map.insert(key, slot);
        inner.push_front(slot);
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(name, value)` pairs for the `STATS` reply.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let hits = self.hits();
        let misses = self.misses();
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        vec![
            ("cache_entries".into(), self.len().to_string()),
            ("cache_capacity".into(), self.capacity.to_string()),
            ("cache_hits".into(), hits.to_string()),
            ("cache_misses".into(), misses.to_string()),
            ("cache_evictions".into(), self.evictions().to_string()),
            ("cache_hit_rate".into(), format!("{rate:.4}")),
        ]
    }
}

impl<V> Inner<V> {
    /// Detach `slot` from the recency list (no-op if already detached).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slots[p].next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slots[n].prev = prev,
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Attach `slot` as most-recently-used.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32) -> QueryKey {
        QueryKey::new(user, 10, vec![TermId(0)])
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), 11);
        assert_eq!(cache.get(&key(1)), Some(11));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn key_normalizes_term_order() {
        let a = QueryKey::new(1, 5, vec![TermId(3), TermId(1), TermId(3)]);
        let b = QueryKey::new(1, 5, vec![TermId(1), TermId(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache: QueryCache<u64> = QueryCache::new(3);
        for u in 0..3 {
            cache.insert(key(u), u as u64);
        }
        // Touch 0 so 1 becomes LRU.
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(3), 3);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(&key(1)), None, "LRU entry should be gone");
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn overwrite_updates_value_in_place() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 10);
        cache.insert(key(1), 20);
        assert_eq!(cache.get(&key(1)), Some(20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: QueryCache<u64> = QueryCache::new(0);
        cache.insert(key(1), 10);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let cache: QueryCache<u64> = QueryCache::new(8);
        for round in 0..1000u32 {
            cache.insert(key(round % 13), round as u64);
            let _ = cache.get(&key((round * 7) % 13));
        }
        assert!(cache.len() <= 8);
        // Every cached entry must still be retrievable.
        let mut live = 0;
        for u in 0..13 {
            if cache.get(&key(u)).is_some() {
                live += 1;
            }
        }
        assert_eq!(live, 8);
    }
}
