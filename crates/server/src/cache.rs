//! LRU cache of recent query results, coherent across engine generations.
//!
//! Keyed by the full query identity `(user, k, sorted terms)` so a hit is
//! guaranteed to be byte-identical to recomputing. Entries form an intrusive
//! doubly-linked list over a slab (`Vec`) — `get`/`insert` are O(1) with no
//! per-operation allocation beyond the stored value — behind one
//! `parking_lot::Mutex`, with hit/miss/eviction counters read by `STATS`.
//!
//! Every entry is tagged with the engine **generation** that computed it.
//! After a live `RELOAD`/`UPDATE` swaps the engine, a lookup against a
//! pre-swap entry is treated as a miss and the stale entry is evicted
//! lazily, right there — the swap itself never stops the world to sweep the
//! cache, and no post-swap response can ever be served from a pre-swap
//! ranking.

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use pit_graph::TermId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cache key: the complete identity of a query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Querying user.
    pub user: u32,
    /// Result size.
    pub k: usize,
    /// Resolved term ids, sorted — keyword order does not change the answer,
    /// so `a b` and `b a` share an entry.
    pub terms: Vec<TermId>,
}

impl QueryKey {
    /// Build a key, normalizing term order.
    pub fn new(user: u32, k: usize, mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        QueryKey { user, k, terms }
    }
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: QueryKey,
    value: V,
    /// Engine generation that computed `value`; a lookup from any other
    /// generation is a miss.
    generation: u64,
    prev: usize,
    next: usize,
}

struct Inner<V> {
    map: HashMap<QueryKey, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

/// Thread-safe LRU cache of query results.
pub struct QueryCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_evictions: AtomicU64,
}

impl<V: Clone> QueryCache<V> {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::named(
                "server.cache.lru",
                Inner {
                    map: HashMap::with_capacity(capacity.min(1 << 20)),
                    slots: Vec::with_capacity(capacity.min(1 << 20)),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                },
            ),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
        }
    }

    /// Look up `key` as seen by engine `generation`, promoting it to
    /// most-recently-used on a hit. An entry computed under a different
    /// generation is a miss: it is evicted on the spot (counted in
    /// `cache_stale_evictions`) so one stale ranking is never served twice.
    pub fn get(&self, key: &QueryKey, generation: u64) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        let Some(&slot) = inner.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if inner.slots[slot].generation != generation {
            inner.remove(slot);
            self.stale_evictions.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        inner.unlink(slot);
        inner.push_front(slot);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(inner.slots[slot].value.clone())
    }

    /// Insert `key → value` as computed under engine `generation`, evicting
    /// the least-recently-used entry when at capacity. Overwrites any
    /// existing entry for `key` (from any generation).
    pub fn insert(&self, key: QueryKey, generation: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&key) {
            inner.slots[slot].value = value;
            inner.slots[slot].generation = generation;
            inner.unlink(slot);
            inner.push_front(slot);
            return;
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            debug_assert_ne!(lru, NIL);
            inner.unlink(lru);
            let old = &mut inner.slots[lru];
            let old_key = std::mem::replace(&mut old.key, key.clone());
            old.value = value;
            old.generation = generation;
            inner.map.remove(&old_key);
            inner.map.insert(key, lru);
            inner.push_front(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = if let Some(free) = inner.free.pop() {
            let s = &mut inner.slots[free];
            s.key = key.clone();
            s.value = value;
            s.generation = generation;
            free
        } else {
            inner.slots.push(Slot {
                key: key.clone(),
                value,
                generation,
                prev: NIL,
                next: NIL,
            });
            inner.slots.len() - 1
        };
        inner.map.insert(key, slot);
        inner.push_front(slot);
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far (capacity pressure only; see
    /// [`QueryCache::stale_evictions`]).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted because their generation no longer matched the
    /// serving engine.
    pub fn stale_evictions(&self) -> u64 {
        self.stale_evictions.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(name, value)` pairs for the `STATS` reply.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let hits = self.hits();
        let misses = self.misses();
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        vec![
            ("cache_entries".into(), self.len().to_string()),
            ("cache_capacity".into(), self.capacity.to_string()),
            ("cache_hits".into(), hits.to_string()),
            ("cache_misses".into(), misses.to_string()),
            ("cache_evictions".into(), self.evictions().to_string()),
            (
                "cache_stale_evictions".into(),
                self.stale_evictions().to_string(),
            ),
            ("cache_hit_rate".into(), format!("{rate:.4}")),
        ]
    }
}

/// What [`InflightMap::begin`] handed the caller: leadership of a fresh
/// flight (with the cancel handle every waiter shares) or a seat on an
/// existing one.
pub enum FlightRole<C> {
    /// No identical execution was in flight: the caller must run the search
    /// and eventually [`InflightMap::resolve`] the flight. Carries the
    /// flight's shared cancel handle.
    Lead(C),
    /// An identical execution is already running; the caller's channel was
    /// registered as a waiter and the result will arrive on it.
    Join,
}

struct Flight<R, C> {
    /// One reply channel per waiting connection (leader included).
    waiters: Vec<Sender<R>>,
    /// Waiters still interested. Decremented by [`InflightMap::abandon`];
    /// at zero the flight's execution is pointless and gets cancelled.
    live: usize,
    /// The cancel handle shared by the single execution.
    cancel: C,
    /// The leader's deadline. A flight can only outlive it by the worker's
    /// resolve lag; one lingering far past it is a corpse (the worker died
    /// between dequeue and resolve) and gets taken over — see
    /// [`STALE_GRACE`].
    deadline: Instant,
}

/// How long past its deadline a flight may linger before `begin` declares
/// it dead and re-leads. Normal resolution removes the entry within the
/// cancel-check lag; only a worker that died mid-resolve leaves a corpse,
/// and without this takeover that `(generation, key)` would time out every
/// future query forever.
const STALE_GRACE: Duration = Duration::from_secs(30);

/// Single-flight registry: at most one execution per `(generation, key)` is
/// in flight at a time; identical concurrent cold queries register as
/// waiters on it and all receive the one result.
///
/// Generic over the result (`R`, cloned per waiter) and the cancel handle
/// (`C`, e.g. a `CancelToken`) so the map itself stays a pure data
/// structure: resolution sends happen in the caller, outside the lock.
pub struct InflightMap<R, C> {
    flights: Mutex<HashMap<(u64, QueryKey), Flight<R, C>>>,
}

impl<R, C: Clone> InflightMap<R, C> {
    /// An empty registry.
    pub fn new() -> Self {
        InflightMap {
            flights: Mutex::named("server.cache.inflight", HashMap::new()),
        }
    }

    /// Register `tx` for the flight over `(generation, key)`. If none is in
    /// flight, `make` builds the flight's cancel handle and the caller
    /// becomes the leader (with `deadline` recorded as the flight's);
    /// otherwise the caller joins the existing flight. A flight lingering
    /// `STALE_GRACE` past its own deadline is a corpse: its waiters are
    /// dropped (their receivers observe the disconnect) and the caller
    /// re-leads a fresh flight.
    pub fn begin(
        &self,
        generation: u64,
        key: &QueryKey,
        tx: Sender<R>,
        deadline: Instant,
        make: impl FnOnce() -> C,
    ) -> FlightRole<C> {
        let mut flights = self.flights.lock();
        match flights.entry((generation, key.clone())) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let stale = Instant::now()
                    .checked_duration_since(e.get().deadline)
                    .is_some_and(|lag| lag >= STALE_GRACE);
                if stale {
                    let cancel = make();
                    e.insert(Flight {
                        waiters: vec![tx],
                        live: 1,
                        cancel: cancel.clone(),
                        deadline,
                    });
                    return FlightRole::Lead(cancel);
                }
                let flight = e.get_mut();
                flight.waiters.push(tx);
                flight.live += 1;
                FlightRole::Join
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let cancel = make();
                e.insert(Flight {
                    waiters: vec![tx],
                    live: 1,
                    cancel: cancel.clone(),
                    deadline,
                });
                FlightRole::Lead(cancel)
            }
        }
    }

    /// One waiter stopped caring (its own deadline passed or its connection
    /// died). When the last live waiter abandons, the flight's cancel
    /// handle is returned so the caller can stop the now-pointless
    /// execution; the entry itself stays until [`InflightMap::resolve`], so
    /// late joiners in the race window still get a (cancelled) reply.
    pub fn abandon(&self, generation: u64, key: &QueryKey) -> Option<C> {
        let mut flights = self.flights.lock();
        let flight = flights.get_mut(&(generation, key.clone()))?;
        flight.live = flight.live.saturating_sub(1);
        if flight.live == 0 {
            Some(flight.cancel.clone())
        } else {
            None
        }
    }

    /// The execution finished (or failed to start): remove the flight and
    /// hand back every waiter channel. The caller sends the result outside
    /// the lock.
    pub fn resolve(&self, generation: u64, key: &QueryKey) -> Vec<Sender<R>> {
        let mut flights = self.flights.lock();
        match flights.remove(&(generation, key.clone())) {
            Some(flight) => flight.waiters,
            None => Vec::new(),
        }
    }

    /// Flights currently registered (tests and debugging).
    pub fn len(&self) -> usize {
        self.flights.lock().len()
    }

    /// Whether no flight is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<R, C: Clone> Default for InflightMap<R, C> {
    fn default() -> Self {
        InflightMap::new()
    }
}

impl<V> Inner<V> {
    /// Detach `slot` from the recency list (no-op if already detached).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slots[p].next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slots[n].prev = prev,
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Attach `slot` as most-recently-used.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Drop `slot` entirely: unlink it, unmap its key, and recycle the slab
    /// slot. Used for lazy eviction of cross-generation entries.
    fn remove(&mut self, slot: usize) {
        self.unlink(slot);
        let key = self.slots[slot].key.clone();
        self.map.remove(&key);
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generation used by tests that don't exercise reload coherence.
    const G: u64 = 1;

    fn key(user: u32) -> QueryKey {
        QueryKey::new(user, 10, vec![TermId(0)])
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        assert_eq!(cache.get(&key(1), G), None);
        cache.insert(key(1), G, 11);
        assert_eq!(cache.get(&key(1), G), Some(11));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn key_normalizes_term_order() {
        let a = QueryKey::new(1, 5, vec![TermId(3), TermId(1), TermId(3)]);
        let b = QueryKey::new(1, 5, vec![TermId(1), TermId(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_generation_hit_is_a_miss_and_evicts_lazily() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        cache.insert(key(1), 1, 11);
        cache.insert(key(2), 1, 22);
        // Generation 2 takes over: the old entry must not answer, and must
        // be gone afterwards — even for a later generation-1 reader.
        assert_eq!(cache.get(&key(1), 2), None);
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.get(&key(1), 1), None, "stale entry must be evicted");
        assert_eq!(cache.len(), 1, "only the untouched entry remains");
        // Re-populated under generation 2, it hits again.
        cache.insert(key(1), 2, 33);
        assert_eq!(cache.get(&key(1), 2), Some(33));
        // The untouched generation-1 entry still lazily dies on first touch.
        assert_eq!(cache.get(&key(2), 2), None);
        assert_eq!(cache.stale_evictions(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_overwrites_stale_generation_in_place() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 1, 10);
        cache.insert(key(1), 2, 20);
        assert_eq!(cache.get(&key(1), 2), Some(20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn lazy_eviction_recycles_slots() {
        // Stale-evicted slots must be reusable without growing the slab.
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 1, 10);
        cache.insert(key(2), 1, 20);
        assert_eq!(cache.get(&key(1), 2), None); // lazy-evicts slot of key 1
        cache.insert(key(3), 2, 30); // must reuse the freed slot
        assert_eq!(cache.get(&key(3), 2), Some(30));
        cache.insert(key(4), 2, 40); // at capacity again → LRU eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache: QueryCache<u64> = QueryCache::new(3);
        for u in 0..3 {
            cache.insert(key(u), G, u as u64);
        }
        // Touch 0 so 1 becomes LRU.
        assert!(cache.get(&key(0), G).is_some());
        cache.insert(key(3), G, 3);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(&key(1), G), None, "LRU entry should be gone");
        assert!(cache.get(&key(0), G).is_some());
        assert!(cache.get(&key(2), G).is_some());
        assert!(cache.get(&key(3), G).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn overwrite_updates_value_in_place() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), G, 10);
        cache.insert(key(1), G, 20);
        assert_eq!(cache.get(&key(1), G), Some(20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: QueryCache<u64> = QueryCache::new(0);
        cache.insert(key(1), G, 10);
        assert_eq!(cache.get(&key(1), G), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let cache: QueryCache<u64> = QueryCache::new(8);
        for round in 0..1000u32 {
            cache.insert(key(round % 13), G, round as u64);
            let _ = cache.get(&key((round * 7) % 13), G);
        }
        assert!(cache.len() <= 8);
        // Every cached entry must still be retrievable.
        let mut live = 0;
        for u in 0..13 {
            if cache.get(&key(u), G).is_some() {
                live += 1;
            }
        }
        assert_eq!(live, 8);
    }

    /// A deadline far enough out that no test flight ever reads as stale.
    fn soon() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn single_flight_leads_then_joins_then_resolves() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, rx1) = crossbeam::channel::bounded(1);
        let (tx2, rx2) = crossbeam::channel::bounded(1);
        assert!(matches!(
            m.begin(1, &key(7), tx1, soon(), || 99),
            FlightRole::Lead(99)
        ));
        assert!(matches!(
            m.begin(1, &key(7), tx2, soon(), || unreachable!(
                "joiner never makes a handle"
            )),
            FlightRole::Join
        ));
        assert_eq!(m.len(), 1, "one flight covers both callers");
        let waiters = m.resolve(1, &key(7));
        assert_eq!(waiters.len(), 2);
        for tx in waiters {
            tx.send(42).unwrap();
        }
        assert_eq!(rx1.recv().unwrap(), 42);
        assert_eq!(rx2.recv().unwrap(), 42);
        assert!(m.is_empty());
    }

    #[test]
    fn different_generation_or_key_is_a_separate_flight() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx, _rx) = crossbeam::channel::bounded(1);
        assert!(matches!(
            m.begin(1, &key(7), tx.clone(), soon(), || 1),
            FlightRole::Lead(_)
        ));
        assert!(matches!(
            m.begin(2, &key(7), tx.clone(), soon(), || 2),
            FlightRole::Lead(_)
        ));
        assert!(matches!(
            m.begin(1, &key(8), tx, soon(), || 3),
            FlightRole::Lead(_)
        ));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn a_flight_lingering_past_grace_is_taken_over() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, rx1) = crossbeam::channel::bounded::<u64>(1);
        let (tx2, _rx2) = crossbeam::channel::bounded(1);
        // A corpse: its deadline passed more than STALE_GRACE ago (clamped
        // to "now" if the clock is too young to subtract from, in which
        // case the flight reads fresh and the takeover simply can't be
        // exercised — skip rather than flake).
        let Some(long_dead) = Instant::now().checked_sub(STALE_GRACE + Duration::from_secs(1))
        else {
            return;
        };
        assert!(matches!(
            m.begin(1, &key(7), tx1, long_dead, || 1),
            FlightRole::Lead(1)
        ));
        // The next identical query must not join the corpse forever: it
        // re-leads, and the corpse's waiters observe the disconnect.
        assert!(matches!(
            m.begin(1, &key(7), tx2, soon(), || 2),
            FlightRole::Lead(2)
        ));
        assert_eq!(m.len(), 1, "takeover replaces, never duplicates");
        assert!(
            rx1.try_recv().is_err(),
            "corpse waiter sees disconnect, not a value"
        );
    }

    #[test]
    fn last_abandon_surfaces_the_cancel_handle_but_keeps_the_entry() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, _rx1) = crossbeam::channel::bounded(1);
        let (tx2, _rx2) = crossbeam::channel::bounded(1);
        let _ = m.begin(1, &key(7), tx1, soon(), || 5);
        let _ = m.begin(1, &key(7), tx2, soon(), || unreachable!());
        assert_eq!(m.abandon(1, &key(7)), None, "one waiter still live");
        assert_eq!(m.abandon(1, &key(7)), Some(5), "last abandon cancels");
        // The entry survives so a racing resolve still finds the waiters.
        assert_eq!(m.resolve(1, &key(7)).len(), 2);
        assert_eq!(m.abandon(1, &key(7)), None, "resolved flight: no-op");
    }

    #[test]
    fn heavy_churn_across_generations_keeps_list_consistent() {
        // Interleave generation bumps with inserts and lookups: the slab,
        // map, and recency list must stay mutually consistent.
        let cache: QueryCache<u64> = QueryCache::new(8);
        for round in 0..2000u32 {
            let generation = 1 + (round / 100) as u64;
            cache.insert(key(round % 13), generation, round as u64);
            let _ = cache.get(&key((round * 7) % 13), generation);
            let _ = cache.get(&key((round * 3) % 13), generation.saturating_sub(1));
        }
        assert!(cache.len() <= 8);
        let final_generation = 1 + (1999 / 100) as u64;
        let mut live = 0;
        for u in 0..13 {
            if cache.get(&key(u), final_generation).is_some() {
                live += 1;
            }
        }
        assert!(live <= 8);
        assert!(cache.stale_evictions() > 0);
    }
}
