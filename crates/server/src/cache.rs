//! LRU cache of recent query results, coherent across engine generations.
//!
//! Keyed by the full query identity `(user, k, sorted terms)` so a hit is
//! guaranteed to be byte-identical to recomputing. Entries form an intrusive
//! doubly-linked list over a slab (`Vec`) — `get`/`insert` are O(1) with no
//! per-operation allocation beyond the stored value — behind one
//! `parking_lot::Mutex`, with hit/miss/eviction counters read by `STATS`.
//!
//! Every entry is tagged with the engine **generation** that computed it,
//! plus an optional **stale reason**. A full `RELOAD` marks every entry
//! stale ([`StaleReason::FullReload`]); an `UPDATE` instead compares each
//! entry against the delta's [`DeltaScope`] and re-tags the entries the
//! delta provably cannot affect to the new generation — they *survive* the
//! swap and keep hitting (counted in `cache_survivors`), while intersecting
//! entries are marked with a typed reason and die lazily on first touch.
//! Lookups additionally keep a generation check as a backstop (a worker
//! racing a swap can insert under the old generation after the sweep ran),
//! so no post-swap response can ever be served from a pre-swap ranking.
//!
//! The cache also keeps a small space-saving frequency sketch of looked-up
//! keys; [`QueryCache::hottest`] feeds the post-reload warmup job.

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use pit::DeltaScope;
use pit_graph::{NodeId, TermId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cache key: the complete identity of a query.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey {
    /// Querying user.
    pub user: u32,
    /// Result size.
    pub k: usize,
    /// Resolved term ids, sorted — keyword order does not change the answer,
    /// so `a b` and `b a` share an entry.
    pub terms: Vec<TermId>,
}

impl QueryKey {
    /// Build a key, normalizing term order.
    pub fn new(user: u32, k: usize, mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        QueryKey { user, k, terms }
    }
}

/// Why a swap declared a cache entry stale. Rendered on the wire (STATS
/// keys, Prometheus `reason` label) via [`StaleReason::as_str`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaleReason {
    /// A new edge's downstream Γ closure or walk region reaches the entry.
    EdgeAdded,
    /// Reserved: [`pit::Delta`] carries no removals yet, so this is never
    /// produced today — the wire key exists so adding removals is not a
    /// breaking change.
    EdgeRemoved,
    /// A topic sharing a term with the entry gained a member and was
    /// re-summarized.
    AssignmentChanged,
    /// A full `RELOAD` (or staged `COMMIT`) replaced the engine wholesale.
    FullReload,
}

impl StaleReason {
    /// Wire spelling of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            StaleReason::EdgeAdded => "edge-added",
            StaleReason::EdgeRemoved => "edge-removed",
            StaleReason::AssignmentChanged => "assignment-changed",
            StaleReason::FullReload => "full-reload",
        }
    }

    /// Parse the wire spelling back into a reason — the inverse of
    /// [`StaleReason::as_str`], used by operator tooling that reads the
    /// `reason` label off STATS output. An inherent method rather than the
    /// `FromStr` trait: a mismatch is just `None`, not an error type.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<StaleReason> {
        match s {
            "edge-added" => Some(StaleReason::EdgeAdded),
            "edge-removed" => Some(StaleReason::EdgeRemoved),
            "assignment-changed" => Some(StaleReason::AssignmentChanged),
            "full-reload" => Some(StaleReason::FullReload),
            _ => None,
        }
    }

    /// Dense index into per-reason counter arrays.
    fn index(self) -> usize {
        match self {
            StaleReason::EdgeAdded => 0,
            StaleReason::EdgeRemoved => 1,
            StaleReason::AssignmentChanged => 2,
            StaleReason::FullReload => 3,
        }
    }

    /// Every reason, in `StaleReason::index` order.
    pub const ALL: [StaleReason; 4] = [
        StaleReason::EdgeAdded,
        StaleReason::EdgeRemoved,
        StaleReason::AssignmentChanged,
        StaleReason::FullReload,
    ];
}

const NIL: usize = usize::MAX;

/// Keys tracked by the hot-key frequency sketch (space-saving: bounded
/// memory, over-estimates only — good enough to pick warmup candidates).
const HOT_TRACKED: usize = 64;

struct Slot<V> {
    key: QueryKey,
    value: V,
    /// Engine generation that computed `value`; a lookup from any other
    /// generation is a miss.
    generation: u64,
    /// Set when a swap declared this entry stale; it dies lazily on first
    /// touch (or is reclaimed by an at-capacity insert) and never answers.
    stale: Option<StaleReason>,
    prev: usize,
    next: usize,
}

/// Space-saving heavy-hitters sketch over query keys. Bounded at
/// [`HOT_TRACKED`] entries: an unseen key at capacity replaces the
/// minimum-count entry and inherits its count (+1), so frequent keys always
/// surface even though counts over-estimate. Ties break on key order for
/// determinism.
struct HotKeys {
    counts: HashMap<QueryKey, u64>,
}

impl HotKeys {
    fn record(&mut self, key: &QueryKey) {
        if let Some(c) = self.counts.get_mut(key) {
            *c += 1;
            return;
        }
        if self.counts.len() < HOT_TRACKED {
            self.counts.insert(key.clone(), 1);
            return;
        }
        let victim = self
            .counts
            .iter()
            .min_by(|(ka, ca), (kb, cb)| ca.cmp(cb).then_with(|| ka.cmp(kb)))
            .map(|(k, c)| (k.clone(), *c));
        if let Some((victim, floor)) = victim {
            self.counts.remove(&victim);
            self.counts.insert(key.clone(), floor + 1);
        }
    }

    /// The `n` highest-count keys, hottest first; ties break on key order.
    fn top(&self, n: usize) -> Vec<QueryKey> {
        let mut ranked: Vec<(&QueryKey, u64)> = self.counts.iter().map(|(k, c)| (k, *c)).collect();
        ranked.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then_with(|| ka.cmp(kb)));
        ranked.into_iter().take(n).map(|(k, _)| k.clone()).collect()
    }
}

struct Inner<V> {
    map: HashMap<QueryKey, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    /// Frequency sketch of looked-up keys, for post-reload warmup.
    hot: HotKeys,
    /// Slots a sweep marked stale — reclamation candidates for at-capacity
    /// inserts. Entries are hints, not truth: a slot may have been lazily
    /// evicted or overwritten since, so candidates are re-validated when
    /// popped.
    stale_slots: Vec<usize>,
}

/// Thread-safe LRU cache of query results.
pub struct QueryCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_evictions: AtomicU64,
    /// Entries that outlived an `UPDATE` swap because the delta provably
    /// could not change their answer.
    survivors: AtomicU64,
    /// Entries marked stale, by [`StaleReason::index`].
    stale_by_reason: [AtomicU64; 4],
}

impl<V: Clone> QueryCache<V> {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::named(
                "server.cache.lru",
                Inner {
                    map: HashMap::with_capacity(capacity.min(1 << 20)),
                    slots: Vec::with_capacity(capacity.min(1 << 20)),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    hot: HotKeys {
                        counts: HashMap::with_capacity(HOT_TRACKED),
                    },
                    stale_slots: Vec::new(),
                },
            ),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            survivors: AtomicU64::new(0),
            stale_by_reason: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// Look up `key` as seen by engine `generation`, promoting it to
    /// most-recently-used on a hit. An entry a swap marked stale — or one
    /// computed under a different generation (the backstop for inserts
    /// racing a swap) — is a miss: it is evicted on the spot (counted in
    /// `cache_stale_evictions`) so one stale ranking is never served twice.
    /// Every lookup also feeds the hot-key sketch behind
    /// [`QueryCache::hottest`].
    pub fn get(&self, key: &QueryKey, generation: u64) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        inner.hot.record(key);
        let Some(&slot) = inner.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if inner.slots[slot].stale.is_some() || inner.slots[slot].generation != generation {
            inner.remove(slot);
            self.stale_evictions.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        inner.unlink(slot);
        inner.push_front(slot);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(inner.slots[slot].value.clone())
    }

    /// Whether a live entry for `key` exists under `generation`, without
    /// touching counters, recency, or the hot-key sketch. The warmup job
    /// uses this to skip keys an earlier client already repopulated.
    pub fn contains(&self, key: &QueryKey, generation: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let inner = self.inner.lock();
        inner.map.get(key).is_some_and(|&slot| {
            inner.slots[slot].stale.is_none() && inner.slots[slot].generation == generation
        })
    }

    /// Insert `key → value` as computed under engine `generation`. At
    /// capacity, a known-stale slot is reclaimed first — a cache full of
    /// swap-killed corpses must not push out fresh post-swap answers — and
    /// only when every entry is live does the least-recently-used one go.
    /// Overwrites any existing entry for `key` (from any generation,
    /// clearing its stale mark).
    pub fn insert(&self, key: QueryKey, generation: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&key) {
            inner.slots[slot].value = value;
            inner.slots[slot].generation = generation;
            inner.slots[slot].stale = None;
            inner.unlink(slot);
            inner.push_front(slot);
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(slot) = inner.pop_stale_slot() {
                inner.remove(slot);
                self.stale_evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                let lru = inner.tail;
                debug_assert_ne!(lru, NIL);
                inner.unlink(lru);
                let old = &mut inner.slots[lru];
                let old_key = std::mem::replace(&mut old.key, key.clone());
                old.value = value;
                old.generation = generation;
                old.stale = None;
                inner.map.remove(&old_key);
                inner.map.insert(key, lru);
                inner.push_front(lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let slot = if let Some(free) = inner.free.pop() {
            let s = &mut inner.slots[free];
            s.key = key.clone();
            s.value = value;
            s.generation = generation;
            s.stale = None;
            free
        } else {
            inner.slots.push(Slot {
                key: key.clone(),
                value,
                generation,
                stale: None,
                prev: NIL,
                next: NIL,
            });
            inner.slots.len() - 1
        };
        inner.map.insert(key, slot);
        inner.push_front(slot);
    }

    /// Mark every entry stale with `reason` (a full `RELOAD`/`COMMIT`
    /// replaced the engine wholesale). Entries die lazily on first touch —
    /// the swap never stops the world — but at-capacity inserts reclaim
    /// them ahead of live entries.
    pub fn mark_all_stale(&self, reason: StaleReason) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let live: Vec<usize> = inner.map.values().copied().collect();
        for slot in live {
            if inner.slots[slot].stale.is_some() {
                continue;
            }
            inner.slots[slot].stale = Some(reason);
            inner.stale_slots.push(slot);
            self.stale_by_reason[reason.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Delta-aware sweep for an `UPDATE` swap from `from_gen` to `to_gen`:
    /// entries the delta's [`DeltaScope`] can affect are marked stale with a
    /// typed reason, everything else is re-tagged to `to_gen` and keeps
    /// hitting (counted in `cache_survivors`). Entries from generations
    /// older than `from_gen` (already-stale corpses, or inserts that raced
    /// an earlier swap) get the [`StaleReason::FullReload`] backstop — their
    /// provenance is unknown, so surviving them would be unsound.
    ///
    /// Must run before any reader can query under `to_gen` (the caller
    /// holds the engine swap lock), otherwise the generation backstop in
    /// [`QueryCache::get`] would evict survivors first.
    pub fn retag_after_update(&self, from_gen: u64, to_gen: u64, scope: &DeltaScope) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let live: Vec<usize> = inner.map.values().copied().collect();
        for slot in live {
            if inner.slots[slot].stale.is_some() {
                continue;
            }
            let verdict = if inner.slots[slot].generation != from_gen {
                Some(StaleReason::FullReload)
            } else {
                classify(scope, &inner.slots[slot].key)
            };
            match verdict {
                Some(reason) => {
                    inner.slots[slot].stale = Some(reason);
                    inner.stale_slots.push(slot);
                    self.stale_by_reason[reason.index()].fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    inner.slots[slot].generation = to_gen;
                    self.survivors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The `n` most-frequently-looked-up keys, hottest first.
    pub fn hottest(&self, n: usize) -> Vec<QueryKey> {
        self.inner.lock().hot.top(n)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far (capacity pressure only; see
    /// [`QueryCache::stale_evictions`]).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted because their generation no longer matched the
    /// serving engine.
    pub fn stale_evictions(&self) -> u64 {
        self.stale_evictions.load(Ordering::Relaxed)
    }

    /// Entries that outlived an `UPDATE` swap untouched.
    pub fn survivors(&self) -> u64 {
        self.survivors.load(Ordering::Relaxed)
    }

    /// Entries marked stale so far, per reason ([`StaleReason::ALL`] order).
    pub fn stale_by_reason(&self) -> [u64; 4] {
        [
            self.stale_by_reason[0].load(Ordering::Relaxed),
            self.stale_by_reason[1].load(Ordering::Relaxed),
            self.stale_by_reason[2].load(Ordering::Relaxed),
            self.stale_by_reason[3].load(Ordering::Relaxed),
        ]
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently cached, split into live and swap-killed stale
    /// (still occupying slots until lazily evicted or reclaimed).
    pub fn len_by_liveness(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        let stale = inner
            .map
            .values()
            .filter(|&&slot| inner.slots[slot].stale.is_some())
            .count();
        (inner.map.len() - stale, stale)
    }

    /// `(name, value)` pairs for the `STATS` reply.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let hits = self.hits();
        let misses = self.misses();
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let (live, stale) = self.len_by_liveness();
        let by_reason = self.stale_by_reason();
        vec![
            ("cache_entries".into(), (live + stale).to_string()),
            ("cache_capacity".into(), self.capacity.to_string()),
            ("cache_hits".into(), hits.to_string()),
            ("cache_misses".into(), misses.to_string()),
            ("cache_evictions".into(), self.evictions().to_string()),
            (
                "cache_stale_evictions".into(),
                self.stale_evictions().to_string(),
            ),
            ("cache_hit_rate".into(), format!("{rate:.4}")),
            ("cache_entries_live".into(), live.to_string()),
            ("cache_entries_stale".into(), stale.to_string()),
            ("cache_survivors".into(), self.survivors().to_string()),
            (
                "cache_stale_edge_added".into(),
                by_reason[StaleReason::EdgeAdded.index()].to_string(),
            ),
            (
                "cache_stale_edge_removed".into(),
                by_reason[StaleReason::EdgeRemoved.index()].to_string(),
            ),
            (
                "cache_stale_assignment_changed".into(),
                by_reason[StaleReason::AssignmentChanged.index()].to_string(),
            ),
            (
                "cache_stale_full_reload".into(),
                by_reason[StaleReason::FullReload.index()].to_string(),
            ),
        ]
    }
}

/// Which [`StaleReason`] (if any) `scope` assigns to a cached query. The
/// Γ-region check comes first — an edge that reaches the user makes the
/// probed tables themselves differ — then term-bag intersections against
/// the re-summarized topics, assignment-caused before edge-caused.
fn classify(scope: &DeltaScope, key: &QueryKey) -> Option<StaleReason> {
    if scope.touches_user(NodeId(key.user)) {
        return Some(StaleReason::EdgeAdded);
    }
    if scope.touches_assignment_terms(&key.terms) {
        return Some(StaleReason::AssignmentChanged);
    }
    if scope.touches_edge_terms(&key.terms) {
        return Some(StaleReason::EdgeAdded);
    }
    None
}

/// What [`InflightMap::begin`] handed the caller: leadership of a fresh
/// flight (with the cancel handle every waiter shares) or a seat on an
/// existing one.
pub enum FlightRole<C> {
    /// No identical execution was in flight: the caller must run the search
    /// and eventually [`InflightMap::resolve`] the flight.
    Lead {
        /// The fresh flight's shared cancel handle.
        cancel: C,
        /// Present when leadership was won by taking over a corpse: the dead
        /// flight's cancel handle. The caller must trigger it — a worker may
        /// still be wedged on the corpse's execution, and nothing else will
        /// ever release it.
        stale_cancel: Option<C>,
    },
    /// An identical execution is already running; the caller's channel was
    /// registered as a waiter and the result will arrive on it.
    Join,
}

struct Flight<R, C> {
    /// One reply channel per waiting connection (leader included).
    waiters: Vec<Sender<R>>,
    /// Waiters still interested. Decremented by [`InflightMap::abandon`];
    /// at zero the flight's execution is pointless and gets cancelled.
    live: usize,
    /// The cancel handle shared by the single execution.
    cancel: C,
    /// Whether [`InflightMap::abandon`] already handed `cancel` out. The
    /// hand-off is one-shot: once `live` saturates at zero, further racing
    /// abandons (late joiners whose own deadlines fire) must not surface the
    /// handle again and double-cancel a revived flight.
    cancel_taken: bool,
    /// The leader's deadline. A flight can only outlive it by the worker's
    /// resolve lag; one lingering far past it is a corpse (the worker died
    /// between dequeue and resolve) and gets taken over — see
    /// [`STALE_GRACE`].
    deadline: Instant,
}

/// How long past its deadline a flight may linger before `begin` declares
/// it dead and re-leads. Normal resolution removes the entry within the
/// cancel-check lag; only a worker that died mid-resolve leaves a corpse,
/// and without this takeover that `(generation, key)` would time out every
/// future query forever.
const STALE_GRACE: Duration = Duration::from_secs(30);

/// Single-flight registry: at most one execution per `(generation, key)` is
/// in flight at a time; identical concurrent cold queries register as
/// waiters on it and all receive the one result.
///
/// Generic over the result (`R`, cloned per waiter) and the cancel handle
/// (`C`, e.g. a `CancelToken`) so the map itself stays a pure data
/// structure: resolution sends happen in the caller, outside the lock.
pub struct InflightMap<R, C> {
    flights: Mutex<HashMap<(u64, QueryKey), Flight<R, C>>>,
}

impl<R, C: Clone> InflightMap<R, C> {
    /// An empty registry.
    pub fn new() -> Self {
        InflightMap {
            flights: Mutex::named("server.cache.inflight", HashMap::new()),
        }
    }

    /// Register `tx` for the flight over `(generation, key)`. If none is in
    /// flight, `make` builds the flight's cancel handle and the caller
    /// becomes the leader (with `deadline` recorded as the flight's);
    /// otherwise the caller joins the existing flight. A flight lingering
    /// `STALE_GRACE` past its own deadline is a corpse: its waiters are
    /// dropped (their receivers observe the disconnect), the caller re-leads
    /// a fresh flight, and the corpse's cancel handle rides back in
    /// [`FlightRole::Lead::stale_cancel`] for the caller to trigger — a
    /// worker may still be pinned on the dead execution.
    pub fn begin(
        &self,
        generation: u64,
        key: &QueryKey,
        tx: Sender<R>,
        deadline: Instant,
        make: impl FnOnce() -> C,
    ) -> FlightRole<C> {
        let mut flights = self.flights.lock();
        match flights.entry((generation, key.clone())) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let stale = Instant::now()
                    .checked_duration_since(e.get().deadline)
                    .is_some_and(|lag| lag >= STALE_GRACE);
                if stale {
                    let cancel = make();
                    let corpse = e.insert(Flight {
                        waiters: vec![tx],
                        live: 1,
                        cancel: cancel.clone(),
                        cancel_taken: false,
                        deadline,
                    });
                    return FlightRole::Lead {
                        cancel,
                        stale_cancel: Some(corpse.cancel),
                    };
                }
                let flight = e.get_mut();
                flight.waiters.push(tx);
                flight.live += 1;
                FlightRole::Join
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let cancel = make();
                e.insert(Flight {
                    waiters: vec![tx],
                    live: 1,
                    cancel: cancel.clone(),
                    cancel_taken: false,
                    deadline,
                });
                FlightRole::Lead {
                    cancel,
                    stale_cancel: None,
                }
            }
        }
    }

    /// One waiter stopped caring (its own deadline passed or its connection
    /// died). When the last live waiter abandons, the flight's cancel
    /// handle is returned — exactly once — so the caller can stop the
    /// now-pointless execution; the entry itself stays until
    /// [`InflightMap::resolve`], so late joiners in the race window still
    /// get a (cancelled) reply, and their own later abandons are no-ops
    /// rather than a second cancellation.
    pub fn abandon(&self, generation: u64, key: &QueryKey) -> Option<C> {
        let mut flights = self.flights.lock();
        let flight = flights.get_mut(&(generation, key.clone()))?;
        flight.live = flight.live.saturating_sub(1);
        if flight.live == 0 && !flight.cancel_taken {
            flight.cancel_taken = true;
            Some(flight.cancel.clone())
        } else {
            None
        }
    }

    /// The execution finished (or failed to start): remove the flight and
    /// hand back every waiter channel. The caller sends the result outside
    /// the lock.
    pub fn resolve(&self, generation: u64, key: &QueryKey) -> Vec<Sender<R>> {
        let mut flights = self.flights.lock();
        match flights.remove(&(generation, key.clone())) {
            Some(flight) => flight.waiters,
            None => Vec::new(),
        }
    }

    /// Flights currently registered (tests and debugging).
    pub fn len(&self) -> usize {
        self.flights.lock().len()
    }

    /// Whether no flight is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<R, C: Clone> Default for InflightMap<R, C> {
    fn default() -> Self {
        InflightMap::new()
    }
}

impl<V> Inner<V> {
    /// Detach `slot` from the recency list (no-op if already detached).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slots[p].next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slots[n].prev = prev,
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Attach `slot` as most-recently-used.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Drop `slot` entirely: unlink it, unmap its key, and recycle the slab
    /// slot. Used for lazy eviction of cross-generation entries.
    fn remove(&mut self, slot: usize) {
        self.unlink(slot);
        let key = self.slots[slot].key.clone();
        self.map.remove(&key);
        self.free.push(slot);
    }

    /// A validated stale-reclamation candidate, or `None` when every cached
    /// entry is live. `stale_slots` holds hints: a hinted slot may have been
    /// lazily evicted, overwritten in place, or recycled for another key
    /// since the sweep pushed it, so each pop re-checks that the slot still
    /// holds a mapped, stale entry.
    fn pop_stale_slot(&mut self) -> Option<usize> {
        while let Some(slot) = self.stale_slots.pop() {
            let current = self.slots.get(slot).is_some_and(|s| s.stale.is_some())
                && self
                    .slots
                    .get(slot)
                    .is_some_and(|s| self.map.get(&s.key) == Some(&slot));
            if current {
                return Some(slot);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generation used by tests that don't exercise reload coherence.
    const G: u64 = 1;

    fn key(user: u32) -> QueryKey {
        QueryKey::new(user, 10, vec![TermId(0)])
    }

    #[test]
    fn stale_reason_wire_spelling_round_trips() {
        for reason in StaleReason::ALL {
            assert_eq!(StaleReason::from_str(reason.as_str()), Some(reason));
        }
        assert_eq!(StaleReason::from_str("edge-exploded"), None);
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        assert_eq!(cache.get(&key(1), G), None);
        cache.insert(key(1), G, 11);
        assert_eq!(cache.get(&key(1), G), Some(11));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn key_normalizes_term_order() {
        let a = QueryKey::new(1, 5, vec![TermId(3), TermId(1), TermId(3)]);
        let b = QueryKey::new(1, 5, vec![TermId(1), TermId(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_generation_hit_is_a_miss_and_evicts_lazily() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        cache.insert(key(1), 1, 11);
        cache.insert(key(2), 1, 22);
        // Generation 2 takes over: the old entry must not answer, and must
        // be gone afterwards — even for a later generation-1 reader.
        assert_eq!(cache.get(&key(1), 2), None);
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.get(&key(1), 1), None, "stale entry must be evicted");
        assert_eq!(cache.len(), 1, "only the untouched entry remains");
        // Re-populated under generation 2, it hits again.
        cache.insert(key(1), 2, 33);
        assert_eq!(cache.get(&key(1), 2), Some(33));
        // The untouched generation-1 entry still lazily dies on first touch.
        assert_eq!(cache.get(&key(2), 2), None);
        assert_eq!(cache.stale_evictions(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_overwrites_stale_generation_in_place() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 1, 10);
        cache.insert(key(1), 2, 20);
        assert_eq!(cache.get(&key(1), 2), Some(20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn lazy_eviction_recycles_slots() {
        // Stale-evicted slots must be reusable without growing the slab.
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 1, 10);
        cache.insert(key(2), 1, 20);
        assert_eq!(cache.get(&key(1), 2), None); // lazy-evicts slot of key 1
        cache.insert(key(3), 2, 30); // must reuse the freed slot
        assert_eq!(cache.get(&key(3), 2), Some(30));
        cache.insert(key(4), 2, 40); // at capacity again → LRU eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache: QueryCache<u64> = QueryCache::new(3);
        for u in 0..3 {
            cache.insert(key(u), G, u as u64);
        }
        // Touch 0 so 1 becomes LRU.
        assert!(cache.get(&key(0), G).is_some());
        cache.insert(key(3), G, 3);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(&key(1), G), None, "LRU entry should be gone");
        assert!(cache.get(&key(0), G).is_some());
        assert!(cache.get(&key(2), G).is_some());
        assert!(cache.get(&key(3), G).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn overwrite_updates_value_in_place() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), G, 10);
        cache.insert(key(1), G, 20);
        assert_eq!(cache.get(&key(1), G), Some(20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: QueryCache<u64> = QueryCache::new(0);
        cache.insert(key(1), G, 10);
        assert_eq!(cache.get(&key(1), G), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let cache: QueryCache<u64> = QueryCache::new(8);
        for round in 0..1000u32 {
            cache.insert(key(round % 13), G, round as u64);
            let _ = cache.get(&key((round * 7) % 13), G);
        }
        assert!(cache.len() <= 8);
        // Every cached entry must still be retrievable.
        let mut live = 0;
        for u in 0..13 {
            if cache.get(&key(u), G).is_some() {
                live += 1;
            }
        }
        assert_eq!(live, 8);
    }

    #[test]
    fn mark_all_stale_kills_entries_lazily_with_a_typed_reason() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        cache.insert(key(1), 1, 11);
        cache.insert(key(2), 1, 22);
        cache.mark_all_stale(StaleReason::FullReload);
        assert_eq!(cache.len_by_liveness(), (0, 2));
        assert_eq!(cache.stale_by_reason()[StaleReason::FullReload.index()], 2);
        // Same generation, but the flag alone kills the entry on touch.
        assert_eq!(cache.get(&key(1), 1), None);
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn at_capacity_insert_reclaims_stale_slots_before_live_entries() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 1, 11);
        cache.insert(key(2), 1, 22);
        cache.mark_all_stale(StaleReason::FullReload);
        // A cache full of corpses: fresh inserts must reclaim them instead
        // of evicting each other through the LRU path.
        cache.insert(key(3), 2, 33);
        cache.insert(key(4), 2, 44);
        assert_eq!(cache.evictions(), 0, "no live entry was evicted");
        assert_eq!(cache.get(&key(3), 2), Some(33));
        assert_eq!(cache.get(&key(4), 2), Some(44));
        assert_eq!(cache.len_by_liveness(), (2, 0));
        // Genuinely full of live entries again: LRU eviction resumes.
        cache.insert(key(5), 2, 55);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn update_retag_keeps_survivors_and_types_stale_reasons() {
        let cache: QueryCache<u64> = QueryCache::new(8);
        // Generation-1 entries: Γ-affected user, assignment-term match,
        // edge-term match, and one the delta cannot touch.
        cache.insert(QueryKey::new(5, 10, vec![TermId(9)]), 1, 1);
        cache.insert(QueryKey::new(1, 10, vec![TermId(2)]), 1, 2);
        cache.insert(QueryKey::new(2, 10, vec![TermId(3)]), 1, 3);
        cache.insert(QueryKey::new(3, 10, vec![TermId(9)]), 1, 4);
        // An older-generation leftover gets the full-reload backstop: its
        // provenance is unknown, surviving it would be unsound.
        cache.insert(QueryKey::new(4, 10, vec![TermId(9)]), 0, 5);
        let scope = DeltaScope {
            edge_users: vec![NodeId(5), NodeId(7)],
            assignment_terms: vec![TermId(2)],
            edge_terms: vec![TermId(3)],
        };
        cache.retag_after_update(1, 2, &scope);
        assert_eq!(cache.survivors(), 1);
        let by = cache.stale_by_reason();
        assert_eq!(by[StaleReason::EdgeAdded.index()], 2);
        assert_eq!(by[StaleReason::AssignmentChanged.index()], 1);
        assert_eq!(by[StaleReason::FullReload.index()], 1);
        assert_eq!(by[StaleReason::EdgeRemoved.index()], 0);
        // The survivor answers under the new generation without recompute…
        assert_eq!(
            cache.get(&QueryKey::new(3, 10, vec![TermId(9)]), 2),
            Some(4)
        );
        // …while every affected entry is a miss.
        assert_eq!(cache.get(&QueryKey::new(5, 10, vec![TermId(9)]), 2), None);
        assert_eq!(cache.get(&QueryKey::new(1, 10, vec![TermId(2)]), 2), None);
        assert_eq!(cache.get(&QueryKey::new(2, 10, vec![TermId(3)]), 2), None);
        assert_eq!(cache.get(&QueryKey::new(4, 10, vec![TermId(9)]), 2), None);
    }

    #[test]
    fn hottest_ranks_frequent_keys_first() {
        let cache: QueryCache<u64> = QueryCache::new(4);
        for _ in 0..5 {
            let _ = cache.get(&key(1), G);
        }
        for _ in 0..3 {
            let _ = cache.get(&key(2), G);
        }
        let _ = cache.get(&key(3), G);
        assert_eq!(cache.hottest(2), vec![key(1), key(2)]);
        assert_eq!(cache.hottest(10).len(), 3);
        // Zero-capacity caches never track (caching is disabled wholesale).
        let off: QueryCache<u64> = QueryCache::new(0);
        let _ = off.get(&key(1), G);
        assert!(off.hottest(4).is_empty());
    }

    #[test]
    fn contains_peeks_without_counting() {
        let cache: QueryCache<u64> = QueryCache::new(2);
        cache.insert(key(1), 1, 10);
        assert!(cache.contains(&key(1), 1));
        assert!(!cache.contains(&key(1), 2), "wrong generation");
        assert!(!cache.contains(&key(2), 1), "never inserted");
        assert_eq!(cache.hits() + cache.misses(), 0, "peeks count nothing");
        cache.mark_all_stale(StaleReason::FullReload);
        assert!(!cache.contains(&key(1), 1), "stale entries don't count");
    }

    /// A deadline far enough out that no test flight ever reads as stale.
    fn soon() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn single_flight_leads_then_joins_then_resolves() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, rx1) = crossbeam::channel::bounded(1);
        let (tx2, rx2) = crossbeam::channel::bounded(1);
        assert!(matches!(
            m.begin(1, &key(7), tx1, soon(), || 99),
            FlightRole::Lead {
                cancel: 99,
                stale_cancel: None
            }
        ));
        assert!(matches!(
            m.begin(1, &key(7), tx2, soon(), || unreachable!(
                "joiner never makes a handle"
            )),
            FlightRole::Join
        ));
        assert_eq!(m.len(), 1, "one flight covers both callers");
        let waiters = m.resolve(1, &key(7));
        assert_eq!(waiters.len(), 2);
        for tx in waiters {
            tx.send(42).unwrap();
        }
        assert_eq!(rx1.recv().unwrap(), 42);
        assert_eq!(rx2.recv().unwrap(), 42);
        assert!(m.is_empty());
    }

    #[test]
    fn different_generation_or_key_is_a_separate_flight() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx, _rx) = crossbeam::channel::bounded(1);
        assert!(matches!(
            m.begin(1, &key(7), tx.clone(), soon(), || 1),
            FlightRole::Lead { .. }
        ));
        assert!(matches!(
            m.begin(2, &key(7), tx.clone(), soon(), || 2),
            FlightRole::Lead { .. }
        ));
        assert!(matches!(
            m.begin(1, &key(8), tx, soon(), || 3),
            FlightRole::Lead { .. }
        ));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn a_flight_lingering_past_grace_is_taken_over() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, rx1) = crossbeam::channel::bounded::<u64>(1);
        let (tx2, _rx2) = crossbeam::channel::bounded(1);
        // A corpse: its deadline passed more than STALE_GRACE ago (clamped
        // to "now" if the clock is too young to subtract from, in which
        // case the flight reads fresh and the takeover simply can't be
        // exercised — skip rather than flake).
        let Some(long_dead) = Instant::now().checked_sub(STALE_GRACE + Duration::from_secs(1))
        else {
            return;
        };
        assert!(matches!(
            m.begin(1, &key(7), tx1, long_dead, || 1),
            FlightRole::Lead {
                cancel: 1,
                stale_cancel: None
            }
        ));
        // The next identical query must not join the corpse forever: it
        // re-leads, and the corpse's cancel handle is surfaced so the
        // caller can release any worker still wedged on the dead execution.
        assert!(matches!(
            m.begin(1, &key(7), tx2, soon(), || 2),
            FlightRole::Lead {
                cancel: 2,
                stale_cancel: Some(1)
            }
        ));
        assert_eq!(m.len(), 1, "takeover replaces, never duplicates");
        assert!(
            rx1.try_recv().is_err(),
            "corpse waiter sees disconnect, not a value"
        );
    }

    #[test]
    fn last_abandon_surfaces_the_cancel_handle_but_keeps_the_entry() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, _rx1) = crossbeam::channel::bounded(1);
        let (tx2, _rx2) = crossbeam::channel::bounded(1);
        let _ = m.begin(1, &key(7), tx1, soon(), || 5);
        let _ = m.begin(1, &key(7), tx2, soon(), || unreachable!());
        assert_eq!(m.abandon(1, &key(7)), None, "one waiter still live");
        assert_eq!(m.abandon(1, &key(7)), Some(5), "last abandon cancels");
        assert_eq!(
            m.abandon(1, &key(7)),
            None,
            "the cancel hand-off is one-shot, even with live saturated at 0"
        );
        // The entry survives so a racing resolve still finds the waiters.
        assert_eq!(m.resolve(1, &key(7)).len(), 2);
        assert_eq!(m.abandon(1, &key(7)), None, "resolved flight: no-op");
    }

    #[test]
    fn a_revived_flight_is_not_double_cancelled_by_a_racing_abandon() {
        let m: InflightMap<u64, u32> = InflightMap::new();
        let (tx1, _rx1) = crossbeam::channel::bounded(1);
        let (tx2, _rx2) = crossbeam::channel::bounded(1);
        let _ = m.begin(1, &key(7), tx1, soon(), || 5);
        assert_eq!(m.abandon(1, &key(7)), Some(5), "sole waiter left: cancel");
        // A late joiner revives the flight in the window before resolve…
        assert!(matches!(
            m.begin(1, &key(7), tx2, soon(), || unreachable!()),
            FlightRole::Join
        ));
        // …and its own abandon must not surface the handle a second time.
        assert_eq!(
            m.abandon(1, &key(7)),
            None,
            "an already-cancelled flight is never cancelled twice"
        );
    }

    #[test]
    fn heavy_churn_across_generations_keeps_list_consistent() {
        // Interleave generation bumps with inserts and lookups: the slab,
        // map, and recency list must stay mutually consistent.
        let cache: QueryCache<u64> = QueryCache::new(8);
        for round in 0..2000u32 {
            let generation = 1 + (round / 100) as u64;
            cache.insert(key(round % 13), generation, round as u64);
            let _ = cache.get(&key((round * 7) % 13), generation);
            let _ = cache.get(&key((round * 3) % 13), generation.saturating_sub(1));
        }
        assert!(cache.len() <= 8);
        let final_generation = 1 + (1999 / 100) as u64;
        let mut live = 0;
        for u in 0..13 {
            if cache.get(&key(u), final_generation).is_some() {
                live += 1;
            }
        }
        assert!(live <= 8);
        assert!(cache.stale_evictions() > 0);
    }
}
