//! One client connection as a state machine driven by the I/O threads.
//!
//! A [`Conn`] owns a nonblocking socket plus its read/write buffers and is
//! stepped by [`crate::event::io_loop`] whenever the loop sweeps. Each step
//! flushes pending output, polls whatever the connection is waiting on
//! (worker reply, admin reply), and parses/dispatches newly arrived frames.
//! Nothing here blocks: CPU work goes to the worker pool, admin mutations
//! go to the updater thread, and the connection just remembers which reply
//! channel it is awaiting. An idle or slow client therefore costs one file
//! descriptor and a few KiB of buffer — never a thread.
//!
//! Dispatch semantics (verb set, error taxonomy, counter bumps, trace
//! finalization) are identical to the retired thread-per-connection
//! `serve_connection`: served rankings are bit-for-bit the same.

use crate::cache::QueryKey;
use crate::event::EventShared;
use crate::metrics::Metrics;
use crate::pool::{Admission, ExpandJob, Job, JobError, JobReply, QueryJob, ReplyTo};
use crate::protocol::{self, Request, Response, MAX_FRAME_BYTES};
use crate::trace::TraceCtx;
use crate::{AdminJob, AdminReply};
use crossbeam::channel::{self, Receiver, TryRecvError};
use pit::Delta;
use pit_graph::{NodeId, TopicId};
use pit_search_core::{CancelToken, SearchError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Read chunk size per sweep; frames larger than this just take more sweeps.
const READ_CHUNK: usize = 4096;

/// What a connection is currently waiting on (if anything).
enum Mode {
    /// Parsing and dispatching inbound frames.
    Reading,
    /// A `QUERY` is with the worker pool (directly or via a flight).
    AwaitQuery {
        rx: Receiver<JobReply>,
        key: QueryKey,
        generation: u64,
        /// When the request was dispatched; the reply's latency and the
        /// budget both measure from here, so validation and cache-probe
        /// time count *against* the budget, never on top of it.
        started: Instant,
        deadline: Instant,
        wait: Waiting,
    },
    /// An `EXPAND` round is with the worker pool.
    AwaitExpand { rx: Receiver<Response> },
    /// An admin verb is with the updater thread.
    AwaitAdmin { rx: Receiver<AdminReply> },
    /// Flush whatever is buffered, then close.
    Closing,
}

/// How an awaited `QUERY` reply will arrive.
enum Waiting {
    /// Coalescing off: this waiter owns the execution and its token.
    Direct { cancel: CancelToken },
    /// Flight leader: the worker resolves the flight and finalizes the
    /// trace; this waiter abandons through the flight on timeout.
    Lead,
    /// Flight joiner: shares the leader's execution; owns (and must
    /// finalize) its own trace.
    Join { trace: TraceCtx },
}

/// One client connection owned by an I/O thread.
pub(crate) struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    sent: usize,
    last_activity: Instant,
    mode: Mode,
}

/// Outcome of one [`Conn::step`]: does the connection stay registered, and
/// did it make observable progress (used for the event loop's backoff)?
pub(crate) struct Stepped {
    pub alive: bool,
    pub progress: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            sent: 0,
            last_activity: now,
            mode: Mode::Reading,
        }
    }

    /// Queue one rendered response frame for writing.
    fn queue(&mut self, response: &Response) {
        // Writing into a Vec cannot fail.
        let _ = protocol::write_frame(&mut self.outbuf, &response.render());
        // Serving a reply is activity: the idle allowance measures silence
        // *between* exchanges, so a query that legitimately ran for longer
        // than `io_timeout` must not get its connection cut (reply still
        // queued!) the moment it is answered.
        self.last_activity = Instant::now();
    }

    /// Abandon whatever this connection is awaiting (it is going away):
    /// cancel a direct execution, or deregister from the shared flight —
    /// the last waiter to leave cancels the flight's execution.
    fn abandon_wait(&mut self, shared: &EventShared) {
        if let Mode::AwaitQuery {
            key,
            generation,
            wait,
            ..
        } = &self.mode
        {
            match wait {
                Waiting::Direct { cancel } => cancel.cancel(),
                Waiting::Lead | Waiting::Join { .. } => {
                    shared.state.flight_abandon(*generation, key);
                }
            }
        }
        self.mode = Mode::Closing;
    }

    /// Drive the connection one sweep. `stopping` is the drain flag: an
    /// in-flight request still finishes and gets its reply, but at most one
    /// buffered frame is served before the connection closes.
    pub(crate) fn step(&mut self, shared: &EventShared, stopping: bool, now: Instant) -> Stepped {
        let mut progress = false;
        if !self.flush(&mut progress) {
            self.abandon_wait(shared);
            return Stepped {
                alive: false,
                progress: true,
            };
        }
        self.poll_waits(shared, stopping, now, &mut progress);
        let alive = match self.mode {
            Mode::Reading => self.pump_reads(shared, stopping, now, &mut progress),
            // Keep the fd until the farewell frame is fully flushed.
            Mode::Closing if self.outbuf.is_empty() => {
                progress = true;
                false
            }
            _ => true,
        };
        if !alive {
            self.abandon_wait(shared);
        }
        Stepped { alive, progress }
    }

    /// Nonblocking write of whatever is queued. Returns false when the
    /// socket is dead.
    fn flush(&mut self, progress: &mut bool) -> bool {
        while self.sent < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.sent..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.sent += n;
                    self.last_activity = Instant::now();
                    *progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.sent == self.outbuf.len() && !self.outbuf.is_empty() {
            self.outbuf.clear();
            self.sent = 0;
        }
        true
    }

    /// Poll the awaited reply channel, if any, and turn its answer (or the
    /// deadline) into a queued response.
    fn poll_waits(
        &mut self,
        shared: &EventShared,
        stopping: bool,
        now: Instant,
        progress: &mut bool,
    ) {
        let after_reply = |stopping: bool| {
            if stopping {
                Mode::Closing
            } else {
                Mode::Reading
            }
        };
        match std::mem::replace(&mut self.mode, Mode::Reading) {
            Mode::AwaitQuery {
                rx,
                key,
                generation,
                started,
                deadline,
                wait,
            } => match rx.try_recv() {
                Ok(reply) => {
                    let response = reply_response(shared, &reply);
                    if let Waiting::Join { trace } = wait {
                        // The worker finalized only the leader's trace; a
                        // joiner observes its own wait and closes its own
                        // trace before the reply is released.
                        let elapsed = started.elapsed();
                        let outcome = match &reply {
                            Ok((_, _, partial)) => {
                                shared.state.metrics().latency.observe(elapsed);
                                if partial.is_empty() {
                                    "ok"
                                } else {
                                    "partial"
                                }
                            }
                            Err(JobError::Search(SearchError::Cancelled { .. })) => "timeout",
                            Err(JobError::Panicked) => "panic",
                            Err(_) => "error",
                        };
                        shared.state.tracing().finish(
                            trace,
                            &key,
                            outcome,
                            false,
                            None,
                            elapsed,
                            shared.state.metrics(),
                        );
                    }
                    self.queue(&response);
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
                Err(TryRecvError::Empty) if now >= deadline => {
                    match wait {
                        Waiting::Direct { cancel } => cancel.cancel(),
                        Waiting::Lead => shared.state.flight_abandon(generation, &key),
                        Waiting::Join { trace } => {
                            shared.state.flight_abandon(generation, &key);
                            shared.state.tracing().finish(
                                trace,
                                &key,
                                "timeout",
                                false,
                                None,
                                started.elapsed(),
                                shared.state.metrics(),
                            );
                        }
                    }
                    Metrics::bump(&shared.state.metrics().timeouts);
                    self.queue(&Response::Err("timeout".to_string()));
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
                Err(TryRecvError::Empty) => {
                    self.mode = Mode::AwaitQuery {
                        rx,
                        key,
                        generation,
                        started,
                        deadline,
                        wait,
                    };
                }
                // A dropped reply sender means the worker died without even
                // a caught panic — a server fault, never a slow query.
                Err(TryRecvError::Disconnected) => {
                    if let Waiting::Join { trace } = wait {
                        shared.state.tracing().finish(
                            trace,
                            &key,
                            "error",
                            false,
                            None,
                            started.elapsed(),
                            shared.state.metrics(),
                        );
                    }
                    Metrics::bump(&shared.state.metrics().internal_errors);
                    self.queue(&Response::Err("internal: worker vanished".to_string()));
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
            },
            Mode::AwaitExpand { rx } => match rx.try_recv() {
                Ok(response) => {
                    self.queue(&response);
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
                Err(TryRecvError::Empty) => self.mode = Mode::AwaitExpand { rx },
                Err(TryRecvError::Disconnected) => {
                    Metrics::bump(&shared.state.metrics().internal_errors);
                    self.queue(&Response::Err("internal: worker vanished".to_string()));
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
            },
            Mode::AwaitAdmin { rx } => match rx.try_recv() {
                Ok(reply) => {
                    let response = match reply {
                        Ok(Some(generation)) => Response::Generation(generation),
                        Ok(None) => Response::Staged,
                        Err(reason) => Response::Err(reason),
                    };
                    self.queue(&response);
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
                Err(TryRecvError::Empty) => self.mode = Mode::AwaitAdmin { rx },
                Err(TryRecvError::Disconnected) => {
                    self.queue(&Response::Err("shutting-down".to_string()));
                    self.mode = after_reply(stopping);
                    *progress = true;
                }
            },
            other => self.mode = other,
        }
    }

    /// Read whatever the socket has, then parse and dispatch frames until
    /// the connection starts waiting on something (or runs out of input).
    /// Returns false when the connection should close.
    fn pump_reads(
        &mut self,
        shared: &EventShared,
        stopping: bool,
        now: Instant,
        progress: &mut bool,
    ) -> bool {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return false, // clean EOF
                Ok(n) => {
                    self.inbuf.extend_from_slice(&buf[..n]);
                    self.last_activity = now;
                    *progress = true;
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        loop {
            if !matches!(self.mode, Mode::Reading) {
                return true;
            }
            match self.take_frame() {
                Ok(Some(text)) => {
                    *progress = true;
                    self.dispatch(&text, shared, stopping);
                    if stopping && matches!(self.mode, Mode::Reading) {
                        // Drain: one buffered request gets its answer, the
                        // rest of the pipeline does not outlive the server.
                        self.mode = Mode::Closing;
                        return true;
                    }
                }
                Ok(None) => break,
                // Oversized frame or invalid UTF-8: the stream is not
                // trustworthy past this point, mirroring the blocking
                // reader's hard error.
                Err(()) => return false,
            }
        }
        if stopping {
            // Nothing buffered to serve; drain means go away now.
            return false;
        }
        // Idle accounting against a real clock: `last_activity` moves on
        // every byte in or out, so a spurious wake can neither stretch nor
        // shrink the allowance.
        now.duration_since(self.last_activity) < shared.state.config().io_timeout
    }

    /// Pop one complete frame off `inbuf`, if present.
    fn take_frame(&mut self) -> Result<Option<String>, ()> {
        if self.inbuf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.inbuf[0], self.inbuf[1], self.inbuf[2], self.inbuf[3]])
            as usize;
        if len > MAX_FRAME_BYTES {
            return Err(());
        }
        if self.inbuf.len() < 4 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.inbuf.drain(..4 + len).skip(4).collect();
        match String::from_utf8(payload) {
            Ok(text) => Ok(Some(text)),
            Err(_) => Err(()),
        }
    }

    /// Dispatch one parsed frame: answer inline, or switch to an `Await*`
    /// mode with the reply channel. Mirrors the retired `serve_connection`
    /// verb-for-verb.
    fn dispatch(&mut self, text: &str, shared: &EventShared, stopping: bool) {
        let state = &*shared.state;
        match Request::parse(text) {
            Err(reason) => {
                Metrics::bump(&state.metrics().errors);
                self.queue(&Response::Err(reason));
            }
            Ok(Request::Ping) => self.queue(&Response::Pong),
            Ok(Request::Stats) => self.queue(&Response::Stats(state.stats())),
            Ok(Request::Metrics) => self.queue(&Response::Metrics(state.metrics_text())),
            Ok(Request::Trace { n }) => self.queue(&Response::Traces(state.tracing().dump(n))),
            Ok(Request::Shutdown) => {
                shared.stop.store(true, Ordering::Release);
                self.queue(&Response::Bye);
                self.mode = Mode::Closing;
            }
            Ok(Request::Reload { dir }) => self.submit_admin(shared, |reply| AdminJob::Reload {
                dir: PathBuf::from(dir),
                reply,
            }),
            Ok(Request::Update { edges, assignments }) => {
                let delta = build_delta(&edges, &assignments);
                self.submit_admin(shared, |reply| AdminJob::Update { delta, reply });
            }
            Ok(Request::PrepareDir { dir }) => {
                self.submit_admin(shared, |reply| AdminJob::PrepareDir {
                    dir: PathBuf::from(dir),
                    reply,
                });
            }
            Ok(Request::PrepareUpdate { edges, assignments }) => {
                let delta = build_delta(&edges, &assignments);
                self.submit_admin(shared, |reply| AdminJob::PrepareUpdate { delta, reply });
            }
            Ok(Request::Commit) => self.submit_admin(shared, |reply| AdminJob::Commit { reply }),
            Ok(Request::Abort) => self.submit_admin(shared, |reply| AdminJob::Abort { reply }),
            Ok(Request::Shard) => {
                let current = state.current();
                let (index, count) = match current.engine.shard_spec() {
                    Some(spec) => (spec.index, spec.count),
                    None => (0, current.engine.shard_count()),
                };
                self.queue(&Response::ShardInfo {
                    index,
                    count,
                    gen: current.generation,
                });
            }
            Ok(Request::Expand { gen, terms, probes }) => {
                self.begin_expand(shared, gen, terms, probes);
            }
            Ok(Request::Query { user, k, keywords }) => {
                self.begin_query(shared, stopping, user, k, &keywords);
            }
        }
    }

    /// Hand one admin mutation to the updater thread and await its reply.
    /// Queries on other connections keep flowing the whole time — that is
    /// the point of the dedicated updater.
    fn submit_admin(
        &mut self,
        shared: &EventShared,
        make_job: impl FnOnce(channel::Sender<AdminReply>) -> AdminJob,
    ) {
        let (reply_tx, reply_rx) = channel::bounded(1);
        if shared.admin.send(make_job(reply_tx)).is_err() {
            self.queue(&Response::Err("shutting-down".to_string()));
            return;
        }
        self.mode = Mode::AwaitAdmin { rx: reply_rx };
    }

    /// Dispatch one `EXPAND` probe round to the worker pool. The round is a
    /// pure read with no budget of its own; the *router's* query budget
    /// bounds the wait, and a shard that answers late is reported `partial`
    /// there.
    fn begin_expand(
        &mut self,
        shared: &EventShared,
        gen: u64,
        terms: Vec<u32>,
        probes: Vec<(u32, f64)>,
    ) {
        let state = &*shared.state;
        let current = state.current();
        if current.generation != gen {
            // A reload landed between the router's admission and this round.
            // Refusing is what makes mixed-generation answers structurally
            // impossible: the router sees the error and reports the shard.
            Metrics::bump(&state.metrics().internal_errors);
            self.queue(&Response::Err(format!(
                "internal: shard generation changed (serving {}, request {gen})",
                current.generation
            )));
            return;
        }
        let (reply_tx, reply_rx) = channel::bounded(1);
        match shared.pool.submit(Job::Expand(ExpandJob {
            engine: current,
            terms,
            probes,
            reply: reply_tx,
        })) {
            Admission::Queued => self.mode = Mode::AwaitExpand { rx: reply_rx },
            Admission::Overloaded => {
                Metrics::bump(&state.metrics().shed);
                self.queue(&Response::Err("overloaded".to_string()));
            }
            Admission::Closed => self.queue(&Response::Err("shutting-down".to_string())),
        }
    }

    /// Admit one `QUERY`: validate, probe the cache, then either lead or
    /// join a single flight (coalescing on) or submit a direct execution.
    fn begin_query(
        &mut self,
        shared: &EventShared,
        stopping: bool,
        user: u32,
        k: usize,
        keywords: &[String],
    ) {
        let state = &*shared.state;
        let started = Instant::now();
        // Capture the serving generation once: validation, cache lookup,
        // execution, and cache fill all use this engine, even if a RELOAD
        // swap lands mid-request.
        let current = state.current();
        let key = match state.make_key(current.engine.as_ref(), user, k, keywords) {
            Ok(key) => key,
            Err(reason) => {
                Metrics::bump(&state.metrics().errors);
                self.queue(&Response::Err(reason));
                return;
            }
        };
        if stopping {
            self.queue(&Response::Err("shutting-down".to_string()));
            return;
        }
        // The sampling decision for this query, made once; every later hook
        // is a single branch when it said no.
        let mut trace = state.tracing().begin(current.generation, started);
        trace.begin(pit_obs::trace::Stage::CacheProbe);
        let looked_up = state.lookup(&key, current.generation);
        trace.end(
            pit_obs::trace::Stage::CacheProbe,
            u64::from(looked_up.is_some()),
        );
        if let Some(ranked) = looked_up {
            Metrics::bump(&state.metrics().queries);
            let elapsed = started.elapsed();
            state.metrics().latency.observe(elapsed);
            state
                .tracing()
                .finish(trace, &key, "ok", true, None, elapsed, state.metrics());
            self.queue(&Response::Topics {
                ranked: (*ranked).clone(),
                cached: true,
                micros: elapsed.as_micros().min(u64::MAX as u128) as u64,
                // Partial answers are never cached, so a hit is complete.
                partial: Vec::new(),
            });
            return;
        }
        // The deadline is anchored at `started`, so validation and the
        // cache probe spend *from* the budget instead of extending it.
        let deadline = started + state.config().query_budget;
        let generation = current.generation;
        let (reply_tx, reply_rx) = channel::bounded(1);
        if state.config().coalesce {
            match state.flight_begin(generation, &key, reply_tx, deadline) {
                Some(cancel) => {
                    // Leader: submit the one shared execution. An admission
                    // refusal must answer *every* waiter of the flight —
                    // joiners raced in between flight_begin and here.
                    let job = Job::Query(QueryJob {
                        engine: current,
                        key: key.clone(),
                        enqueued: started,
                        cancel,
                        reply: ReplyTo::Flight,
                        trace,
                    });
                    match shared.pool.submit(job) {
                        Admission::Queued => {
                            self.mode = Mode::AwaitQuery {
                                rx: reply_rx,
                                key,
                                generation,
                                started,
                                deadline,
                                wait: Waiting::Lead,
                            };
                        }
                        Admission::Overloaded => {
                            state.flight_resolve(generation, &key, &Err(JobError::Shed));
                            self.drain_refusal(shared, reply_rx);
                        }
                        Admission::Closed => {
                            state.flight_resolve(generation, &key, &Err(JobError::Closed));
                            self.drain_refusal(shared, reply_rx);
                        }
                    }
                }
                None => {
                    // Joiner: the flight's single execution answers us too.
                    self.mode = Mode::AwaitQuery {
                        rx: reply_rx,
                        key,
                        generation,
                        started,
                        deadline,
                        wait: Waiting::Join { trace },
                    };
                }
            }
        } else {
            Metrics::bump(&state.metrics().inflight_executions);
            let cancel = state.query_token(deadline);
            let job = Job::Query(QueryJob {
                engine: current,
                key: key.clone(),
                enqueued: started,
                cancel: cancel.clone(),
                reply: ReplyTo::Direct(reply_tx),
                trace,
            });
            match shared.pool.submit(job) {
                Admission::Queued => {
                    self.mode = Mode::AwaitQuery {
                        rx: reply_rx,
                        key,
                        generation,
                        started,
                        deadline,
                        wait: Waiting::Direct { cancel },
                    };
                }
                Admission::Overloaded => {
                    Metrics::bump(&state.metrics().shed);
                    self.queue(&Response::Err("overloaded".to_string()));
                }
                Admission::Closed => self.queue(&Response::Err("shutting-down".to_string())),
            }
        }
    }

    /// A flight the leader could not admit was just resolved with the
    /// refusal; our own copy is sitting in `rx`. Deliver it like any other
    /// reply so the leader and every joiner answer identically.
    fn drain_refusal(&mut self, shared: &EventShared, rx: Receiver<JobReply>) {
        if let Ok(reply) = rx.try_recv() {
            let response = reply_response(shared, &reply);
            self.queue(&response);
        } else {
            self.queue(&Response::Err("shutting-down".to_string()));
        }
    }
}

/// Build a [`Delta`] from the wire's raw edge/assignment tuples.
fn build_delta(edges: &[(u32, u32, f64)], assignments: &[(u32, u32)]) -> Delta {
    Delta {
        new_edges: edges
            .iter()
            .map(|&(u, v, p)| (NodeId(u), NodeId(v), p))
            .collect(),
        new_assignments: assignments
            .iter()
            .map(|&(u, t)| (NodeId(u), TopicId(t)))
            .collect(),
    }
}

/// Map one worker reply onto the wire, bumping exactly the counters the
/// thread-per-connection path bumped — once per *client* reply, so N
/// coalesced waiters still count as N queries.
fn reply_response(shared: &EventShared, reply: &JobReply) -> Response {
    let state = &*shared.state;
    match reply {
        Ok((ranked, micros, partial)) => {
            Metrics::bump(&state.metrics().queries);
            Response::Topics {
                ranked: (**ranked).clone(),
                cached: false,
                micros: *micros,
                partial: partial.clone(),
            }
        }
        // The worker noticed the deadline before our sweep did (it checks
        // the token's own clock): still a timeout.
        Err(JobError::Search(SearchError::Cancelled { .. })) => {
            Metrics::bump(&state.metrics().timeouts);
            Response::Err("timeout".to_string())
        }
        // Unreachable through make_key, but surfaced honestly if a key is
        // ever built around validation.
        Err(JobError::Search(e @ SearchError::UserOutOfRange { .. })) => {
            Metrics::bump(&state.metrics().errors);
            Response::Err(format!("malformed: {e}"))
        }
        Err(JobError::Panicked) => {
            Metrics::bump(&state.metrics().internal_errors);
            Response::Err("internal: query execution panicked".to_string())
        }
        // The query user's own home shard was unreachable: there is no
        // honest ranking to degrade from, so the whole query fails as a
        // server fault.
        Err(JobError::Shard(reason)) => {
            Metrics::bump(&state.metrics().internal_errors);
            Response::Err(format!("internal: {reason}"))
        }
        Err(JobError::Shed) => {
            Metrics::bump(&state.metrics().shed);
            Response::Err("overloaded".to_string())
        }
        Err(JobError::Closed) => Response::Err("shutting-down".to_string()),
    }
}
