//! Shared read-only serving state: the engine, the result cache, and the
//! counters — everything a worker or connection thread touches.
//!
//! The offline artifacts (graph, topic space, walk/propagation/representative
//! indexes) are loaded once and never mutated while serving, so `ServerState`
//! hands out plain shared references; the only synchronized pieces are the
//! LRU cache (mutex) and the metrics (atomics).

use crate::cache::{QueryCache, QueryKey};
use crate::metrics::Metrics;
use pit::PitEngine;
use pit_graph::NodeId;
use pit_search_core::{CancelToken, SearchError};
use pit_topics::KeywordQuery;
use std::sync::Arc;
use std::time::Duration;

/// A cached top-k result: `(topic id, influence score)` in rank order,
/// behind an `Arc` so cache hits never copy the ranking.
pub type RankedTopics = Arc<Vec<(u32, f64)>>;

/// Serving knobs. Every field maps to a `pit serve` flag.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue sheds with `ERR overloaded`.
    pub queue_depth: usize,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-query time budget (queue wait + execution); expiry yields
    /// `ERR timeout`.
    pub query_budget: Duration,
    /// Socket read/write deadline for client connections.
    pub io_timeout: Duration,
    /// Propagation tables the searcher probes between cancellation checks.
    /// Smaller means a timed-out query releases its worker sooner, at the
    /// cost of more frequent deadline reads.
    pub cancel_check_tables: u32,
    /// Fault injection (tests / chaos drills): queries from this user panic
    /// inside the worker, exercising the catch-unwind + respawn path.
    pub poison_user: Option<u32>,
    /// Fault injection: queries from this user sleep [`Self::drag_per_check`]
    /// at every cancellation check, making them deliberately slow so the
    /// deadline/cancellation path is observable.
    pub drag_user: Option<u32>,
    /// Per-check injected delay for [`Self::drag_user`] queries.
    pub drag_per_check: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 16);
        ServerConfig {
            workers,
            queue_depth: 128,
            cache_capacity: 1024,
            query_budget: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            cancel_check_tables: CancelToken::DEFAULT_CHECK_EVERY,
            poison_user: None,
            drag_user: None,
            drag_per_check: Duration::ZERO,
        }
    }
}

/// Immutable serving state shared by the acceptor, connection threads, and
/// the worker pool.
pub struct ServerState {
    engine: Arc<PitEngine>,
    cache: QueryCache<RankedTopics>,
    metrics: Metrics,
    config: ServerConfig,
}

impl ServerState {
    /// Wrap a fully built engine for serving.
    pub fn new(engine: Arc<PitEngine>, config: ServerConfig) -> Self {
        ServerState {
            cache: QueryCache::new(config.cache_capacity),
            metrics: Metrics::new(),
            engine,
            config,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The serving counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The underlying engine.
    pub fn engine(&self) -> &PitEngine {
        &self.engine
    }

    /// Validate a request and resolve its keywords into a cache key.
    ///
    /// # Errors
    /// A `malformed …` reason when the user is out of range or a keyword is
    /// not in the vocabulary; sent back verbatim in an `ERR` reply.
    pub fn make_key(&self, user: u32, k: usize, keywords: &[String]) -> Result<QueryKey, String> {
        let nodes = self.engine.graph().node_count();
        if user as usize >= nodes {
            return Err(format!(
                "malformed: user {user} out of range (graph has {nodes} users)"
            ));
        }
        let vocab = self
            .engine
            .vocab()
            .ok_or_else(|| "malformed: engine has no vocabulary".to_string())?;
        let terms = keywords
            .iter()
            .map(|kw| {
                vocab
                    .get(kw)
                    .ok_or_else(|| format!("malformed: unknown keyword {kw}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Keyword order and duplicates never change the answer — the searcher
        // unions topic postings over terms — so the normalized key is exact.
        Ok(QueryKey::new(user, k, terms))
    }

    /// Cache lookup only; counts a hit or miss.
    pub fn lookup(&self, key: &QueryKey) -> Option<RankedTopics> {
        self.cache.get(key)
    }

    /// Run the search under `cancel` and populate the cache on success.
    /// This is the expensive path — call it from a worker, not from a
    /// connection thread.
    ///
    /// # Errors
    /// Propagates the searcher's typed failures: cancellation (budget
    /// expiry) or an unindexed user.
    ///
    /// # Panics
    /// Panics when the key matches the configured `poison_user` fault
    /// injection — callers (the worker pool) isolate this via
    /// `catch_unwind`.
    pub fn try_execute(
        &self,
        key: &QueryKey,
        cancel: &CancelToken,
    ) -> Result<RankedTopics, SearchError> {
        if self.config.poison_user == Some(key.user) {
            panic!("poisoned query for user {} (fault injection)", key.user);
        }
        let dragged;
        let cancel = if self.config.drag_user == Some(key.user) {
            dragged = cancel.clone().with_check_delay(self.config.drag_per_check);
            &dragged
        } else {
            cancel
        };
        let query = KeywordQuery::new(NodeId(key.user), key.terms.clone());
        let outcome = self.engine.try_search(&query, key.k, cancel)?;
        let ranked: RankedTopics =
            Arc::new(outcome.top_k.iter().map(|s| (s.topic.0, s.score)).collect());
        self.cache.insert(key.clone(), Arc::clone(&ranked));
        Ok(ranked)
    }

    /// Everything `STATS` reports: serving counters, cache counters, and a
    /// short inventory of the resident index.
    pub fn stats(&self) -> Vec<(String, String)> {
        let mut pairs = self.metrics.snapshot();
        pairs.extend(self.cache.snapshot());
        pairs.push(("workers".into(), self.config.workers.to_string()));
        pairs.push(("queue_depth".into(), self.config.queue_depth.to_string()));
        pairs.push((
            "graph_nodes".into(),
            self.engine.graph().node_count().to_string(),
        ));
        pairs.push((
            "topics".into(),
            self.engine.space().topic_count().to_string(),
        ));
        pairs.push(("index_bytes".into(), self.engine.index_bytes().to_string()));
        pairs
    }
}
