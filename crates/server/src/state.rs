//! Shared serving state: the (swappable) engine, the result cache, and the
//! counters — everything a worker, connection thread, or the updater thread
//! touches.
//!
//! The offline artifacts (graph, topic space, walk/propagation/representative
//! indexes) are immutable *per generation*: queries never mutate an engine.
//! What can change is **which** engine is serving — a live `RELOAD` or
//! `UPDATE` builds a successor off to the side and swaps it in atomically
//! under [`ServerState`]'s generation lock. Readers grab an [`EngineGen`]
//! (an `Arc` plus its generation number) once per request and keep using it
//! even if a swap lands mid-flight; the old engine is freed when the last
//! in-flight query drops its `Arc`. The only other synchronized pieces are
//! the LRU cache (mutex, generation-tagged entries) and the metrics
//! (atomics).

use crate::cache::{FlightRole, InflightMap, QueryCache, QueryKey, StaleReason};
use crate::engine::{LocalServeEngine, ServeEngine, ServeError, ServeOutcome};
use crate::metrics::Metrics;
use crate::pool::JobReply;
use crate::trace::TraceCollector;
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use pit::{Delta, DeltaScope, PitEngine, UpdateReport};
use pit_graph::NodeId;
use pit_obs::prom;
use pit_search_core::{CancelToken, SearchScratch, SearchTracer};
use pit_topics::KeywordQuery;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cached top-k result: `(topic id, influence score)` in rank order,
/// behind an `Arc` so cache hits never copy the ranking.
pub type RankedTopics = Arc<Vec<(u32, f64)>>;

/// One generation of the serving engine: the shared engine plus the
/// monotonically increasing generation number it serves under. Capture one
/// of these at admission and use it for the whole request — validation,
/// cache lookup, execution, and cache fill all agree on a single engine
/// even if a swap lands mid-flight.
#[derive(Clone)]
pub struct EngineGen {
    /// The engine; in-flight queries keep the `Arc` they captured. Behind
    /// the [`ServeEngine`] trait so a single-node engine, a shard slice,
    /// and a scatter-gather router all serve through the same machinery.
    pub engine: Arc<dyn ServeEngine>,
    /// Serving generation, starting at 1 and bumped by every swap.
    pub generation: u64,
}

/// Serving knobs. Every field maps to a `pit serve` flag.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue sheds with `ERR overloaded`.
    pub queue_depth: usize,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-query time budget (queue wait + execution); expiry yields
    /// `ERR timeout`.
    pub query_budget: Duration,
    /// Socket read/write deadline for client connections.
    pub io_timeout: Duration,
    /// I/O threads running the readiness event loop. Each owns a share of
    /// the client sockets; connections cost file descriptors, not threads,
    /// so this stays small no matter how many clients are connected.
    pub io_threads: usize,
    /// Single-flight coalescing: concurrent identical cold queries share
    /// one execution and one cache fill. On by default; off restores one
    /// execution per admitted query.
    pub coalesce: bool,
    /// Propagation tables the searcher probes between cancellation checks.
    /// Smaller means a timed-out query releases its worker sooner, at the
    /// cost of more frequent deadline reads.
    pub cancel_check_tables: u32,
    /// Fault injection (tests / chaos drills): queries from this user panic
    /// inside the worker, exercising the catch-unwind + respawn path.
    pub poison_user: Option<u32>,
    /// Fault injection: queries from this user sleep [`Self::drag_per_check`]
    /// at every cancellation check, making them deliberately slow so the
    /// deadline/cancellation path is observable.
    pub drag_user: Option<u32>,
    /// Per-check injected delay for [`Self::drag_user`] queries.
    pub drag_per_check: Duration,
    /// Fault injection: stretch every `RELOAD`/`UPDATE` by this much
    /// *before* the swap, so tests can prove queries keep flowing on the
    /// old generation while a slow reload is in flight.
    pub reload_drag: Duration,
    /// Trace one query in this many (0 disables sampling). Sampled queries
    /// record per-stage spans into the trace ring, readable via `TRACE`.
    pub trace_sample: u64,
    /// Queries slower than this land in the slow-query log regardless of
    /// the sampling rate.
    pub slow_threshold: Duration,
    /// Capacity of the trace ring and the slow-query log (each).
    pub trace_ring: usize,
    /// Time budget for the post-`RELOAD` cache warmup job on the updater
    /// thread (zero disables warmup). After a blanket flush, the hottest
    /// cached keys are replayed through the normal worker path until the
    /// budget runs out, shrinking the cold cliff clients would otherwise
    /// absorb.
    pub warmup_budget: Duration,
    /// How many of the hottest keys the warmup job replays, at most.
    pub warmup_top: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 16);
        ServerConfig {
            workers,
            queue_depth: 128,
            cache_capacity: 1024,
            query_budget: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            io_threads: 2,
            coalesce: true,
            cancel_check_tables: CancelToken::DEFAULT_CHECK_EVERY,
            poison_user: None,
            drag_user: None,
            drag_per_check: Duration::ZERO,
            reload_drag: Duration::ZERO,
            trace_sample: 0,
            slow_threshold: Duration::from_secs(1),
            trace_ring: 256,
            warmup_budget: Duration::ZERO,
            warmup_top: 16,
        }
    }
}

/// What a generation swap does to the result cache, decided by the swap's
/// provenance: a full engine replacement can vouch for nothing (flush),
/// while a delta apply knows its exact blast radius (retag survivors).
enum CacheAction {
    /// Mark every entry stale with the given reason.
    Flush(StaleReason),
    /// Delta-aware sweep: entries outside the scope survive re-tagged.
    Retag(DeltaScope),
}

/// Serving state shared by the acceptor, connection threads, the worker
/// pool, and the updater thread.
pub struct ServerState {
    engine: RwLock<EngineGen>,
    /// The two-phase staging slot: a successor engine built by `PREPARE`
    /// awaiting `COMMIT` (swap in) or `ABORT` (drop). Held only for the
    /// instant of a stage/take — never while building or serving.
    staged: Mutex<Option<Arc<dyn ServeEngine>>>,
    cache: QueryCache<RankedTopics>,
    /// Single-flight registry: one execution per `(generation, key)` at a
    /// time; concurrent identical cold queries wait on it instead of
    /// recomputing the same ranking N times (the post-reload herd).
    inflight: InflightMap<JobReply, CancelToken>,
    metrics: Metrics,
    tracing: TraceCollector,
    config: ServerConfig,
}

impl ServerState {
    /// Wrap a fully built single-node engine for serving, as generation 1.
    pub fn new(engine: Arc<PitEngine>, config: ServerConfig) -> Self {
        Self::with_engine(Arc::new(LocalServeEngine::full(engine)), config)
    }

    /// Wrap any [`ServeEngine`] (shard slice, router, …) for serving, as
    /// generation 1.
    pub fn with_engine(engine: Arc<dyn ServeEngine>, config: ServerConfig) -> Self {
        ServerState {
            cache: QueryCache::new(config.cache_capacity),
            inflight: InflightMap::new(),
            metrics: Metrics::new(),
            tracing: TraceCollector::new(
                config.trace_sample,
                config.slow_threshold,
                config.trace_ring,
            ),
            engine: RwLock::named(
                "server.state.engine",
                EngineGen {
                    engine,
                    generation: 1,
                },
            ),
            staged: Mutex::named("server.state.staged", None),
            config,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The serving counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The per-query trace collector (sampling, trace ring, slow-query log).
    pub fn tracing(&self) -> &TraceCollector {
        &self.tracing
    }

    /// The engine generation serving right now. Cheap (an `Arc` clone under
    /// a read lock); capture once per request.
    pub fn current(&self) -> EngineGen {
        self.engine.read().clone()
    }

    /// Install `engine` as the next generation, apply `action` to the
    /// cache, and return the new generation number. Queries admitted before
    /// the swap finish against the `Arc` they captured; queries admitted
    /// after see only the new engine.
    ///
    /// The cache sweep runs while the engine write lock is still held: no
    /// reader can capture the new generation until the sweep finishes, so
    /// the generation backstop in [`QueryCache::get`] can never evict a
    /// survivor in the instant before it is re-tagged. (Lock nesting is
    /// engine → cache; nothing locks in the other order.) Stale entries
    /// still die lazily — the sweep only flips flags, it frees nothing.
    fn swap_engine(&self, engine: Arc<dyn ServeEngine>, action: CacheAction) -> u64 {
        let mut slot = self.engine.write();
        let from_gen = slot.generation;
        slot.engine = engine;
        slot.generation += 1;
        let to_gen = slot.generation;
        match action {
            CacheAction::Flush(reason) => self.cache.mark_all_stale(reason),
            CacheAction::Retag(scope) => self.cache.retag_after_update(from_gen, to_gen, &scope),
        }
        to_gen
    }

    /// Load the snapshot at `dir` and swap it in. Runs on the updater
    /// thread: the worker pool keeps answering queries on the old
    /// generation for the whole load.
    ///
    /// # Errors
    /// A `reload-failed: …` reason when the snapshot is missing, torn, or
    /// corrupt; the old generation keeps serving and `reload_failures` is
    /// bumped.
    pub fn reload(&self, dir: &Path) -> Result<u64, String> {
        let base = self.current();
        self.admin_swap(|| {
            let next = base.engine.successor_from_dir(dir)?;
            // A wholesale replacement can vouch for no cached entry.
            Ok((next, CacheAction::Flush(StaleReason::FullReload)))
        })
    }

    /// Apply an edge/assignment delta to the current engine (building the
    /// successor off to the side; see [`PitEngine::with_delta`]) and swap
    /// the result in. Runs on the updater thread. An empty delta is a no-op
    /// that reports the current generation without a swap.
    ///
    /// Unlike a full reload, the delta's [`DeltaScope`] is known exactly,
    /// so the swap re-tags cache entries outside the scope instead of
    /// flushing: untouched users keep hitting across the generation bump.
    ///
    /// # Errors
    /// A `reload-failed: …` reason when the delta is invalid (bad edge or
    /// unknown topic); the old generation keeps serving.
    pub fn apply_update(&self, delta: &Delta) -> Result<(u64, UpdateReport), String> {
        if delta.is_empty() {
            return Ok((self.current().generation, UpdateReport::default()));
        }
        let mut report = UpdateReport::default();
        let base = self.current();
        let generation = self.admin_swap(|| {
            let (next, r) = base.engine.successor_from_delta(delta)?;
            let scope = r.scope.clone();
            report = r;
            Ok((next, CacheAction::Retag(scope)))
        })?;
        Ok((generation, report))
    }

    /// Two-phase reload, phase one: build a successor from the snapshot at
    /// `dir` and park it in the staging slot. Nothing serves it until
    /// `COMMIT`; a subsequent `PREPARE` replaces it. Runs on the updater
    /// thread.
    ///
    /// # Errors
    /// A `reload-failed: …` reason; the staging slot is left as it was and
    /// `reload_failures` is bumped.
    pub fn prepare_dir(&self, dir: &Path) -> Result<(), String> {
        let base = self.current();
        self.stage(|| base.engine.successor_from_dir(dir))
    }

    /// Two-phase update, phase one: build a successor by applying `delta`
    /// and park it in the staging slot.
    ///
    /// # Errors
    /// Same contract as [`ServerState::prepare_dir`].
    pub fn prepare_update(&self, delta: &Delta) -> Result<(), String> {
        let base = self.current();
        self.stage(|| Ok(base.engine.successor_from_delta(delta)?.0))
    }

    /// Shared staging plumbing: run `build` (slow), park the successor on
    /// success. The build time lands in `reload_latency` — the commit
    /// itself is just a pointer swap.
    fn stage(
        &self,
        build: impl FnOnce() -> Result<Arc<dyn ServeEngine>, String>,
    ) -> Result<(), String> {
        let started = Instant::now();
        if !self.config.reload_drag.is_zero() {
            std::thread::sleep(self.config.reload_drag);
        }
        match build() {
            Ok(engine) => {
                self.metrics.reload_latency.observe(started.elapsed());
                *self.staged.lock() = Some(engine);
                Ok(())
            }
            Err(reason) => {
                Metrics::bump(&self.metrics.reload_failures);
                Err(reason)
            }
        }
    }

    /// Two-phase reload, phase two: swap the staged successor in and bump
    /// the generation.
    ///
    /// # Errors
    /// A `reload-failed: …` reason when nothing is staged.
    pub fn commit_staged(&self) -> Result<u64, String> {
        let staged = self.staged.lock().take();
        match staged {
            Some(engine) => {
                // The staged successor may have been built from a delta, but
                // the staging slot does not carry its scope and an arbitrary
                // time passed since PREPARE — flush, don't guess.
                let generation =
                    self.swap_engine(engine, CacheAction::Flush(StaleReason::FullReload));
                Metrics::bump(&self.metrics.reloads);
                Ok(generation)
            }
            None => {
                Metrics::bump(&self.metrics.reload_failures);
                Err("reload-failed: nothing staged; PREPARE first".to_string())
            }
        }
    }

    /// Two-phase reload, abort: drop whatever is staged (idempotent — a
    /// router aborting its whole fleet must be able to hit backends that
    /// never staged) and report the still-serving generation.
    pub fn abort_staged(&self) -> u64 {
        *self.staged.lock() = None;
        self.current().generation
    }

    /// Shared swap plumbing: run `build` (slow — a disk load or a delta
    /// apply), then swap on success with the cache action `build` decided,
    /// maintaining the reload counters and latency histogram either way.
    fn admin_swap(
        &self,
        build: impl FnOnce() -> Result<(Arc<dyn ServeEngine>, CacheAction), String>,
    ) -> Result<u64, String> {
        let started = Instant::now();
        if !self.config.reload_drag.is_zero() {
            std::thread::sleep(self.config.reload_drag);
        }
        match build() {
            Ok((engine, action)) => {
                let generation = self.swap_engine(engine, action);
                Metrics::bump(&self.metrics.reloads);
                self.metrics.reload_latency.observe(started.elapsed());
                Ok(generation)
            }
            Err(reason) => {
                Metrics::bump(&self.metrics.reload_failures);
                Err(reason)
            }
        }
    }

    /// Validate a request against `engine` and resolve its keywords into a
    /// cache key. Pass the [`EngineGen`] captured at admission so the key
    /// is consistent with the engine the query will run on.
    ///
    /// # Errors
    /// A `malformed …` reason when the user is out of range or a keyword is
    /// not in the vocabulary; sent back verbatim in an `ERR` reply.
    pub fn make_key(
        &self,
        engine: &dyn ServeEngine,
        user: u32,
        k: usize,
        keywords: &[String],
    ) -> Result<QueryKey, String> {
        // A shard slice refuses direct queries outright: its local answer
        // would be silently wrong once expansion crosses shard boundaries.
        if let Some(reason) = engine.forbid_direct_query() {
            return Err(reason);
        }
        let nodes = engine.node_count();
        if user as usize >= nodes {
            return Err(format!(
                "malformed: user {user} out of range (graph has {nodes} users)"
            ));
        }
        let terms = engine.resolve_terms(keywords)?;
        // Keyword order and duplicates never change the answer — the searcher
        // unions topic postings over terms — so the normalized key is exact.
        Ok(QueryKey::new(user, k, terms))
    }

    /// Cache lookup only, as seen by `generation`; counts a hit or miss.
    /// A pre-swap entry never answers a post-swap lookup.
    pub fn lookup(&self, key: &QueryKey, generation: u64) -> Option<RankedTopics> {
        self.cache.get(key, generation)
    }

    /// The `n` most-frequently-queried cache keys (hottest first), from the
    /// cache's frequency sketch. Feeds the post-reload warmup job.
    pub fn hot_keys(&self, n: usize) -> Vec<QueryKey> {
        self.cache.hottest(n)
    }

    /// Whether a live cache entry for `key` exists under `generation`,
    /// without counting a hit or miss. The warmup job uses this to skip
    /// keys a client query already repopulated.
    pub fn cached_under(&self, key: &QueryKey, generation: u64) -> bool {
        self.cache.contains(key, generation)
    }

    /// A fresh cancellation token armed with `deadline` and the configured
    /// check cadence — the single source of truth for one query's budget.
    pub fn query_token(&self, deadline: Instant) -> CancelToken {
        CancelToken::with_flag(Arc::new(AtomicBool::new(false)))
            .with_deadline(deadline)
            .with_check_every(self.config.cancel_check_tables)
    }

    /// Single-flight admission for a cold query under `generation`.
    /// Returns `Some(token)` when the caller leads a fresh flight (it must
    /// submit the one execution, which resolves via
    /// [`ServerState::flight_resolve`]) and `None` when it joined an
    /// existing one — either way `tx` receives the flight's single
    /// [`JobReply`]. Counts leaders in `inflight_executions` and joiners in
    /// `coalesced_queries`.
    pub fn flight_begin(
        &self,
        generation: u64,
        key: &QueryKey,
        tx: Sender<JobReply>,
        deadline: Instant,
    ) -> Option<CancelToken> {
        let role = self
            .inflight
            .begin(generation, key, tx, deadline, || self.query_token(deadline));
        match role {
            FlightRole::Lead {
                cancel,
                stale_cancel,
            } => {
                if let Some(corpse) = stale_cancel {
                    // Leadership was taken over from a dead flight. A worker
                    // may still be wedged on the corpse's execution; firing
                    // its cancel handle is the only thing that releases it.
                    corpse.cancel();
                }
                Metrics::bump(&self.metrics.inflight_executions);
                Some(cancel)
            }
            FlightRole::Join => {
                Metrics::bump(&self.metrics.coalesced_queries);
                None
            }
        }
    }

    /// One flight waiter gave up (its deadline passed or its connection
    /// died). When the last live waiter abandons, the shared execution is
    /// cancelled — nobody is left to care about its result.
    pub fn flight_abandon(&self, generation: u64, key: &QueryKey) {
        if let Some(cancel) = self.inflight.abandon(generation, key) {
            cancel.cancel();
        }
    }

    /// Deliver one reply to every waiter of the flight over
    /// `(generation, key)` and retire it. Waiters that already gave up are
    /// skipped harmlessly (their receivers are gone).
    pub fn flight_resolve(&self, generation: u64, key: &QueryKey, reply: &JobReply) {
        for tx in self.inflight.resolve(generation, key) {
            let _ = tx.send(reply.clone());
        }
    }

    /// Run the search on the captured engine under `cancel` and populate
    /// the cache (tagged with the captured generation) on success. This is
    /// the expensive path — call it from a worker, not from a connection
    /// thread. `tracer` receives the searcher's stage callbacks (inert
    /// unless the query was sampled; see [`crate::trace::TraceCtx`]).
    ///
    /// # Errors
    /// Propagates the searcher's typed failures: cancellation (budget
    /// expiry) or an unindexed user.
    ///
    /// # Panics
    /// Panics when the key matches the configured `poison_user` fault
    /// injection — callers (the worker pool) isolate this via
    /// `catch_unwind`.
    pub fn try_execute(
        &self,
        engine: &EngineGen,
        key: &QueryKey,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        scratch: &mut SearchScratch,
    ) -> Result<(RankedTopics, ServeOutcome), ServeError> {
        if self.config.poison_user == Some(key.user) {
            panic!("poisoned query for user {} (fault injection)", key.user);
        }
        let dragged;
        let cancel = if self.config.drag_user == Some(key.user) {
            dragged = cancel.clone().with_check_delay(self.config.drag_per_check);
            &dragged
        } else {
            cancel
        };
        let query = KeywordQuery::new(NodeId(key.user), key.terms.clone());
        let outcome = engine
            .engine
            .try_search(&query, key.k, cancel, tracer, scratch)?;
        let ranked: RankedTopics = Arc::new(outcome.ranked.clone());
        Metrics::add(
            &self.metrics.shards_pruned,
            u64::from(outcome.shards_pruned),
        );
        for &(shard, micros) in &outcome.fanout_micros {
            self.metrics.observe_shard_fanout(shard, micros);
        }
        if outcome.partial.is_empty() {
            // Tagged with the generation that computed it: if a swap landed
            // mid-search this entry is already stale and will be lazily
            // evicted on its first post-swap touch instead of ever answering.
            self.cache
                .insert(key.clone(), engine.generation, Arc::clone(&ranked));
        } else {
            // A partial ranking is an honest degraded answer for *this*
            // request only — caching it would keep serving the degradation
            // after the shard recovers.
            Metrics::bump(&self.metrics.partial_replies);
        }
        Ok((ranked, outcome))
    }

    /// Everything `STATS` reports: serving counters, cache counters, the
    /// serving generation, and a short inventory of the resident index.
    pub fn stats(&self) -> Vec<(String, String)> {
        let current = self.current();
        let mut pairs = self.metrics.snapshot();
        pairs.extend(self.cache.snapshot());
        pairs.push(("generation".into(), current.generation.to_string()));
        pairs.push(("workers".into(), self.config.workers.to_string()));
        pairs.push(("queue_depth".into(), self.config.queue_depth.to_string()));
        pairs.push(("io_threads".into(), self.config.io_threads.to_string()));
        pairs.push((
            "open_connections".into(),
            Metrics::value(&self.metrics.open_connections).to_string(),
        ));
        pairs.push((
            "queued_jobs".into(),
            Metrics::value(&self.metrics.queued_jobs).to_string(),
        ));
        pairs.push((
            "graph_nodes".into(),
            current.engine.node_count().to_string(),
        ));
        pairs.push(("topics".into(), current.engine.topic_count().to_string()));
        pairs.push((
            "index_bytes".into(),
            current.engine.index_bytes().to_string(),
        ));
        pairs.push(("shards".into(), current.engine.shard_count().to_string()));
        pairs.push((
            "snapshot_format".into(),
            current.engine.snapshot_format().to_string(),
        ));
        pairs
    }

    /// Everything `METRICS` reports, as Prometheus text exposition: the
    /// serving counters and histograms, the cache counters, and the
    /// resident-index gauges. Names are part of the wire contract — a
    /// rename breaks downstream dashboards, so the full set is pinned by a
    /// golden test.
    pub fn metrics_text(&self) -> String {
        let mut out = String::with_capacity(8192);
        self.metrics.render_prometheus(&mut out);
        prom::counter(
            &mut out,
            "pit_cache_hits_total",
            "Result-cache hits",
            self.cache.hits(),
        );
        prom::counter(
            &mut out,
            "pit_cache_misses_total",
            "Result-cache misses",
            self.cache.misses(),
        );
        prom::counter(
            &mut out,
            "pit_cache_evictions_total",
            "Result-cache LRU evictions (capacity pressure)",
            self.cache.evictions(),
        );
        prom::counter(
            &mut out,
            "pit_cache_stale_evictions_total",
            "Result-cache entries lazily evicted after a generation swap",
            self.cache.stale_evictions(),
        );
        prom::counter(
            &mut out,
            "pit_cache_survivors_total",
            "Result-cache entries that outlived an UPDATE swap untouched",
            self.cache.survivors(),
        );
        let by_reason = self.cache.stale_by_reason();
        let reason_series: Vec<(&str, u64)> = StaleReason::ALL
            .iter()
            .zip(by_reason.iter())
            .map(|(r, &v)| (r.as_str(), v))
            .collect();
        prom::counter_labeled(
            &mut out,
            "pit_cache_stale_by_reason_total",
            "Result-cache entries marked stale by a swap, by reason",
            "reason",
            &reason_series,
        );
        let current = self.current();
        let (cache_live, cache_stale) = self.cache.len_by_liveness();
        prom::gauge(
            &mut out,
            "pit_generation",
            "Engine generation serving right now",
            current.generation,
        );
        prom::gauge(
            &mut out,
            "pit_cache_entries",
            "Result-cache entries resident",
            self.cache.len() as u64,
        );
        prom::gauge(
            &mut out,
            "pit_cache_entries_live",
            "Result-cache entries currently able to answer",
            cache_live as u64,
        );
        prom::gauge(
            &mut out,
            "pit_cache_entries_stale",
            "Swap-killed result-cache entries awaiting lazy eviction",
            cache_stale as u64,
        );
        prom::gauge(
            &mut out,
            "pit_workers",
            "Configured query worker threads",
            self.config.workers as u64,
        );
        prom::gauge(
            &mut out,
            "pit_queue_depth",
            "Configured request-queue capacity",
            self.config.queue_depth as u64,
        );
        prom::gauge(
            &mut out,
            "pit_io_threads",
            "Configured event-loop I/O threads",
            self.config.io_threads as u64,
        );
        prom::gauge(
            &mut out,
            "pit_open_connections",
            "Client connections currently registered with the I/O threads",
            Metrics::value(&self.metrics.open_connections),
        );
        prom::gauge(
            &mut out,
            "pit_queued_jobs",
            "Jobs currently admitted to the worker queue (queued or executing)",
            Metrics::value(&self.metrics.queued_jobs),
        );
        prom::gauge(
            &mut out,
            "pit_graph_nodes",
            "Social-graph nodes in the serving engine",
            current.engine.node_count() as u64,
        );
        prom::gauge(
            &mut out,
            "pit_topics",
            "Topics in the serving engine",
            current.engine.topic_count() as u64,
        );
        prom::gauge(
            &mut out,
            "pit_index_bytes",
            "Resident bytes of the three offline indexes",
            current.engine.index_bytes() as u64,
        );
        prom::gauge(
            &mut out,
            "pit_shards",
            "Backing shards answering for this server (1 unless routing)",
            u64::from(current.engine.shard_count()),
        );
        prom::gauge_f64(
            &mut out,
            "pit_warmup_coverage",
            "Fraction of the last warmup run's target keys repopulated",
            self.metrics.warmup_coverage(),
        );
        prom::gauge(
            &mut out,
            "pit_reload_bytes_mapped",
            "Index bytes served zero-copy from the flat snapshot mapping",
            current.engine.mapped_bytes(),
        );
        out
    }
}
