//! `pit-server`: a concurrent TCP query daemon over the PIT-Search index.
//!
//! The offline artifacts (graph, topic space, walk/propagation/representative
//! indexes) are wrapped in an [`Arc`]-shared [`ServerState`] and served
//! read-only by a fixed worker pool. The wire format is length-prefixed
//! UTF-8 text ([`protocol`]); admission control is a bounded queue
//! ([`pool`]) that sheds with `ERR overloaded`, every query carries a time
//! budget that expires into `ERR timeout`, and repeated queries hit an LRU
//! result cache ([`cache`]). `SHUTDOWN` drains in-flight queries before the
//! listener exits.
//!
//! **The engine is live-swappable.** The paper's Section 4.4 requires the
//! offline artifacts to be refreshed "after a period of time when the
//! social network and topics have changed"; a daemon that loads once and
//! serves forever would go stale. The `RELOAD <dir>` and `UPDATE` admin
//! verbs hand a snapshot load / [`pit::Delta`] apply to a dedicated
//! **updater thread**, so the worker pool keeps answering queries on the
//! old generation for the whole (possibly long) rebuild; only the final
//! pointer swap takes a write lock, for nanoseconds. In-flight queries
//! finish against the engine `Arc` they captured at admission; queries
//! admitted after the swap see the new generation; cache entries are tagged
//! with the generation that computed them and a cross-generation hit is a
//! miss ([`cache`]), so no post-swap response is ever served from a
//! pre-swap ranking. A failed load or apply leaves the old generation
//! serving and answers `ERR reload-failed …`.
//!
//! Failure semantics are deadline-true and typed. A query's budget travels
//! as a `CancelToken` (shared flag + deadline) checked cooperatively
//! inside the search, so expiry frees the worker mid-flight instead of
//! merely abandoning the waiter. Every `ERR` reason names what actually
//! happened:
//!
//! | reason           | meaning                                            |
//! |------------------|----------------------------------------------------|
//! | `timeout`        | the budget expired; the search was cancelled       |
//! | `overloaded`     | the bounded queue was full; query shed at admission|
//! | `malformed …`    | the request itself was invalid                     |
//! | `internal …`     | a server fault (panicking job, vanished worker)    |
//! | `reload-failed …`| a RELOAD/UPDATE failed; old generation still serves|
//! | `shutting-down`  | the server is draining                             |
//!
//! Worker panics are caught per job ([`pool`]) and, should one ever escape,
//! the dying worker is respawned — an index bug costs one reply
//! (`ERR internal`), never a worker, and is counted in `STATS` (`panics`,
//! `internal_errors`) instead of masquerading as a timeout.
//!
//! Threading model — connections cost file descriptors, not threads:
//!
//! ```text
//! acceptor ──round-robin──► io threads (event loop) ──try_send──► bounded queue
//!    │                        ▲   ▲ │  [conn state machines]           │
//!    │ (shutdown flag)        │   └─┴──reply channels────◄──────── worker pool
//!    │                        └─reply── updater thread (RELOAD/UPDATE,
//!    │                                   swaps the engine generation)
//!    └── on shutdown: stop accepting, drop the io channels, io threads
//!        drain their connections, then join updater, drain pool (the
//!        updater holds a pool sender for warmup, so it retires first)
//! ```
//!
//! A fixed set of I/O threads (`event`) own every client socket as a
//! nonblocking state machine (`conn`); CPU work is handed to the worker
//! pool and admin mutations to the updater, so tens of thousands of idle or
//! slow clients never exhaust threads — the failure mode that used to drop
//! connections silently at accept. Concurrent identical cold queries are
//! **coalesced** into a single flight ([`cache::InflightMap`]): one
//! execution, one cache fill, every waiter gets the same reply — which is
//! what keeps a post-`RELOAD` thundering herd from recomputing the same
//! ranking N times.

#![forbid(unsafe_code)]

pub mod cache;
mod conn;
pub mod engine;
mod event;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod state;
pub mod trace;

pub use cache::{QueryCache, QueryKey};
pub use engine::{LocalServeEngine, ServeEngine, ServeError, ServeOutcome};
pub use metrics::{LatencyHistogram, Metrics};
pub use protocol::{read_frame, write_frame, ProbeTable, Request, Response, MAX_FRAME_BYTES};
pub use state::{EngineGen, RankedTopics, ServerConfig, ServerState};
pub use trace::{TraceCollector, TraceCtx};

use crossbeam::channel::{self, Receiver, Sender};
use pit::Delta;
use pool::{Admission, Job, PoolClient, QueryJob, ReplyTo, WorkerPool};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the acceptor sleeps when the listener has nothing for it; also
/// bounds how fast it notices the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running server. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (or send the `SHUTDOWN` verb) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address — useful when the server was started on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful stop: stop accepting, let in-flight queries
    /// finish, then exit. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Block until the acceptor, every connection, and the worker pool have
    /// exited.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Bind `addr` and serve `state` until `SHUTDOWN` (wire or handle).
///
/// # Errors
/// Propagates the bind failure.
pub fn serve<A: ToSocketAddrs>(state: Arc<ServerState>, addr: A) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let pool = WorkerPool::start(Arc::clone(&state));
    let (admin_tx, admin_rx) = channel::unbounded::<AdminJob>();
    let updater = {
        let state = Arc::clone(&state);
        let jobs = pool.client();
        std::thread::Builder::new()
            .name("pit-updater".to_string())
            .spawn(move || updater_loop(&admin_rx, &state, &jobs))?
    };
    let shared = Arc::new(event::EventShared {
        state,
        pool,
        admin: admin_tx,
        stop: Arc::clone(&stop),
    });
    // A fixed, small I/O thread count — connection count never grows it.
    let io_threads = shared.state.config().io_threads.max(1);
    let mut senders = Vec::with_capacity(io_threads);
    let mut io_handles = Vec::with_capacity(io_threads);
    for i in 0..io_threads {
        let (tx, rx) = channel::unbounded::<TcpStream>();
        let shared = Arc::clone(&shared);
        io_handles.push(
            std::thread::Builder::new()
                .name(format!("pit-io-{i}"))
                .spawn(move || event::io_loop(&shared, &rx))?,
        );
        senders.push(tx);
    }
    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("pit-acceptor".to_string())
            .spawn(move || accept_loop(&listener, shared, senders, io_handles, updater, &stop))?
    };
    Ok(ServerHandle {
        addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// What the updater thread answers a successful admin verb with: a new
/// serving generation (`RELOAD`/`UPDATE`/`COMMIT`/`ABORT`, rendered as
/// `GEN <n>`) or a parked-but-not-serving stage (`PREPARE …`, rendered as
/// `STAGED`).
pub(crate) type AdminReply = Result<Option<u64>, String>;

/// One admin mutation bound for the updater thread. Every verb replies
/// through the same [`AdminReply`] shape or a `reload-failed: …` reason.
pub(crate) enum AdminJob {
    /// `RELOAD <dir>`: load the snapshot at `dir`, swap it in.
    Reload {
        dir: PathBuf,
        reply: Sender<AdminReply>,
    },
    /// `UPDATE`: apply an edge/assignment delta to the serving engine.
    Update {
        delta: Delta,
        reply: Sender<AdminReply>,
    },
    /// `PREPARE DIR <dir>`: build the successor engine but park it staged —
    /// phase one of a router's all-or-nothing fleet reload.
    PrepareDir {
        dir: PathBuf,
        reply: Sender<AdminReply>,
    },
    /// `PREPARE UPDATE`: apply a delta into the staged slot without serving.
    PrepareUpdate {
        delta: Delta,
        reply: Sender<AdminReply>,
    },
    /// `COMMIT`: swap whatever is staged into service.
    Commit { reply: Sender<AdminReply> },
    /// `ABORT`: discard any staged engine; idempotent.
    Abort { reply: Sender<AdminReply> },
}

/// The updater thread: serializes every engine mutation so concurrent
/// RELOAD/UPDATE requests apply one at a time, and the worker pool never
/// blocks on a rebuild. Exits when the last admin sender drops (drain),
/// after finishing whatever was already queued.
///
/// After a successful blanket-flush swap (`RELOAD`/`COMMIT`) the thread
/// runs the bounded cache warmup ([`warm_cache`]) before replying, so a
/// `GEN <n>` answer means the new generation's cache is as warm as the
/// budget allowed. `UPDATE` never warms: its delta-scoped retag keeps the
/// unaffected entries alive, which is the whole point of this module.
fn updater_loop(rx: &Receiver<AdminJob>, state: &ServerState, jobs: &PoolClient) {
    while let Ok(job) = rx.recv() {
        match job {
            AdminJob::Reload { dir, reply } => {
                let result = state.reload(&dir);
                if result.is_ok() {
                    warm_cache(state, jobs);
                }
                let _ = reply.send(result.map(Some));
            }
            AdminJob::Update { delta, reply } => {
                let _ = reply.send(
                    state
                        .apply_update(&delta)
                        .map(|(generation, _)| Some(generation)),
                );
            }
            AdminJob::PrepareDir { dir, reply } => {
                let _ = reply.send(state.prepare_dir(&dir).map(|()| None));
            }
            AdminJob::PrepareUpdate { delta, reply } => {
                let _ = reply.send(state.prepare_update(&delta).map(|()| None));
            }
            AdminJob::Commit { reply } => {
                let result = state.commit_staged();
                if result.is_ok() {
                    warm_cache(state, jobs);
                }
                let _ = reply.send(result.map(Some));
            }
            AdminJob::Abort { reply } => {
                let _ = reply.send(Ok(Some(state.abort_staged())));
            }
        }
    }
}

/// Replay the hottest query keys through the normal worker path so the
/// first clients after a blanket flush hit a warm cache instead of forming
/// a thundering herd of cold misses. Runs on the updater thread, strictly
/// bounded by `warmup_budget` (zero disables warmup entirely, the
/// default); each replayed query also carries the regular per-query budget
/// so one dragged search cannot eat the whole window.
///
/// Replays go through the pool's bounded queue like any client query —
/// `Overloaded` means real traffic is already warming the cache the honest
/// way, so that key is simply skipped. Keys whose user fell out of the new
/// engine (a shrinking reload) are dropped; keys a live client already
/// repopulated count as warmed without a replay.
fn warm_cache(state: &ServerState, jobs: &PoolClient) {
    let budget = state.config().warmup_budget;
    if budget.is_zero() || state.config().cache_capacity == 0 {
        return;
    }
    let metrics = state.metrics();
    let current = state.current();
    let keys = state.hot_keys(state.config().warmup_top);
    Metrics::set(&metrics.warmup_target, keys.len() as u64);
    Metrics::set(&metrics.warmup_warmed, 0);
    let deadline = Instant::now() + budget;
    let mut warmed = 0u64;
    for key in keys {
        let now = Instant::now();
        let remaining = deadline.saturating_duration_since(now);
        if remaining.is_zero() {
            Metrics::bump(&metrics.warmup_budget_exhausted);
            break;
        }
        if key.user as usize >= current.engine.node_count() {
            continue;
        }
        if state.cached_under(&key, current.generation) {
            warmed += 1;
            continue;
        }
        let (tx, rx) = channel::bounded::<pool::JobReply>(1);
        let job = Job::Query(QueryJob {
            engine: current.clone(),
            key,
            enqueued: now,
            cancel: state.query_token(now + state.config().query_budget.min(remaining)),
            reply: ReplyTo::Direct(tx),
            trace: state.tracing().begin(current.generation, now),
        });
        match jobs.submit(job) {
            Admission::Queued => {
                Metrics::bump(&metrics.warmup_queries);
                match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                    // try_execute filled the cache under the new generation.
                    Ok(Ok(_)) => warmed += 1,
                    // Timeout/panic/unindexed user: the key stays cold.
                    Ok(Err(_)) => {}
                    Err(_) => {
                        // Budget elapsed mid-flight; the worker's eventual
                        // cache fill still lands, but the run is over.
                        Metrics::bump(&metrics.warmup_budget_exhausted);
                        break;
                    }
                }
            }
            Admission::Overloaded => continue,
            Admission::Closed => break,
        }
    }
    Metrics::set(&metrics.warmup_warmed, warmed);
}

fn accept_loop(
    listener: &TcpListener,
    shared: Arc<event::EventShared>,
    senders: Vec<Sender<TcpStream>>,
    io_handles: Vec<JoinHandle<()>>,
    updater: JoinHandle<()>,
    stop: &AtomicBool,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let metrics = shared.state.metrics();
                Metrics::bump(&metrics.connections);
                if stream.set_nonblocking(true).is_err() {
                    // The fd is unusable for the event loop (exhaustion or a
                    // socket already dying): count it and tell the client,
                    // best effort, instead of dropping silently.
                    Metrics::bump(&metrics.accept_errors);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = protocol::write_frame(
                        &mut stream,
                        &Response::Err("overloaded".to_string()).render(),
                    );
                    continue;
                }
                let _ = stream.set_nodelay(true);
                Metrics::bump(&metrics.open_connections);
                // Unbounded + round-robin: the send cannot fail while the
                // I/O threads are alive, and they outlive this loop.
                let _ = senders[next % senders.len()].send(stream);
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => {
                Metrics::bump(&shared.state.metrics().accept_errors);
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // Drain: dropping the senders tells every I/O thread to exit once its
    // connections finish their in-flight request; then the pool empties its
    // queue, and the updater finishes any queued admin work before exiting.
    drop(senders);
    for h in io_handles {
        let _ = h.join();
    }
    match Arc::try_unwrap(shared) {
        Ok(sh) => {
            // The updater holds a pool submit handle (post-reload warmup),
            // and workers only exit once *every* job sender is gone — so
            // the updater must be retired before the pool can drain. Drop
            // the last admin sender, join the updater (which drops its
            // handle), then shut the pool down. The reverse order
            // deadlocks.
            drop(sh.admin);
            let _ = updater.join();
            sh.pool.shutdown();
        }
        Err(_) => unreachable!("all I/O threads joined"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit::{PitEngine, SummarizerKind};
    use pit_index::PropIndexConfig;
    use pit_summarize::LrwConfig;
    use pit_walk::WalkConfig;
    use std::io::Write as _;
    use std::net::TcpStream;
    use std::time::Instant;

    fn tiny_engine(seed: u64) -> PitEngine {
        let spec = pit_datasets::DatasetSpec {
            name: format!("server-test-{seed}"),
            nodes: 300,
            kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
            topics: pit_datasets::spec::scaled_topic_config(300, seed),
            seed,
        };
        let ds = pit_datasets::generate(&spec);
        PitEngine::builder()
            .walk(WalkConfig::new(3, 8).with_seed(2))
            .propagation(PropIndexConfig::with_theta(0.02))
            .summarizer(SummarizerKind::Lrw(LrwConfig {
                rep_count: Some(8),
                ..LrwConfig::default()
            }))
            .build_with_vocab(ds.graph, ds.space, Some(ds.vocab))
    }

    /// The server behind `Arc<dyn ServeEngine>` plus a raw handle to the
    /// same `PitEngine`, for tests that compare served answers against the
    /// offline search path.
    fn tiny_pair(config: ServerConfig) -> (Arc<PitEngine>, Arc<ServerState>) {
        let engine = Arc::new(tiny_engine(9));
        let state = Arc::new(ServerState::new(Arc::clone(&engine), config));
        (engine, state)
    }

    fn tiny_state(config: ServerConfig) -> Arc<ServerState> {
        tiny_pair(config).1
    }

    fn offline_ranking(engine: &PitEngine, user: u32, k: usize) -> Vec<(u32, f64)> {
        engine
            .search_keywords(pit_graph::NodeId(user), &["query-0"], k)
            .unwrap()
            .top_k
            .iter()
            .map(|s| (s.topic.0, s.score))
            .collect()
    }

    /// A scratch dir under the target-adjacent temp root, unique per test.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pit-server-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        protocol::write_frame(stream, &req.render()).unwrap();
        let text = protocol::read_frame(stream).unwrap().expect("reply");
        Response::parse(&text).unwrap()
    }

    #[test]
    fn serves_ping_query_stats_and_shuts_down() {
        let (engine, state) = tiny_pair(ServerConfig {
            workers: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        });
        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();

        assert_eq!(roundtrip(&mut c, &Request::Ping), Response::Pong);

        let query = Request::Query {
            user: 5,
            k: 5,
            keywords: vec!["query-0".to_string()],
        };
        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert!(!cached);
        assert!(!ranked.is_empty());
        // Served scores bit-match the offline path.
        let offline = engine
            .search_keywords(pit_graph::NodeId(5), &["query-0"], 5)
            .unwrap();
        let offline: Vec<(u32, f64)> = offline.top_k.iter().map(|s| (s.topic.0, s.score)).collect();
        assert_eq!(ranked, offline);

        // Second identical query is a cache hit.
        let Response::Topics {
            cached,
            ranked: again,
            ..
        } = roundtrip(&mut c, &query)
        else {
            panic!("expected topics");
        };
        assert!(cached);
        assert_eq!(again, offline);

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        let get = |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing stat {name}"))
        };
        assert_eq!(get("queries"), "2");
        assert_eq!(get("cache_hits"), "1");

        assert_eq!(roundtrip(&mut c, &Request::Shutdown), Response::Bye);
        handle.join();
    }

    #[test]
    fn malformed_and_unknown_requests_get_err() {
        let state = tiny_state(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let handle = serve(state, "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        protocol::write_frame(&mut c, "FROBNICATE").unwrap();
        let text = protocol::read_frame(&mut c).unwrap().unwrap();
        assert!(text.starts_with("ERR malformed"), "{text}");
        // Unknown keyword and out-of-range user are request errors, not
        // connection errors.
        protocol::write_frame(&mut c, "QUERY 5 3 no-such-keyword").unwrap();
        let text = protocol::read_frame(&mut c).unwrap().unwrap();
        assert!(text.starts_with("ERR malformed: unknown keyword"), "{text}");
        protocol::write_frame(&mut c, "QUERY 999999 3 query-0").unwrap();
        let text = protocol::read_frame(&mut c).unwrap().unwrap();
        assert!(text.starts_with("ERR malformed: user"), "{text}");
        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
    }

    fn get_stat(pairs: &[(String, String)], name: &str) -> u64 {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
            .parse()
            .unwrap_or_else(|_| panic!("stat {name} not numeric"))
    }

    #[test]
    fn poisoned_query_is_internal_and_the_pool_self_heals() {
        // One worker + a poisoned user: the panic must cost one reply, not
        // the pool, and must be reported as `internal`, never `timeout`.
        let state = tiny_state(ServerConfig {
            workers: 1,
            poison_user: Some(5),
            ..ServerConfig::default()
        });
        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();

        let poisoned = Request::Query {
            user: 5,
            k: 3,
            keywords: vec!["query-0".to_string()],
        };
        let Response::Err(reason) = roundtrip(&mut c, &poisoned) else {
            panic!("poisoned query must error");
        };
        assert!(reason.starts_with("internal"), "got: {reason}");

        // The sole worker is still serving.
        for user in [6u32, 7, 8] {
            let healthy = Request::Query {
                user,
                k: 3,
                keywords: vec!["query-0".to_string()],
            };
            assert!(
                matches!(roundtrip(&mut c, &healthy), Response::Topics { .. }),
                "pool must keep serving after a panic (user {user})"
            );
        }

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert!(get_stat(&pairs, "panics") >= 1);
        assert!(get_stat(&pairs, "internal_errors") >= 1);
        assert_eq!(
            get_stat(&pairs, "timeouts"),
            0,
            "a crash must not inflate the timeout counter"
        );

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
    }

    #[test]
    fn budget_expiry_cancels_the_search_and_frees_the_worker() {
        // One worker; user 7's queries sleep 1s at every cancellation check
        // (fault injection), so an uncancelled run would hold the worker
        // for probed_tables × 1s. The 100ms budget must (a) answer the
        // waiter on time and (b) release the worker at the first check.
        let drag = Duration::from_millis(1000);
        let (engine, state) = tiny_pair(ServerConfig {
            workers: 1,
            cache_capacity: 0,
            query_budget: Duration::from_millis(100),
            cancel_check_tables: 1,
            drag_user: Some(7),
            drag_per_check: drag,
            ..ServerConfig::default()
        });
        // How long the dragged search would run to completion.
        let full = engine
            .search_keywords(pit_graph::NodeId(7), &["query-0"], 3)
            .unwrap();
        assert!(
            full.probed_tables >= 2,
            "fixture query must probe multiple tables, got {}",
            full.probed_tables
        );
        let uncancelled_runtime = drag * full.probed_tables as u32;

        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let started = Instant::now();
        let slow = Request::Query {
            user: 7,
            k: 3,
            keywords: vec!["query-0".to_string()],
        };
        let reply = roundtrip(&mut c, &slow);
        let waited = started.elapsed();
        assert_eq!(reply, Response::Err("timeout".to_string()));
        assert!(
            waited < Duration::from_millis(600),
            "timeout reply must honor the budget, took {waited:?}"
        );

        // Poll until the worker answers again: it must come back long
        // before the dragged search would have completed.
        let healthy = Request::Query {
            user: 6,
            k: 3,
            keywords: vec!["query-0".to_string()],
        };
        loop {
            match roundtrip(&mut c, &healthy) {
                Response::Topics { .. } => break,
                Response::Err(reason) => assert_eq!(reason, "timeout", "unexpected: {reason}"),
                other => panic!("unexpected reply {other:?}"),
            }
            assert!(
                started.elapsed() < uncancelled_runtime,
                "worker still busy after {:?}; cancellation did not fire",
                started.elapsed()
            );
        }
        assert!(
            started.elapsed() < uncancelled_runtime,
            "worker freed only after {:?} — the search ran to completion \
             (full run would take {uncancelled_runtime:?})",
            started.elapsed()
        );

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert!(get_stat(&pairs, "timeouts") >= 1);
        assert_eq!(get_stat(&pairs, "internal_errors"), 0);
        assert_eq!(get_stat(&pairs, "panics"), 0);

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
    }

    #[test]
    fn reload_swaps_generation_and_cache_never_crosses() {
        let (engine, state) = tiny_pair(ServerConfig {
            workers: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        });
        let next = tiny_engine(10);
        let old_ranking = offline_ranking(&engine, 5, 5);
        let new_ranking = offline_ranking(&next, 5, 5);
        assert_ne!(old_ranking, new_ranking, "fixture engines must disagree");
        let dir = scratch_dir("reload");
        pit::store::save_engine(&dir, &next).unwrap();

        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let query = Request::Query {
            user: 5,
            k: 5,
            keywords: vec!["query-0".to_string()],
        };

        // Warm the generation-1 cache.
        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert!(!cached);
        assert_eq!(ranked, old_ranking);
        let Response::Topics { cached, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert!(cached);

        let reload = Request::Reload {
            dir: dir.display().to_string(),
        };
        assert_eq!(roundtrip(&mut c, &reload), Response::Generation(2));

        // The identical query after the swap must be recomputed on the new
        // engine — a pre-swap cache entry answering here would be exactly
        // the staleness bug this server exists to avoid.
        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert!(!cached, "post-swap reply served from the pre-swap cache");
        assert_eq!(ranked, new_ranking);
        // …and the recomputation repopulates the cache under generation 2.
        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert!(cached);
        assert_eq!(ranked, new_ranking);

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(get_stat(&pairs, "generation"), 2);
        assert_eq!(get_stat(&pairs, "reloads"), 1);
        assert_eq!(get_stat(&pairs, "reload_failures"), 0);
        assert!(get_stat(&pairs, "cache_stale_evictions") >= 1);

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_reload_keeps_the_old_generation_serving() {
        let (engine, state) = tiny_pair(ServerConfig {
            workers: 1,
            cache_capacity: 16,
            ..ServerConfig::default()
        });
        let old_ranking = offline_ranking(&engine, 5, 5);
        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();

        let reload = Request::Reload {
            dir: "/no/such/snapshot-dir".to_string(),
        };
        let Response::Err(reason) = roundtrip(&mut c, &reload) else {
            panic!("reload of a missing snapshot must fail");
        };
        assert!(reason.starts_with("reload-failed"), "got: {reason}");

        // Still answering, still generation 1, still the old rankings.
        let query = Request::Query {
            user: 5,
            k: 5,
            keywords: vec!["query-0".to_string()],
        };
        let Response::Topics { ranked, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert_eq!(ranked, old_ranking);

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(get_stat(&pairs, "generation"), 1);
        assert_eq!(get_stat(&pairs, "reloads"), 0);
        assert_eq!(get_stat(&pairs, "reload_failures"), 1);

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
    }

    #[test]
    fn update_applies_delta_and_serves_the_successor_generation() {
        let (base, state) = tiny_pair(ServerConfig {
            workers: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        });
        // Pick an edge the fixture graph does not have, so the delta is valid.
        let u = pit_graph::NodeId(5);
        let v = (0..base.graph().node_count() as u32)
            .map(pit_graph::NodeId)
            .find(|&v| v != u && !base.graph().has_edge(u, v))
            .expect("fixture graph is not complete");
        let delta = Delta {
            new_edges: vec![(u, v, 0.7)],
            new_assignments: vec![],
        };
        // The served post-update ranking must equal this offline apply.
        let (expected_engine, _) = base.with_delta(&delta).unwrap();
        let expected = offline_ranking(&expected_engine, 5, 5);

        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let query = Request::Query {
            user: 5,
            k: 5,
            keywords: vec!["query-0".to_string()],
        };
        // Warm the generation-1 cache so the swap has something to outdate.
        assert!(matches!(
            roundtrip(&mut c, &query),
            Response::Topics { cached: false, .. }
        ));

        let update = Request::Update {
            edges: vec![(u.0, v.0, 0.7)],
            assignments: vec![],
        };
        assert_eq!(roundtrip(&mut c, &update), Response::Generation(2));

        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &query) else {
            panic!("expected topics");
        };
        assert!(
            !cached,
            "post-update reply served from the pre-update cache"
        );
        assert_eq!(ranked, expected);

        // An invalid delta (unknown topic) must fail without a swap.
        let bad = Request::Update {
            edges: vec![],
            assignments: vec![(5, 1_000_000)],
        };
        let Response::Err(reason) = roundtrip(&mut c, &bad) else {
            panic!("bad delta must fail");
        };
        assert!(reason.starts_with("reload-failed"), "got: {reason}");

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(get_stat(&pairs, "generation"), 2);
        assert_eq!(get_stat(&pairs, "reloads"), 1);
        assert_eq!(get_stat(&pairs, "reload_failures"), 1);

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
    }

    /// Two disconnected five-node islands, each with its own topic and its
    /// own term. An edge delta inside one island provably cannot touch the
    /// other: no walk, Γ table, or term bag crosses the gap.
    fn island_engine() -> PitEngine {
        use pit_graph::NodeId;
        let mut g = pit_graph::GraphBuilder::new(10);
        // Island A: 0→1→2→3→4→0 ring plus a 0→2 shortcut.
        // Island B: 5→6→7→8→9→5 ring plus a 5→7 shortcut; 6→9 is left out
        // so the delta below adds a genuinely new edge. Rings, so influence
        // is mutual and scores are nonzero — a chain's source-node rep
        // would make every answer a degenerate 0.0.
        for &(a, b) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
            g.add_edge(NodeId(a), NodeId(b), 0.5).unwrap();
        }
        for &(a, b) in &[(5, 6), (6, 7), (7, 8), (8, 9), (9, 5), (5, 7)] {
            g.add_edge(NodeId(a), NodeId(b), 0.5).unwrap();
        }
        let graph = g.build().unwrap();
        let mut vocab = pit_topics::Vocabulary::new();
        let term_a = vocab.intern("island-a");
        let term_b = vocab.intern("island-b");
        let mut b = pit_topics::TopicSpaceBuilder::new(10, 2);
        let t_a = b.add_topic(vec![term_a]);
        for m in 0..5 {
            b.assign(NodeId(m), t_a);
        }
        let t_b = b.add_topic(vec![term_b]);
        for m in 5..10 {
            b.assign(NodeId(m), t_b);
        }
        PitEngine::builder()
            .walk(WalkConfig::new(4, 8).with_seed(3))
            .propagation(PropIndexConfig::with_theta(0.01))
            .summarizer(SummarizerKind::Lrw(LrwConfig::default()))
            .build_with_vocab(graph, b.build(), Some(vocab))
    }

    #[test]
    fn update_leaves_disjoint_cache_entries_hitting() {
        let base = Arc::new(island_engine());
        let state = Arc::new(ServerState::new(
            Arc::clone(&base),
            ServerConfig {
                workers: 2,
                cache_capacity: 16,
                ..ServerConfig::default()
            },
        ));
        // A new edge strictly inside island B.
        let delta = Delta {
            new_edges: vec![(pit_graph::NodeId(6), pit_graph::NodeId(9), 0.9)],
            new_assignments: vec![],
        };
        // Offline ground truth: the blast radius stays inside island B.
        let (next_engine, report) = base.with_delta(&delta).unwrap();
        let scope = &report.scope;
        let term_a = base.vocab().unwrap().get("island-a").unwrap();
        assert!(!scope.touches_user(pit_graph::NodeId(0)), "{scope:?}");
        assert!(!scope.touches_assignment_terms(&[term_a]));
        assert!(!scope.touches_edge_terms(&[term_a]), "{scope:?}");
        assert!(scope.touches_user(pit_graph::NodeId(9)), "{scope:?}");

        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let disjoint = Request::Query {
            user: 0,
            k: 3,
            keywords: vec!["island-a".to_string()],
        };
        let affected = Request::Query {
            user: 9,
            k: 3,
            keywords: vec!["island-b".to_string()],
        };
        // Warm both under generation 1.
        assert!(matches!(
            roundtrip(&mut c, &disjoint),
            Response::Topics { cached: false, .. }
        ));
        assert!(matches!(
            roundtrip(&mut c, &affected),
            Response::Topics { cached: false, .. }
        ));

        let update = Request::Update {
            edges: vec![(6, 9, 0.9)],
            assignments: vec![],
        };
        assert_eq!(roundtrip(&mut c, &update), Response::Generation(2));

        // The island-A entry crossed the generation bump alive — and its
        // cached answer bit-matches a fresh computation on the new engine.
        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &disjoint) else {
            panic!("expected topics");
        };
        assert!(cached, "disjoint entry must survive a scoped UPDATE");
        let recomputed: Vec<(u32, f64)> = next_engine
            .search_keywords(pit_graph::NodeId(0), &["island-a"], 3)
            .unwrap()
            .top_k
            .iter()
            .map(|s| (s.topic.0, s.score))
            .collect();
        assert_eq!(ranked, recomputed, "survivor must equal recompute");

        // The island-B entry did not survive.
        assert!(matches!(
            roundtrip(&mut c, &affected),
            Response::Topics { cached: false, .. }
        ));

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(get_stat(&pairs, "generation"), 2);
        assert!(get_stat(&pairs, "cache_survivors") >= 1);
        assert!(
            get_stat(&pairs, "cache_stale_edge_added") >= 1,
            "affected entry must carry the edge-added stale reason"
        );

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
    }

    #[test]
    fn reload_warmup_repopulates_the_hottest_keys() {
        let state = tiny_state(ServerConfig {
            workers: 2,
            cache_capacity: 16,
            warmup_budget: Duration::from_secs(10),
            warmup_top: 4,
            ..ServerConfig::default()
        });
        let next = tiny_engine(10);
        let new_ranking = offline_ranking(&next, 5, 5);
        let dir = scratch_dir("warmup");
        pit::store::save_engine(&dir, &next).unwrap();

        let handle = serve(Arc::clone(&state), "127.0.0.1:0").unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let hot = Request::Query {
            user: 5,
            k: 5,
            keywords: vec!["query-0".to_string()],
        };
        // Make user 5 the hottest key in the frequency sketch.
        for _ in 0..3 {
            assert!(matches!(roundtrip(&mut c, &hot), Response::Topics { .. }));
        }

        let reload = Request::Reload {
            dir: dir.display().to_string(),
        };
        // The GEN reply arrives only after the warmup run finished.
        assert_eq!(roundtrip(&mut c, &reload), Response::Generation(2));

        // First post-reload query: already warm, and warm with the *new*
        // engine's ranking — warmup replayed it through the worker path.
        let Response::Topics { ranked, cached, .. } = roundtrip(&mut c, &hot) else {
            panic!("expected topics");
        };
        assert!(cached, "warmup must repopulate the hottest key");
        assert_eq!(ranked, new_ranking);

        let Response::Stats(pairs) = roundtrip(&mut c, &Request::Stats) else {
            panic!("expected stats");
        };
        assert!(get_stat(&pairs, "warmup_queries") >= 1);
        let coverage: f64 = pairs
            .iter()
            .find(|(k, _)| k == "warmup_coverage")
            .expect("missing stat warmup_coverage")
            .1
            .parse()
            .unwrap();
        assert!(coverage > 0.0, "last warmup run must report coverage");

        roundtrip(&mut c, &Request::Shutdown);
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handle_shutdown_stops_the_server() {
        let state = tiny_state(ServerConfig::default());
        let handle = serve(state, "127.0.0.1:0").unwrap();
        let addr = handle.addr();
        let mut c = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut c, &Request::Ping), Response::Pong);
        handle.shutdown();
        handle.join();
        // The listener is gone: a fresh connection now fails (either refused
        // outright or closed before replying).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut c2) => {
                let dead = protocol::write_frame(&mut c2, "PING").is_err()
                    || c2.flush().is_err()
                    || matches!(protocol::read_frame(&mut c2), Ok(None) | Err(_));
                assert!(dead, "server still answering after shutdown");
            }
        }
    }
}
