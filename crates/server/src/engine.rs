//! The serving-engine abstraction: what the server needs from *whatever* is
//! answering queries, whether a whole single-node [`PitEngine`] or a router
//! fanning out over shards.
//!
//! [`ServerState`](crate::state::ServerState) holds an `Arc<dyn ServeEngine>`
//! per generation. The trait is deliberately narrow — resolve keywords, run
//! a search, answer Γ-table probes, build a successor for a reload/update —
//! so the scatter-gather router (crate `pit-router`) can slot in behind the
//! exact same admission, caching, worker-pool, and swap machinery as the
//! single-node path, with zero protocol- or state-layer forks.
//!
//! Sharded honesty rules enforced here:
//!
//! - A backend serving a shard *slice* refuses direct `QUERY`s (see
//!   [`ServeEngine::forbid_direct_query`]): once expansion can cross shard
//!   boundaries, a slice alone would return silently wrong rankings.
//! - [`ServeEngine::expand`] refuses probes for nodes the slice does not
//!   own: an empty table for an unowned node is indistinguishable from a
//!   genuinely empty Γ(v), and the router must never be fed the former.

use crate::protocol::ProbeTable;
use pit::{shard_of, Delta, PitEngine, ShardSpec, UpdateReport};
use pit_graph::NodeId;
use pit_search_core::{
    probe_gamma, CancelToken, RepUniverse, SearchError, SearchScratch, SearchStats, SearchTracer,
};
use pit_topics::KeywordQuery;
use std::path::Path;
use std::sync::Arc;

/// What a serving search produced: the ranking plus the serving-layer
/// envelope a plain [`pit_search_core::SearchOutcome`] has no notion of —
/// partial-answer provenance and scatter-gather accounting.
#[derive(Clone, Debug, Default)]
pub struct ServeOutcome {
    /// `(topic id, influence score)` in rank order.
    pub ranked: Vec<(u32, f64)>,
    /// The searcher's work counters (expand rounds, probed tables, …).
    pub stats: SearchStats,
    /// Shards that could not contribute, as `(shard index, reason)` with
    /// single-word taxonomy reasons (`timeout` | `overloaded` | `internal`).
    /// Empty means the answer is complete. Partial answers are never cached.
    pub partial: Vec<(u32, String)>,
    /// Shards never probed because the cross-shard upper bound proved them
    /// irrelevant (§5.2 pruning generalized over the fan-out).
    pub shards_pruned: u32,
    /// Per-shard time spent waiting on `EXPAND` round-trips, as
    /// `(shard index, microseconds)` — one entry per shard actually probed.
    pub fanout_micros: Vec<(u32, u64)>,
}

/// Why a serving search failed.
#[derive(Debug)]
pub enum ServeError {
    /// The search itself failed (cancelled, user out of range).
    Search(SearchError),
    /// The scatter-gather could not produce an honest answer: the query
    /// user's home shard — which must seed the search — was unreachable.
    /// The string is a human-readable reason; the wire maps it to
    /// `ERR internal: …` (the backend fleet is the server's fault, never
    /// the client's).
    Shard(String),
}

impl From<SearchError> for ServeError {
    fn from(e: SearchError) -> Self {
        ServeError::Search(e)
    }
}

/// The engine surface the serving stack is written against.
///
/// Implementations must be cheap to `Arc`-share across worker threads and
/// immutable per generation — a successor is always built off to the side
/// (see [`ServeEngine::successor_from_dir`]) and swapped in atomically by
/// [`ServerState`](crate::state::ServerState).
pub trait ServeEngine: Send + Sync {
    /// Users in the (full) social graph — shard slices still report the
    /// full count, since node ids are global.
    fn node_count(&self) -> usize;

    /// Topics in the serving topic space.
    fn topic_count(&self) -> usize;

    /// Resident bytes of the offline indexes (router: summed over meta
    /// artifacts; remote shards report their own via `STATS`).
    fn index_bytes(&self) -> usize;

    /// The slice this engine owns, when it serves one shard of a split
    /// snapshot. `None` for a full single-node engine *and* for a router
    /// (which answers for the union).
    fn shard_spec(&self) -> Option<ShardSpec>;

    /// Backing shards answering for this engine: 1 for a single node,
    /// N for a router.
    fn shard_count(&self) -> u32 {
        1
    }

    /// Refuse direct `QUERY`s? True exactly for shard slices, whose local
    /// answer would be silently wrong once expansion crosses shards.
    fn forbid_direct_query(&self) -> Option<String> {
        self.shard_spec().map(|spec| {
            format!(
                "malformed: this backend serves shard {spec} of a split snapshot; \
                 query the router (pit route) instead"
            )
        })
    }

    /// Resolve query keywords against the vocabulary.
    ///
    /// # Errors
    /// A `malformed …` reason naming the unknown keyword.
    fn resolve_terms(&self, keywords: &[String]) -> Result<Vec<pit_graph::TermId>, String>;

    /// Run one search. The expensive path — called from worker threads,
    /// which pass their own reusable [`SearchScratch`] so a warm worker's
    /// probe/feed loop allocates nothing.
    ///
    /// # Errors
    /// [`ServeError::Search`] for searcher failures, [`ServeError::Shard`]
    /// when a router's home shard was unreachable.
    fn try_search(
        &self,
        query: &KeywordQuery,
        k: usize,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        scratch: &mut SearchScratch,
    ) -> Result<ServeOutcome, ServeError>;

    /// The snapshot representation this generation serves from: `"owned"`
    /// for deep-copied in-memory indexes (the default), `"flat-mapped"`
    /// when the hot arrays are zero-copy views of a flat snapshot mapping.
    /// Reported verbatim under the `snapshot_format` STATS key.
    fn snapshot_format(&self) -> &'static str {
        "owned"
    }

    /// Bytes of index data served directly from a read-only file mapping
    /// (0 for fully-owned engines). Exported as the
    /// `pit_reload_bytes_mapped` gauge.
    fn mapped_bytes(&self) -> u64 {
        0
    }

    /// Answer a router's `EXPAND`: probe `Γ(u)` for each `(u, ep_u)`
    /// against the representative universe of a query with `terms`,
    /// returning one table per probe *in request order* plus this slice's
    /// residual upper bound (its best candidate `ep`, the §5.2 bound
    /// generalized per shard).
    ///
    /// # Errors
    /// A `malformed …` reason for out-of-range terms/nodes or probes for
    /// nodes this slice does not own.
    fn expand(
        &self,
        terms: &[u32],
        probes: &[(u32, f64)],
    ) -> Result<(Vec<ProbeTable>, f64), String>;

    /// Build a successor generation from the snapshot at `dir` (slow; runs
    /// on the updater thread). The successor must be the same *kind* of
    /// engine — a shard slice validates the snapshot's shard manifest
    /// against its own spec, a router fans the reload out to its backends.
    ///
    /// # Errors
    /// A `reload-failed: …` reason; the caller keeps serving the old
    /// generation.
    fn successor_from_dir(&self, dir: &Path) -> Result<Arc<dyn ServeEngine>, String>;

    /// Build a successor generation by applying `delta` (slow; runs on the
    /// updater thread).
    ///
    /// # Errors
    /// A `reload-failed: …` reason; the caller keeps serving the old
    /// generation.
    fn successor_from_delta(
        &self,
        delta: &Delta,
    ) -> Result<(Arc<dyn ServeEngine>, UpdateReport), String>;
}

/// A [`PitEngine`] serving directly — the single-node path, or one shard
/// slice answering a router's probes.
pub struct LocalServeEngine {
    engine: Arc<PitEngine>,
    shard: Option<ShardSpec>,
}

impl LocalServeEngine {
    /// Serve a full engine (no shard manifest).
    pub fn full(engine: Arc<PitEngine>) -> Self {
        LocalServeEngine {
            engine,
            shard: None,
        }
    }

    /// Serve one shard slice under its manifest spec.
    pub fn sharded(engine: Arc<PitEngine>, spec: ShardSpec) -> Self {
        LocalServeEngine {
            engine,
            shard: Some(spec),
        }
    }

    /// Load from a snapshot directory, picking up the shard manifest if one
    /// is present — `pit serve` pointed at a split's `shard-<i>` directory
    /// automatically comes up as that slice.
    ///
    /// # Errors
    /// Store-layer failures, rendered.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let spec = pit::store::load_shard_spec(dir).map_err(|e| e.to_string())?;
        let engine = pit::store::load_engine(dir).map_err(|e| e.to_string())?;
        Ok(LocalServeEngine {
            engine: Arc::new(engine),
            shard: spec,
        })
    }

    /// The wrapped engine (tests and the CLI's offline comparisons).
    pub fn inner(&self) -> &Arc<PitEngine> {
        &self.engine
    }
}

impl ServeEngine for LocalServeEngine {
    fn node_count(&self) -> usize {
        self.engine.graph().node_count()
    }

    fn topic_count(&self) -> usize {
        self.engine.space().topic_count()
    }

    fn index_bytes(&self) -> usize {
        self.engine.index_bytes()
    }

    fn snapshot_format(&self) -> &'static str {
        self.engine.snapshot_format()
    }

    fn mapped_bytes(&self) -> u64 {
        self.engine.mapped_bytes() as u64
    }

    fn shard_spec(&self) -> Option<ShardSpec> {
        self.shard
    }

    fn resolve_terms(&self, keywords: &[String]) -> Result<Vec<pit_graph::TermId>, String> {
        let vocab = self
            .engine
            .vocab()
            .ok_or_else(|| "malformed: engine has no vocabulary".to_string())?;
        keywords
            .iter()
            .map(|kw| {
                vocab
                    .get(kw)
                    .ok_or_else(|| format!("malformed: unknown keyword {kw}"))
            })
            .collect()
    }

    fn try_search(
        &self,
        query: &KeywordQuery,
        k: usize,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        scratch: &mut SearchScratch,
    ) -> Result<ServeOutcome, ServeError> {
        let outcome = self
            .engine
            .try_search_traced_with(query, k, cancel, tracer, scratch)?;
        Ok(ServeOutcome {
            ranked: outcome.top_k.iter().map(|s| (s.topic.0, s.score)).collect(),
            stats: outcome.stats(),
            partial: Vec::new(),
            shards_pruned: 0,
            fanout_micros: Vec::new(),
        })
    }

    fn expand(
        &self,
        terms: &[u32],
        probes: &[(u32, f64)],
    ) -> Result<(Vec<ProbeTable>, f64), String> {
        let space = self.engine.space();
        let nterms = space.term_count();
        let term_ids = terms
            .iter()
            .map(|&t| {
                if (t as usize) < nterms {
                    Ok(pit_graph::TermId(t))
                } else {
                    Err(format!(
                        "malformed: term {t} out of range (vocabulary has {nterms} terms)"
                    ))
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        let query = KeywordQuery::new(NodeId(0), term_ids);
        let universe = RepUniverse::for_query(space, self.engine.reps(), &query);
        let prop = self.engine.propagation();
        let theta = prop.config().theta;
        let nodes = self.engine.graph().node_count();
        let mut tables = Vec::new();
        let mut bound = 0.0f64;
        for &(u, ep_u) in probes {
            if u as usize >= nodes {
                return Err(format!(
                    "malformed: probe node {u} out of range (graph has {nodes} users)"
                ));
            }
            if let Some(spec) = self.shard {
                // An unowned slice row is empty storage, not an empty Γ(v);
                // answering from it would feed the router silent zeros.
                if !spec.owns(NodeId(u)) {
                    return Err(format!(
                        "malformed: node {u} belongs to shard {}, this is shard {spec}",
                        shard_of(NodeId(u), spec.count)
                    ));
                }
            }
            let probe = probe_gamma(prop.gamma(NodeId(u)), ep_u, theta, &|x| {
                universe.contains(x)
            });
            for &(_, ep_w) in &probe.cands {
                bound = bound.max(ep_w);
            }
            tables.push(ProbeTable {
                node: u,
                hits: probe.hits.iter().map(|&(x, p)| (x.0, p)).collect(),
                cands: probe.cands.iter().map(|&(w, ep)| (w.0, ep)).collect(),
            });
        }
        Ok((tables, bound))
    }

    fn successor_from_dir(&self, dir: &Path) -> Result<Arc<dyn ServeEngine>, String> {
        let spec = pit::store::load_shard_spec(dir).map_err(|e| format!("reload-failed: {e}"))?;
        if spec != self.shard {
            let describe = |s: Option<ShardSpec>| match s {
                Some(s) => format!("shard {s}"),
                None => "a full (unsharded) engine".to_string(),
            };
            return Err(format!(
                "reload-failed: snapshot is {}, this backend serves {}",
                describe(spec),
                describe(self.shard)
            ));
        }
        // RELOAD targets snapshots this deployment's own pipeline staged;
        // the fast loader maps and validates the section geometry in
        // O(sections) without re-hashing every payload, which is what keeps
        // snapshot swaps at millisecond latency on large engines.
        let engine =
            pit::store::load_engine_fast(dir).map_err(|e| format!("reload-failed: {e}"))?;
        Ok(Arc::new(LocalServeEngine {
            engine: Arc::new(engine),
            shard: self.shard,
        }))
    }

    fn successor_from_delta(
        &self,
        delta: &Delta,
    ) -> Result<(Arc<dyn ServeEngine>, UpdateReport), String> {
        // Validate assignment topics up front: with_delta asserts on unknown
        // topics, and an admin typo must be an ERR, not a panic.
        let topics = self.engine.space().topic_count();
        for &(_, t) in &delta.new_assignments {
            if t.index() >= topics {
                return Err(format!("reload-failed: delta references unknown topic {t}"));
            }
        }
        let (next, report) = self
            .engine
            .with_delta_scoped(delta, self.shard.as_ref())
            .map_err(|e| format!("reload-failed: {e}"))?;
        let next: Arc<dyn ServeEngine> = Arc::new(LocalServeEngine {
            engine: Arc::new(next),
            shard: self.shard,
        });
        Ok((next, report))
    }
}
