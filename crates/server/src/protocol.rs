//! Wire protocol: length-prefixed UTF-8 text frames.
//!
//! Every message — request or response — is one frame: a little-endian
//! `u32` byte length followed by that many bytes of UTF-8 text. Most
//! requests are single lines (`UPDATE` carries its delta on continuation
//! lines); responses may span multiple lines but always travel in one
//! frame, so a client never has to guess where a reply ends.
//!
//! Request grammar (ASCII, space-separated):
//!
//! ```text
//! PING
//! QUERY <user-id> <k> <keyword> [<keyword>...]      k ≤ 1024, ≤ 32 keywords
//! STATS
//! METRICS                                           Prometheus exposition
//! TRACE [<n>]                                       last n traces (default 16)
//! RELOAD <engine-dir>                               admin: swap in a snapshot
//! UPDATE\nEDGE <u> <v> <p>\nASSIGN <u> <t>\n...     admin: apply a delta
//! SHUTDOWN
//! ```
//!
//! Responses:
//!
//! ```text
//! PONG
//! TOPICS <n> <cached|fresh> <micros>\n<topic-id> <score>\n...
//! STATS\n<key> <value>\n...
//! METRICS\n<prometheus text exposition...>
//! TRACES\n<rendered traces...>
//! GEN <generation>       reply to RELOAD/UPDATE: the now-serving generation
//! BYE
//! ERR <reason...>        reasons: timeout | overloaded | shutting-down |
//!                        malformed ... | internal ... | reload-failed ...
//! ```
//!
//! The first word of an `ERR` reason is machine-readable and exhaustive:
//! `timeout` (budget expired, search cancelled), `overloaded` (shed at
//! admission), `shutting-down` (drain in progress), `malformed` (bad
//! request — the client's fault), `internal` (server fault — a panicking
//! job or vanished worker; never reported as a timeout), and
//! `reload-failed` (a `RELOAD`/`UPDATE` could not produce a servable
//! engine; the prior generation keeps serving).

use std::io::{self, Read, Write};

/// Frames larger than this are rejected rather than buffered — no legitimate
/// request or reply comes close (a 1000-topic reply is ~30 KB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Largest accepted `k`. Anything above caches (and serializes) what is
/// effectively a full-corpus ranking, and every distinct huge `k` fragments
/// the LRU into single-use entries.
pub const MAX_K: usize = 1024;

/// Most keywords accepted in one `QUERY`. The searcher unions topic
/// postings over terms, so beyond a handful of keywords extra terms only
/// burn worker time.
pub const MAX_KEYWORDS: usize = 32;

/// Most `EDGE` plus `ASSIGN` lines accepted in one `UPDATE`. Larger deltas
/// should go through an offline rebuild and a `RELOAD`.
pub const MAX_DELTA_LINES: usize = 65_536;

/// Most traces one `TRACE` request may ask for — matches the largest
/// sensible ring, and keeps the reply comfortably inside one frame.
pub const MAX_TRACE_DUMP: usize = 1024;

/// Traces returned by a bare `TRACE` (no count).
pub const DEFAULT_TRACE_DUMP: usize = 16;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Top-`k` personalized influential topics for `user` and `keywords`.
    Query {
        /// Querying user's node id.
        user: u32,
        /// Result size.
        k: usize,
        /// Query keywords (at least one).
        keywords: Vec<String>,
    },
    /// Server counters snapshot.
    Stats,
    /// Full metrics in Prometheus text exposition format.
    Metrics,
    /// The last `n` captured traces (slow-query log first, then sampled).
    Trace {
        /// How many traces of each kind to return (1..=[`MAX_TRACE_DUMP`]).
        n: usize,
    },
    /// Admin: load the engine snapshot at `dir` (a `pit::store::save_engine`
    /// directory on the **server's** filesystem) and swap it in as the next
    /// serving generation.
    Reload {
        /// Engine directory path, server-side.
        dir: String,
    },
    /// Admin: apply an edge/assignment delta to the serving engine
    /// (incremental maintenance, paper Section 4.4) and swap in the result.
    Update {
        /// New influence edges `(from, to, transition probability)`.
        edges: Vec<(u32, u32, f64)>,
        /// New topic mentions `(user, topic)`.
        assignments: Vec<(u32, u32)>,
    },
    /// Graceful stop: drain in-flight queries, then exit.
    Shutdown,
}

impl Request {
    /// Parse one request frame (a single line, except `UPDATE`, whose delta
    /// rides on continuation lines).
    ///
    /// # Errors
    /// A human-readable `malformed …` reason, sent back verbatim in an
    /// `ERR` reply.
    pub fn parse(text: &str) -> Result<Request, String> {
        let mut lines = text.lines();
        let line = lines.next().unwrap_or("");
        let mut words = line.split_ascii_whitespace();
        let verb = words
            .next()
            .ok_or_else(|| "malformed: empty request".to_string())?;
        let single_line = |verb: &str| -> Result<(), String> {
            if text.lines().nth(1).is_some() {
                Err(format!("malformed: {verb} takes a single line"))
            } else {
                Ok(())
            }
        };
        match verb {
            "PING" => single_line(verb).map(|()| Request::Ping),
            "STATS" => single_line(verb).map(|()| Request::Stats),
            "METRICS" => single_line(verb).map(|()| Request::Metrics),
            "SHUTDOWN" => single_line(verb).map(|()| Request::Shutdown),
            "TRACE" => {
                single_line(verb)?;
                let n = match words.next() {
                    None => DEFAULT_TRACE_DUMP,
                    Some(w) => w
                        .parse::<usize>()
                        .map_err(|_| "malformed: TRACE count is not a usize".to_string())?,
                };
                if words.next().is_some() {
                    return Err("malformed: TRACE takes at most one argument".to_string());
                }
                if n == 0 {
                    return Err("malformed: TRACE count must be positive".to_string());
                }
                if n > MAX_TRACE_DUMP {
                    return Err(format!(
                        "malformed: TRACE count {n} exceeds the cap of {MAX_TRACE_DUMP}"
                    ));
                }
                Ok(Request::Trace { n })
            }
            "QUERY" => {
                single_line(verb)?;
                let user = words
                    .next()
                    .ok_or_else(|| "malformed: QUERY missing user id".to_string())?
                    .parse::<u32>()
                    .map_err(|_| "malformed: QUERY user id is not a u32".to_string())?;
                let k = words
                    .next()
                    .ok_or_else(|| "malformed: QUERY missing k".to_string())?
                    .parse::<usize>()
                    .map_err(|_| "malformed: QUERY k is not a usize".to_string())?;
                if k == 0 {
                    return Err("malformed: QUERY k must be positive".to_string());
                }
                if k > MAX_K {
                    return Err(format!("malformed: QUERY k {k} exceeds the cap of {MAX_K}"));
                }
                let keywords: Vec<String> = words.map(str::to_string).collect();
                if keywords.is_empty() {
                    return Err("malformed: QUERY needs at least one keyword".to_string());
                }
                if keywords.len() > MAX_KEYWORDS {
                    return Err(format!(
                        "malformed: QUERY has {} keywords, cap is {MAX_KEYWORDS}",
                        keywords.len()
                    ));
                }
                Ok(Request::Query { user, k, keywords })
            }
            "RELOAD" => {
                single_line(verb)?;
                // The path is the rest of the line, so directories with
                // spaces survive the trip.
                let dir = line
                    .strip_prefix("RELOAD")
                    .expect("verb matched")
                    .trim()
                    .to_string();
                if dir.is_empty() {
                    return Err("malformed: RELOAD missing engine directory".to_string());
                }
                Ok(Request::Reload { dir })
            }
            "UPDATE" => {
                if words.next().is_some() {
                    return Err("malformed: UPDATE takes no arguments on its head line".to_string());
                }
                let mut edges = Vec::new();
                let mut assignments = Vec::new();
                for (i, l) in lines.enumerate() {
                    if i >= MAX_DELTA_LINES {
                        return Err(format!(
                            "malformed: UPDATE delta exceeds {MAX_DELTA_LINES} lines"
                        ));
                    }
                    let mut w = l.split_ascii_whitespace();
                    match w.next() {
                        Some("EDGE") => {
                            let (u, v, p) = (w.next(), w.next(), w.next());
                            let (Some(u), Some(v), Some(p), None) = (u, v, p, w.next()) else {
                                return Err(format!("malformed: bad EDGE line {l:?}"));
                            };
                            let parse = |s: &str, what: &str| -> Result<u32, String> {
                                s.parse()
                                    .map_err(|_| format!("malformed: EDGE {what} is not a u32"))
                            };
                            let prob: f64 = p
                                .parse()
                                .map_err(|_| "malformed: EDGE probability is not a number")?;
                            if !prob.is_finite() {
                                return Err("malformed: EDGE probability is not finite".into());
                            }
                            edges.push((parse(u, "source")?, parse(v, "target")?, prob));
                        }
                        Some("ASSIGN") => {
                            let (u, t) = (w.next(), w.next());
                            let (Some(u), Some(t), None) = (u, t, w.next()) else {
                                return Err(format!("malformed: bad ASSIGN line {l:?}"));
                            };
                            let parse = |s: &str, what: &str| -> Result<u32, String> {
                                s.parse()
                                    .map_err(|_| format!("malformed: ASSIGN {what} is not a u32"))
                            };
                            assignments.push((parse(u, "user")?, parse(t, "topic")?));
                        }
                        Some(other) => {
                            return Err(format!("malformed: unknown UPDATE line kind {other}"))
                        }
                        None => return Err("malformed: empty UPDATE line".to_string()),
                    }
                }
                Ok(Request::Update { edges, assignments })
            }
            other => Err(format!("malformed: unknown verb {other}")),
        }
    }

    /// Render the request as its wire text (inverse of [`Request::parse`]).
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Metrics => "METRICS".to_string(),
            Request::Trace { n } => format!("TRACE {n}"),
            Request::Shutdown => "SHUTDOWN".to_string(),
            Request::Query { user, k, keywords } => {
                format!("QUERY {user} {k} {}", keywords.join(" "))
            }
            Request::Reload { dir } => format!("RELOAD {dir}"),
            Request::Update { edges, assignments } => {
                let mut out = "UPDATE".to_string();
                for (u, v, p) in edges {
                    // 17 significant digits round-trip f64 exactly.
                    out.push_str(&format!("\nEDGE {u} {v} {p:.17e}"));
                }
                for (u, t) in assignments {
                    out.push_str(&format!("\nASSIGN {u} {t}"));
                }
                out
            }
        }
    }
}

/// A server reply, rendered to one frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Successful query result.
    Topics {
        /// `(topic id, influence score)` in rank order.
        ranked: Vec<(u32, f64)>,
        /// Whether the result came from the cache.
        cached: bool,
        /// Service time in microseconds (queue wait + execution).
        micros: u64,
    },
    /// Counter snapshot: `(name, value)` pairs.
    Stats(Vec<(String, String)>),
    /// Prometheus text exposition (reply to [`Request::Metrics`]), carried
    /// verbatim after a `METRICS` head line.
    Metrics(String),
    /// Rendered traces (reply to [`Request::Trace`]), carried verbatim
    /// after a `TRACES` head line.
    Traces(String),
    /// Reply to [`Request::Reload`] / [`Request::Update`]: the generation
    /// now serving (monotonically increasing across swaps).
    Generation(u64),
    /// Reply to [`Request::Shutdown`].
    Bye,
    /// Failure; the string is the machine-readable reason.
    Err(String),
}

impl Response {
    /// Render to the text carried by one frame.
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "PONG".to_string(),
            Response::Bye => "BYE".to_string(),
            Response::Generation(generation) => format!("GEN {generation}"),
            Response::Err(reason) => format!("ERR {reason}"),
            Response::Topics {
                ranked,
                cached,
                micros,
            } => {
                let mut out = format!(
                    "TOPICS {} {} {micros}",
                    ranked.len(),
                    if *cached { "cached" } else { "fresh" }
                );
                for (topic, score) in ranked {
                    // 17 significant digits round-trip f64 exactly, so the
                    // served scores compare bit-equal to the offline path.
                    out.push_str(&format!("\n{topic} {score:.17e}"));
                }
                out
            }
            Response::Stats(pairs) => {
                let mut out = "STATS".to_string();
                for (k, v) in pairs {
                    out.push_str(&format!("\n{k} {v}"));
                }
                out
            }
            Response::Metrics(body) => format!("METRICS\n{body}"),
            Response::Traces(body) => format!("TRACES\n{body}"),
        }
    }

    /// Parse a frame's text back into a response (used by the CLI client
    /// and the integration tests).
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn parse(text: &str) -> Result<Response, String> {
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| "empty response".to_string())?;
        if head == "PONG" {
            return Ok(Response::Pong);
        }
        if head == "BYE" {
            return Ok(Response::Bye);
        }
        if let Some(reason) = head.strip_prefix("ERR ") {
            return Ok(Response::Err(reason.to_string()));
        }
        if let Some(generation) = head.strip_prefix("GEN ") {
            let generation = generation
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("bad generation: {e}"))?;
            return Ok(Response::Generation(generation));
        }
        if head == "METRICS" {
            return Ok(Response::Metrics(lines.collect::<Vec<_>>().join("\n")));
        }
        if head == "TRACES" {
            return Ok(Response::Traces(lines.collect::<Vec<_>>().join("\n")));
        }
        if head == "STATS" {
            let pairs = lines
                .map(|l| match l.split_once(' ') {
                    Some((k, v)) => Ok((k.to_string(), v.to_string())),
                    None => Err(format!("stats line without value: {l}")),
                })
                .collect::<Result<_, _>>()?;
            return Ok(Response::Stats(pairs));
        }
        if let Some(rest) = head.strip_prefix("TOPICS ") {
            let mut words = rest.split_ascii_whitespace();
            let n: usize = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "TOPICS missing count".to_string())?;
            let cached = match words.next() {
                Some("cached") => true,
                Some("fresh") => false,
                other => return Err(format!("TOPICS bad cache tag {other:?}")),
            };
            let micros: u64 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "TOPICS missing service time".to_string())?;
            let ranked = lines
                .map(|l| {
                    let (t, s) = l
                        .split_once(' ')
                        .ok_or_else(|| format!("topic line without score: {l}"))?;
                    let topic = t.parse::<u32>().map_err(|e| format!("bad topic id: {e}"))?;
                    let score = s.parse::<f64>().map_err(|e| format!("bad score: {e}"))?;
                    Ok((topic, score))
                })
                .collect::<Result<Vec<_>, String>>()?;
            if ranked.len() != n {
                return Err(format!("TOPICS count {n} but {} lines", ranked.len()));
            }
            return Ok(Response::Topics {
                ranked,
                cached,
                micros,
            });
        }
        Err(format!("unrecognized response head: {head}"))
    }
}

/// Write `text` as one frame.
///
/// # Errors
/// Propagates I/O failures (including write-deadline expiry).
pub fn write_frame<W: Write>(w: &mut W, text: &str) -> io::Result<()> {
    let bytes = text.as_bytes();
    debug_assert!(bytes.len() <= MAX_FRAME_BYTES);
    // One write per frame: splitting the length prefix from the payload
    // triggers Nagle/delayed-ACK stalls (~40 ms) on real sockets.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame's text. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
///
/// # Errors
/// I/O failures (including read-deadline expiry), oversized frames, and
/// invalid UTF-8.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Trace { n: 5 },
            Request::Trace { n: MAX_TRACE_DUMP },
            Request::Shutdown,
            Request::Query {
                user: 3,
                k: 10,
                keywords: vec!["query-0".into(), "query-1".into()],
            },
            Request::Reload {
                dir: "/var/lib/pit/engine v2".into(),
            },
            Request::Update {
                edges: vec![(3, 7, 0.1 + 0.2), (0, 1, 1.0 / 3.0)],
                assignments: vec![(5, 2)],
            },
            Request::Update {
                edges: vec![],
                assignments: vec![],
            },
        ] {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn update_edge_probabilities_roundtrip_exactly() {
        let req = Request::Update {
            edges: vec![(1, 2, 0.1 + 0.2), (3, 4, 1e-300)],
            assignments: vec![],
        };
        let Request::Update { edges, .. } = Request::parse(&req.render()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(edges[0].2.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(edges[1].2.to_bits(), 1e-300f64.to_bits());
    }

    #[test]
    fn request_rejects_malformed() {
        for bad in [
            "",
            "FROB",
            "QUERY",
            "QUERY notanum 3 kw",
            "QUERY 3",
            "QUERY 3 zero kw",
            "QUERY 3 0 kw",
            "QUERY 3 5",
            "QUERY 3 5 kw\nstray second line",
            "PING extra\nline",
            "RELOAD",
            "RELOAD   ",
            "RELOAD /dir\nstray",
            "UPDATE trailing",
            "UPDATE\nEDGE 1 2",
            "UPDATE\nEDGE 1 2 0.5 extra",
            "UPDATE\nEDGE 1 2 notaprob",
            "UPDATE\nEDGE 1 2 inf",
            "UPDATE\nASSIGN 1",
            "UPDATE\nASSIGN x 1",
            "UPDATE\nFROB 1 2",
            "TRACE 0",
            "TRACE notanum",
            "TRACE 3 4",
            "TRACE 1025",
            "TRACE 5\nstray",
            "METRICS\nstray",
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert!(err.starts_with("malformed"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn query_caps_are_enforced_at_both_edges() {
        // k: the cap itself passes, one past it is malformed — and the
        // unbounded-k attack (u64::MAX) is rejected outright.
        let at_cap = format!("QUERY 1 {MAX_K} kw");
        assert!(matches!(
            Request::parse(&at_cap),
            Ok(Request::Query { k, .. }) if k == MAX_K
        ));
        let over = format!("QUERY 1 {} kw", MAX_K + 1);
        assert!(Request::parse(&over).unwrap_err().starts_with("malformed"));
        let huge = "QUERY 1 18446744073709551615 kw";
        assert!(Request::parse(huge).unwrap_err().starts_with("malformed"));

        // Keyword count: 32 passes, 33 is malformed.
        let kws = |n: usize| {
            (0..n)
                .map(|i| format!("kw{i}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let at_cap = format!("QUERY 1 5 {}", kws(MAX_KEYWORDS));
        assert!(matches!(
            Request::parse(&at_cap),
            Ok(Request::Query { keywords, .. }) if keywords.len() == MAX_KEYWORDS
        ));
        let over = format!("QUERY 1 5 {}", kws(MAX_KEYWORDS + 1));
        assert!(Request::parse(&over).unwrap_err().starts_with("malformed"));
    }

    #[test]
    fn bare_trace_defaults_its_count() {
        assert_eq!(
            Request::parse("TRACE").unwrap(),
            Request::Trace {
                n: DEFAULT_TRACE_DUMP
            }
        );
    }

    #[test]
    fn oversized_update_delta_is_rejected() {
        let mut text = "UPDATE".to_string();
        for _ in 0..=MAX_DELTA_LINES {
            text.push_str("\nASSIGN 1 0");
        }
        let err = Request::parse(&text).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Pong,
            Response::Bye,
            Response::Generation(42),
            Response::Err("timeout".into()),
            Response::Err("reload-failed: corrupt store: walks".into()),
            Response::Topics {
                ranked: vec![(7, 0.137), (2, 1.0 / 3.0), (0, 0.0)],
                cached: true,
                micros: 412,
            },
            Response::Stats(vec![
                ("queries".into(), "12".into()),
                ("cache_hit_rate".into(), "0.25".into()),
            ]),
            Response::Metrics(
                "# HELP pit_queries_total q\n# TYPE pit_queries_total counter\npit_queries_total 3"
                    .into(),
            ),
            Response::Traces("captured sampled=1 slow=0\n[slow] showing 0 of 0".into()),
        ] {
            assert_eq!(Response::parse(&resp.render()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn scores_roundtrip_exactly() {
        let scores = [0.1 + 0.2, 1e-300, std::f64::consts::PI, 0.137];
        let resp = Response::Topics {
            ranked: scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as u32, s))
                .collect(),
            cached: false,
            micros: 1,
        };
        let Response::Topics { ranked, .. } = Response::parse(&resp.render()).unwrap() else {
            panic!("wrong variant");
        };
        for ((_, got), &want) in ranked.iter().zip(scores.iter()) {
            assert_eq!(got.to_bits(), want.to_bits(), "score did not roundtrip");
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        write_frame(&mut buf, "QUERY 1 2 a b").unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "PING");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "QUERY 1 2 a b");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut r: &[u8] = &buf;
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_close() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // promised 8, delivered 3
        let mut r: &[u8] = &buf;
        assert!(read_frame(&mut r).is_err());
    }
}
