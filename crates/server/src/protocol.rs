//! Wire protocol: length-prefixed UTF-8 text frames.
//!
//! Every message — request or response — is one frame: a little-endian
//! `u32` byte length followed by that many bytes of UTF-8 text. Most
//! requests are single lines (`UPDATE` carries its delta on continuation
//! lines); responses may span multiple lines but always travel in one
//! frame, so a client never has to guess where a reply ends.
//!
//! Request grammar (ASCII, space-separated):
//!
//! ```text
//! PING
//! QUERY <user-id> <k> <keyword> [<keyword>...]      k ≤ 1024, ≤ 32 keywords
//! STATS
//! METRICS                                           Prometheus exposition
//! TRACE [<n>]                                       last n traces (default 16)
//! RELOAD <engine-dir>                               admin: swap in a snapshot
//! UPDATE\nEDGE <u> <v> <p>\nASSIGN <u> <t>\n...     admin: apply a delta
//! SHARD                                             which slice is serving?
//! EXPAND <gen> <nterms> <term>...\nF <node> <ep>\n...   router: probe Γ tables
//! PREPARE DIR <engine-dir>                          two-phase reload: stage
//! PREPARE UPDATE\nEDGE...\nASSIGN...                two-phase delta: stage
//! COMMIT                                            swap the staged engine in
//! ABORT                                             drop the staged engine
//! SHUTDOWN
//! ```
//!
//! Responses:
//!
//! ```text
//! PONG
//! TOPICS <n> <cached|fresh> <micros> [partial=<shard>:<reason>,...]\n
//!        <topic-id> <score>\n...
//! STATS\n<key> <value>\n...
//! METRICS\n<prometheus text exposition...>
//! TRACES\n<rendered traces...>
//! GEN <generation>       reply to RELOAD/UPDATE/COMMIT/ABORT
//! SHARD <index> <count> <generation>                reply to SHARD
//! EXPANDED <gen> <ntables> <bound>\nT <node> <nhits> <ncands>\n
//!          H <node> <ep>\n... C <node> <ep>\n...    reply to EXPAND
//! STAGED                 reply to PREPARE: successor built, awaiting COMMIT
//! BYE
//! ERR <reason...>        reasons: timeout | overloaded | shutting-down |
//!                        malformed ... | internal ... | reload-failed ...
//! ```
//!
//! The router verbs keep the search's numeric path bit-exact on the wire:
//! every probability travels as 17-significant-digit scientific notation,
//! which round-trips `f64` exactly. An `EXPAND` carries the query's resolved
//! term ids plus frontier entries `(node, ep)`; the matching `EXPANDED`
//! returns, per probed node *in request order*, the Γ-table hits against the
//! query's representative universe (pre-scaled by `ep`) and the θ-surviving
//! marked candidates, plus the shard's residual upper bound (its best
//! unexpanded candidate — the Section 5.2 bound generalized per shard).
//!
//! The first word of an `ERR` reason is machine-readable and exhaustive:
//! `timeout` (budget expired, search cancelled), `overloaded` (shed at
//! admission), `shutting-down` (drain in progress), `malformed` (bad
//! request — the client's fault), `internal` (server fault — a panicking
//! job or vanished worker; never reported as a timeout), and
//! `reload-failed` (a `RELOAD`/`UPDATE` could not produce a servable
//! engine; the prior generation keeps serving).

use std::io::{self, Read, Write};

/// Frames larger than this are rejected rather than buffered — no legitimate
/// request or reply comes close (a 1000-topic reply is ~30 KB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Largest accepted `k`. Anything above caches (and serializes) what is
/// effectively a full-corpus ranking, and every distinct huge `k` fragments
/// the LRU into single-use entries.
pub const MAX_K: usize = 1024;

/// Most keywords accepted in one `QUERY`. The searcher unions topic
/// postings over terms, so beyond a handful of keywords extra terms only
/// burn worker time.
pub const MAX_KEYWORDS: usize = 32;

/// Most `EDGE` plus `ASSIGN` lines accepted in one `UPDATE`. Larger deltas
/// should go through an offline rebuild and a `RELOAD`.
pub const MAX_DELTA_LINES: usize = 65_536;

/// Most traces one `TRACE` request may ask for — matches the largest
/// sensible ring, and keeps the reply comfortably inside one frame.
pub const MAX_TRACE_DUMP: usize = 1024;

/// Traces returned by a bare `TRACE` (no count).
pub const DEFAULT_TRACE_DUMP: usize = 16;

/// Most frontier probes (`F` lines) accepted in one `EXPAND`. Routers chunk
/// far below this (see [`ROUTER_EXPAND_CHUNK`]); the cap is the parser's
/// totality bound on hostile input.
pub const MAX_EXPAND_PROBES: usize = 4096;

/// Frontier probes a router sends per `EXPAND` call. Small enough that a
/// worst-case `EXPANDED` reply (every probe a dense Γ table) stays far
/// inside [`MAX_FRAME_BYTES`]; the router loops over chunks within a round.
pub const ROUTER_EXPAND_CHUNK: usize = 128;

/// One probed Γ table as carried by an `EXPANDED` reply: the frontier node
/// it answers for, its representative-universe hits with probabilities
/// pre-scaled by the probe's `ep` (ready to credit), and its θ-surviving
/// marked candidates `(node, ep)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProbeTable {
    /// The frontier node this table answers for.
    pub node: u32,
    /// `(representative node, ep · Γ(node)[rep])`, ascending node id.
    pub hits: Vec<(u32, f64)>,
    /// `(marked node, ep · Γ(node)[marked])` with ep ≥ θ.
    pub cands: Vec<(u32, f64)>,
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Top-`k` personalized influential topics for `user` and `keywords`.
    Query {
        /// Querying user's node id.
        user: u32,
        /// Result size.
        k: usize,
        /// Query keywords (at least one).
        keywords: Vec<String>,
    },
    /// Server counters snapshot.
    Stats,
    /// Full metrics in Prometheus text exposition format.
    Metrics,
    /// The last `n` captured traces (slow-query log first, then sampled).
    Trace {
        /// How many traces of each kind to return (1..=[`MAX_TRACE_DUMP`]).
        n: usize,
    },
    /// Admin: load the engine snapshot at `dir` (a `pit::store::save_engine`
    /// directory on the **server's** filesystem) and swap it in as the next
    /// serving generation.
    Reload {
        /// Engine directory path, server-side.
        dir: String,
    },
    /// Admin: apply an edge/assignment delta to the serving engine
    /// (incremental maintenance, paper Section 4.4) and swap in the result.
    Update {
        /// New influence edges `(from, to, transition probability)`.
        edges: Vec<(u32, u32, f64)>,
        /// New topic mentions `(user, topic)`.
        assignments: Vec<(u32, u32)>,
    },
    /// Which shard slice (and generation) is this backend serving?
    Shard,
    /// Router: probe the Γ tables of `probes` frontier nodes against the
    /// query whose resolved term ids are `terms`. `gen` pins the engine
    /// generation the query was admitted against — a backend serving a
    /// different generation must refuse rather than contribute
    /// mixed-generation scores.
    Expand {
        /// Engine generation the router admitted the query against.
        gen: u64,
        /// Resolved term ids of the query (replicated vocabulary).
        terms: Vec<u32>,
        /// Frontier entries `(node, ep)` to probe, in driver order.
        probes: Vec<(u32, f64)>,
    },
    /// Two-phase reload, phase 1: build the successor engine from a
    /// snapshot directory but do not swap it in.
    PrepareDir {
        /// Engine directory path, server-side.
        dir: String,
    },
    /// Two-phase delta, phase 1: build the successor engine from a delta
    /// but do not swap it in.
    PrepareUpdate {
        /// New influence edges `(from, to, transition probability)`.
        edges: Vec<(u32, u32, f64)>,
        /// New topic mentions `(user, topic)`.
        assignments: Vec<(u32, u32)>,
    },
    /// Two-phase, phase 2: swap the staged successor in.
    Commit,
    /// Drop the staged successor without swapping.
    Abort,
    /// Graceful stop: drain in-flight queries, then exit.
    Shutdown,
}

impl Request {
    /// Parse one request frame (a single line, except `UPDATE`, whose delta
    /// rides on continuation lines).
    ///
    /// # Errors
    /// A human-readable `malformed …` reason, sent back verbatim in an
    /// `ERR` reply.
    pub fn parse(text: &str) -> Result<Request, String> {
        let mut lines = text.lines();
        let line = lines.next().unwrap_or("");
        let mut words = line.split_ascii_whitespace();
        let verb = words
            .next()
            .ok_or_else(|| "malformed: empty request".to_string())?;
        let single_line = |verb: &str| -> Result<(), String> {
            if text.lines().nth(1).is_some() {
                Err(format!("malformed: {verb} takes a single line"))
            } else {
                Ok(())
            }
        };
        match verb {
            "PING" => single_line(verb).map(|()| Request::Ping),
            "STATS" => single_line(verb).map(|()| Request::Stats),
            "METRICS" => single_line(verb).map(|()| Request::Metrics),
            "SHUTDOWN" => single_line(verb).map(|()| Request::Shutdown),
            "TRACE" => {
                single_line(verb)?;
                let n = match words.next() {
                    None => DEFAULT_TRACE_DUMP,
                    Some(w) => w
                        .parse::<usize>()
                        .map_err(|_| "malformed: TRACE count is not a usize".to_string())?,
                };
                if words.next().is_some() {
                    return Err("malformed: TRACE takes at most one argument".to_string());
                }
                if n == 0 {
                    return Err("malformed: TRACE count must be positive".to_string());
                }
                if n > MAX_TRACE_DUMP {
                    return Err(format!(
                        "malformed: TRACE count {n} exceeds the cap of {MAX_TRACE_DUMP}"
                    ));
                }
                Ok(Request::Trace { n })
            }
            "QUERY" => {
                single_line(verb)?;
                let user = words
                    .next()
                    .ok_or_else(|| "malformed: QUERY missing user id".to_string())?
                    .parse::<u32>()
                    .map_err(|_| "malformed: QUERY user id is not a u32".to_string())?;
                let k = words
                    .next()
                    .ok_or_else(|| "malformed: QUERY missing k".to_string())?
                    .parse::<usize>()
                    .map_err(|_| "malformed: QUERY k is not a usize".to_string())?;
                if k == 0 {
                    return Err("malformed: QUERY k must be positive".to_string());
                }
                if k > MAX_K {
                    return Err(format!("malformed: QUERY k {k} exceeds the cap of {MAX_K}"));
                }
                let keywords: Vec<String> = words.map(str::to_string).collect();
                if keywords.is_empty() {
                    return Err("malformed: QUERY needs at least one keyword".to_string());
                }
                if keywords.len() > MAX_KEYWORDS {
                    return Err(format!(
                        "malformed: QUERY has {} keywords, cap is {MAX_KEYWORDS}",
                        keywords.len()
                    ));
                }
                Ok(Request::Query { user, k, keywords })
            }
            "RELOAD" => {
                single_line(verb)?;
                // The path is the rest of the line, so directories with
                // spaces survive the trip.
                let dir = line
                    .strip_prefix("RELOAD")
                    .expect("verb matched")
                    .trim()
                    .to_string();
                if dir.is_empty() {
                    return Err("malformed: RELOAD missing engine directory".to_string());
                }
                Ok(Request::Reload { dir })
            }
            "UPDATE" => {
                if words.next().is_some() {
                    return Err("malformed: UPDATE takes no arguments on its head line".to_string());
                }
                let (edges, assignments) = parse_delta_lines(lines)?;
                Ok(Request::Update { edges, assignments })
            }
            // The router verbs are machine-to-machine: stricter than the
            // operator verbs, trailing words are rejected too.
            "SHARD" | "COMMIT" | "ABORT" => {
                single_line(verb)?;
                if words.next().is_some() {
                    return Err(format!("malformed: {verb} takes no arguments"));
                }
                Ok(match verb {
                    "SHARD" => Request::Shard,
                    "COMMIT" => Request::Commit,
                    _ => Request::Abort,
                })
            }
            "PREPARE" => match words.next() {
                Some("DIR") => {
                    single_line(verb)?;
                    let dir = line
                        .strip_prefix("PREPARE")
                        .and_then(|r| r.trim_start().strip_prefix("DIR"))
                        .map(str::trim)
                        .unwrap_or_default()
                        .to_string();
                    if dir.is_empty() {
                        return Err("malformed: PREPARE DIR missing engine directory".to_string());
                    }
                    Ok(Request::PrepareDir { dir })
                }
                Some("UPDATE") => {
                    if words.next().is_some() {
                        return Err(
                            "malformed: PREPARE UPDATE takes no further head arguments".to_string()
                        );
                    }
                    let (edges, assignments) = parse_delta_lines(lines)?;
                    Ok(Request::PrepareUpdate { edges, assignments })
                }
                _ => Err("malformed: PREPARE needs DIR <path> or UPDATE".to_string()),
            },
            "EXPAND" => {
                let gen = words
                    .next()
                    .ok_or_else(|| "malformed: EXPAND missing generation".to_string())?
                    .parse::<u64>()
                    .map_err(|_| "malformed: EXPAND generation is not a u64".to_string())?;
                let nterms = words
                    .next()
                    .ok_or_else(|| "malformed: EXPAND missing term count".to_string())?
                    .parse::<usize>()
                    .map_err(|_| "malformed: EXPAND term count is not a usize".to_string())?;
                if nterms == 0 {
                    return Err("malformed: EXPAND needs at least one term".to_string());
                }
                if nterms > MAX_KEYWORDS {
                    return Err(format!(
                        "malformed: EXPAND has {nterms} terms, cap is {MAX_KEYWORDS}"
                    ));
                }
                // Collect what is actually present; never allocate from the
                // claimed count.
                let mut terms = Vec::new();
                for w in words {
                    terms.push(
                        w.parse::<u32>()
                            .map_err(|_| "malformed: EXPAND term is not a u32".to_string())?,
                    );
                }
                if terms.len() != nterms {
                    return Err(format!(
                        "malformed: EXPAND claims {nterms} terms but carries {}",
                        terms.len()
                    ));
                }
                let mut probes = Vec::new();
                for (i, l) in lines.enumerate() {
                    if i >= MAX_EXPAND_PROBES {
                        return Err(format!(
                            "malformed: EXPAND exceeds {MAX_EXPAND_PROBES} probes"
                        ));
                    }
                    let mut w = l.split_ascii_whitespace();
                    let (Some("F"), Some(node), Some(ep), None) =
                        (w.next(), w.next(), w.next(), w.next())
                    else {
                        return Err(format!("malformed: bad EXPAND probe line {l:?}"));
                    };
                    let node = node
                        .parse::<u32>()
                        .map_err(|_| "malformed: EXPAND probe node is not a u32".to_string())?;
                    let ep = ep
                        .parse::<f64>()
                        .map_err(|_| "malformed: EXPAND probe ep is not a number".to_string())?;
                    if !ep.is_finite() {
                        return Err("malformed: EXPAND probe ep is not finite".to_string());
                    }
                    probes.push((node, ep));
                }
                if probes.is_empty() {
                    return Err("malformed: EXPAND needs at least one probe".to_string());
                }
                Ok(Request::Expand { gen, terms, probes })
            }
            other => Err(format!("malformed: unknown verb {other}")),
        }
    }

    /// Render the request as its wire text (inverse of [`Request::parse`]).
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Metrics => "METRICS".to_string(),
            Request::Trace { n } => format!("TRACE {n}"),
            Request::Shutdown => "SHUTDOWN".to_string(),
            Request::Shard => "SHARD".to_string(),
            Request::Commit => "COMMIT".to_string(),
            Request::Abort => "ABORT".to_string(),
            Request::Query { user, k, keywords } => {
                format!("QUERY {user} {k} {}", keywords.join(" "))
            }
            Request::Reload { dir } => format!("RELOAD {dir}"),
            Request::PrepareDir { dir } => format!("PREPARE DIR {dir}"),
            Request::Update { edges, assignments } => {
                let mut out = "UPDATE".to_string();
                render_delta_lines(&mut out, edges, assignments);
                out
            }
            Request::PrepareUpdate { edges, assignments } => {
                let mut out = "PREPARE UPDATE".to_string();
                render_delta_lines(&mut out, edges, assignments);
                out
            }
            Request::Expand { gen, terms, probes } => {
                let mut out = format!("EXPAND {gen} {}", terms.len());
                for t in terms {
                    out.push_str(&format!(" {t}"));
                }
                for (node, ep) in probes {
                    // 17 significant digits round-trip f64 exactly.
                    out.push_str(&format!("\nF {node} {ep:.17e}"));
                }
                out
            }
        }
    }
}

/// Parse `EDGE u v p` / `ASSIGN u t` continuation lines (shared by `UPDATE`
/// and `PREPARE UPDATE`).
#[allow(clippy::type_complexity)]
fn parse_delta_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<(Vec<(u32, u32, f64)>, Vec<(u32, u32)>), String> {
    let mut edges = Vec::new();
    let mut assignments = Vec::new();
    for (i, l) in lines.enumerate() {
        if i >= MAX_DELTA_LINES {
            return Err(format!(
                "malformed: UPDATE delta exceeds {MAX_DELTA_LINES} lines"
            ));
        }
        let mut w = l.split_ascii_whitespace();
        match w.next() {
            Some("EDGE") => {
                let (u, v, p) = (w.next(), w.next(), w.next());
                let (Some(u), Some(v), Some(p), None) = (u, v, p, w.next()) else {
                    return Err(format!("malformed: bad EDGE line {l:?}"));
                };
                let parse = |s: &str, what: &str| -> Result<u32, String> {
                    s.parse()
                        .map_err(|_| format!("malformed: EDGE {what} is not a u32"))
                };
                let prob: f64 = p
                    .parse()
                    .map_err(|_| "malformed: EDGE probability is not a number")?;
                if !prob.is_finite() {
                    return Err("malformed: EDGE probability is not finite".into());
                }
                edges.push((parse(u, "source")?, parse(v, "target")?, prob));
            }
            Some("ASSIGN") => {
                let (u, t) = (w.next(), w.next());
                let (Some(u), Some(t), None) = (u, t, w.next()) else {
                    return Err(format!("malformed: bad ASSIGN line {l:?}"));
                };
                let parse = |s: &str, what: &str| -> Result<u32, String> {
                    s.parse()
                        .map_err(|_| format!("malformed: ASSIGN {what} is not a u32"))
                };
                assignments.push((parse(u, "user")?, parse(t, "topic")?));
            }
            Some(other) => return Err(format!("malformed: unknown UPDATE line kind {other}")),
            None => return Err("malformed: empty UPDATE line".to_string()),
        }
    }
    Ok((edges, assignments))
}

/// Render delta continuation lines (inverse of [`parse_delta_lines`]).
fn render_delta_lines(out: &mut String, edges: &[(u32, u32, f64)], assignments: &[(u32, u32)]) {
    for (u, v, p) in edges {
        // 17 significant digits round-trip f64 exactly.
        out.push_str(&format!("\nEDGE {u} {v} {p:.17e}"));
    }
    for (u, t) in assignments {
        out.push_str(&format!("\nASSIGN {u} {t}"));
    }
}

/// A server reply, rendered to one frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Successful query result.
    Topics {
        /// `(topic id, influence score)` in rank order.
        ranked: Vec<(u32, f64)>,
        /// Whether the result came from the cache.
        cached: bool,
        /// Service time in microseconds (queue wait + execution).
        micros: u64,
        /// Shards whose contribution is missing, as `(shard, reason)` with
        /// the reason a single taxonomy word (`timeout` | `overloaded` |
        /// `internal`). Empty for a complete answer — the only kind a
        /// single-node server produces, and the only kind ever cached.
        partial: Vec<(u32, String)>,
    },
    /// Counter snapshot: `(name, value)` pairs.
    Stats(Vec<(String, String)>),
    /// Prometheus text exposition (reply to [`Request::Metrics`]), carried
    /// verbatim after a `METRICS` head line.
    Metrics(String),
    /// Rendered traces (reply to [`Request::Trace`]), carried verbatim
    /// after a `TRACES` head line.
    Traces(String),
    /// Reply to [`Request::Reload`] / [`Request::Update`] /
    /// [`Request::Commit`] / [`Request::Abort`]: the generation now serving
    /// (monotonically increasing across swaps).
    Generation(u64),
    /// Reply to [`Request::Shard`]: which slice this backend serves, under
    /// which generation. An unsharded server reports `0` of `1`.
    ShardInfo {
        /// Shard index in `0..count`.
        index: u32,
        /// Total shards in the partition.
        count: u32,
        /// Serving generation.
        gen: u64,
    },
    /// Reply to [`Request::Expand`]: the probed tables in request order,
    /// plus this shard's residual upper bound (best θ-surviving candidate
    /// across the returned tables; `0` when none survive).
    Expanded {
        /// Generation the probes executed against.
        gen: u64,
        /// The shard's residual upper bound (Section 5.2, per shard).
        bound: f64,
        /// One table per probe, in request order.
        tables: Vec<ProbeTable>,
    },
    /// Reply to [`Request::PrepareDir`] / [`Request::PrepareUpdate`]: the
    /// successor engine is built and parked, awaiting `COMMIT` or `ABORT`.
    Staged,
    /// Reply to [`Request::Shutdown`].
    Bye,
    /// Failure; the string is the machine-readable reason.
    Err(String),
}

impl Response {
    /// Render to the text carried by one frame.
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "PONG".to_string(),
            Response::Bye => "BYE".to_string(),
            Response::Staged => "STAGED".to_string(),
            Response::Generation(generation) => format!("GEN {generation}"),
            Response::ShardInfo { index, count, gen } => format!("SHARD {index} {count} {gen}"),
            Response::Err(reason) => format!("ERR {reason}"),
            Response::Expanded { gen, bound, tables } => {
                let mut out = format!("EXPANDED {gen} {} {bound:.17e}", tables.len());
                for t in tables {
                    out.push_str(&format!(
                        "\nT {} {} {}",
                        t.node,
                        t.hits.len(),
                        t.cands.len()
                    ));
                    for (x, p) in &t.hits {
                        out.push_str(&format!("\nH {x} {p:.17e}"));
                    }
                    for (w, ep) in &t.cands {
                        out.push_str(&format!("\nC {w} {ep:.17e}"));
                    }
                }
                out
            }
            Response::Topics {
                ranked,
                cached,
                micros,
                partial,
            } => {
                let mut out = format!(
                    "TOPICS {} {} {micros}",
                    ranked.len(),
                    if *cached { "cached" } else { "fresh" }
                );
                if !partial.is_empty() {
                    let missing: Vec<String> = partial
                        .iter()
                        .map(|(shard, reason)| format!("{shard}:{reason}"))
                        .collect();
                    out.push_str(&format!(" partial={}", missing.join(",")));
                }
                for (topic, score) in ranked {
                    // 17 significant digits round-trip f64 exactly, so the
                    // served scores compare bit-equal to the offline path.
                    out.push_str(&format!("\n{topic} {score:.17e}"));
                }
                out
            }
            Response::Stats(pairs) => {
                let mut out = "STATS".to_string();
                for (k, v) in pairs {
                    out.push_str(&format!("\n{k} {v}"));
                }
                out
            }
            Response::Metrics(body) => format!("METRICS\n{body}"),
            Response::Traces(body) => format!("TRACES\n{body}"),
        }
    }

    /// Parse a frame's text back into a response (used by the CLI client
    /// and the integration tests).
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn parse(text: &str) -> Result<Response, String> {
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| "empty response".to_string())?;
        if head == "PONG" {
            return Ok(Response::Pong);
        }
        if head == "BYE" {
            return Ok(Response::Bye);
        }
        if head == "STAGED" {
            return Ok(Response::Staged);
        }
        if let Some(rest) = head.strip_prefix("SHARD ") {
            let mut words = rest.split_ascii_whitespace();
            let index: u32 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "SHARD missing index".to_string())?;
            let count: u32 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "SHARD missing count".to_string())?;
            let gen: u64 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "SHARD missing generation".to_string())?;
            if count == 0 || index >= count {
                return Err(format!("SHARD index {index} outside count {count}"));
            }
            return Ok(Response::ShardInfo { index, count, gen });
        }
        if let Some(rest) = head.strip_prefix("EXPANDED ") {
            return parse_expanded(rest, lines);
        }
        if let Some(reason) = head.strip_prefix("ERR ") {
            return Ok(Response::Err(reason.to_string()));
        }
        if let Some(generation) = head.strip_prefix("GEN ") {
            let generation = generation
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("bad generation: {e}"))?;
            return Ok(Response::Generation(generation));
        }
        if head == "METRICS" {
            return Ok(Response::Metrics(lines.collect::<Vec<_>>().join("\n")));
        }
        if head == "TRACES" {
            return Ok(Response::Traces(lines.collect::<Vec<_>>().join("\n")));
        }
        if head == "STATS" {
            let pairs = lines
                .map(|l| match l.split_once(' ') {
                    Some((k, v)) => Ok((k.to_string(), v.to_string())),
                    None => Err(format!("stats line without value: {l}")),
                })
                .collect::<Result<_, _>>()?;
            return Ok(Response::Stats(pairs));
        }
        if let Some(rest) = head.strip_prefix("TOPICS ") {
            let mut words = rest.split_ascii_whitespace();
            let n: usize = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "TOPICS missing count".to_string())?;
            let cached = match words.next() {
                Some("cached") => true,
                Some("fresh") => false,
                other => return Err(format!("TOPICS bad cache tag {other:?}")),
            };
            let micros: u64 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| "TOPICS missing service time".to_string())?;
            let mut partial = Vec::new();
            if let Some(tail) = words.next() {
                let spec = tail
                    .strip_prefix("partial=")
                    .ok_or_else(|| format!("TOPICS trailing word {tail:?}"))?;
                for entry in spec.split(',') {
                    let (shard, reason) = entry
                        .split_once(':')
                        .ok_or_else(|| format!("partial entry without reason: {entry}"))?;
                    let shard = shard
                        .parse::<u32>()
                        .map_err(|e| format!("bad partial shard id: {e}"))?;
                    if reason.is_empty() {
                        return Err(format!("partial entry with empty reason: {entry}"));
                    }
                    partial.push((shard, reason.to_string()));
                }
            }
            if words.next().is_some() {
                return Err("TOPICS head has trailing words".to_string());
            }
            let ranked = lines
                .map(|l| {
                    let (t, s) = l
                        .split_once(' ')
                        .ok_or_else(|| format!("topic line without score: {l}"))?;
                    let topic = t.parse::<u32>().map_err(|e| format!("bad topic id: {e}"))?;
                    let score = s.parse::<f64>().map_err(|e| format!("bad score: {e}"))?;
                    Ok((topic, score))
                })
                .collect::<Result<Vec<_>, String>>()?;
            if ranked.len() != n {
                return Err(format!("TOPICS count {n} but {} lines", ranked.len()));
            }
            return Ok(Response::Topics {
                ranked,
                cached,
                micros,
                partial,
            });
        }
        Err(format!("unrecognized response head: {head}"))
    }
}

/// Parse the body of an `EXPANDED` reply. Table, hit, and candidate counts
/// are claimed up front and verified against the lines actually carried, so
/// a truncated or padded frame is rejected rather than silently reshaped.
fn parse_expanded<'a, I>(rest: &str, mut lines: I) -> Result<Response, String>
where
    I: Iterator<Item = &'a str>,
{
    let mut words = rest.split_ascii_whitespace();
    let gen: u64 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| "EXPANDED missing generation".to_string())?;
    let ntables: usize = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| "EXPANDED missing table count".to_string())?;
    let bound: f64 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| "EXPANDED missing bound".to_string())?;
    if !bound.is_finite() {
        return Err("EXPANDED bound is not finite".to_string());
    }
    if ntables > MAX_EXPAND_PROBES {
        return Err(format!(
            "EXPANDED claims {ntables} tables, cap is {MAX_EXPAND_PROBES}"
        ));
    }
    let mut tables = Vec::new();
    for _ in 0..ntables {
        let head = lines
            .next()
            .ok_or_else(|| "EXPANDED truncated before table head".to_string())?;
        let mut words = head.split_ascii_whitespace();
        if words.next() != Some("T") {
            return Err(format!("expected table head, got: {head}"));
        }
        let node: u32 = words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| "table head missing node".to_string())?;
        let nhits: usize = words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| "table head missing hit count".to_string())?;
        let ncands: usize = words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| "table head missing candidate count".to_string())?;
        if nhits.saturating_add(ncands) > MAX_FRAME_BYTES {
            return Err(format!(
                "table claims {nhits}+{ncands} rows, frame cannot carry them"
            ));
        }
        let mut table = ProbeTable {
            node,
            hits: Vec::new(),
            cands: Vec::new(),
        };
        for (tag, n, dest) in [
            ("H", nhits, &mut table.hits),
            ("C", ncands, &mut table.cands),
        ] {
            for _ in 0..n {
                let line = lines
                    .next()
                    .ok_or_else(|| format!("EXPANDED truncated inside {tag} rows"))?;
                let mut words = line.split_ascii_whitespace();
                if words.next() != Some(tag) {
                    return Err(format!("expected {tag} row, got: {line}"));
                }
                let id: u32 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("{tag} row missing node id"))?;
                let val: f64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("{tag} row missing value"))?;
                if !val.is_finite() {
                    return Err(format!("{tag} row value is not finite"));
                }
                if words.next().is_some() {
                    return Err(format!("{tag} row has trailing words: {line}"));
                }
                dest.push((id, val));
            }
        }
        tables.push(table);
    }
    if lines.next().is_some() {
        return Err("EXPANDED has lines past the claimed tables".to_string());
    }
    Ok(Response::Expanded { gen, bound, tables })
}

/// Write `text` as one frame.
///
/// # Errors
/// Propagates I/O failures (including write-deadline expiry), and rejects
/// payloads over [`MAX_FRAME_BYTES`] — a `debug_assert` would let a release
/// build truncate the length prefix through the `as u32` cast and desync
/// the peer's framing.
pub fn write_frame<W: Write>(w: &mut W, text: &str) -> io::Result<()> {
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "refusing to send a {}-byte frame (cap {MAX_FRAME_BYTES})",
                bytes.len()
            ),
        ));
    }
    // One write per frame: splitting the length prefix from the payload
    // triggers Nagle/delayed-ACK stalls (~40 ms) on real sockets.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame's text. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
///
/// # Errors
/// I/O failures (including read-deadline expiry), oversized frames, and
/// invalid UTF-8.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Trace { n: 5 },
            Request::Trace { n: MAX_TRACE_DUMP },
            Request::Shutdown,
            Request::Query {
                user: 3,
                k: 10,
                keywords: vec!["query-0".into(), "query-1".into()],
            },
            Request::Reload {
                dir: "/var/lib/pit/engine v2".into(),
            },
            Request::Update {
                edges: vec![(3, 7, 0.1 + 0.2), (0, 1, 1.0 / 3.0)],
                assignments: vec![(5, 2)],
            },
            Request::Update {
                edges: vec![],
                assignments: vec![],
            },
            Request::Shard,
            Request::Commit,
            Request::Abort,
            Request::PrepareDir {
                dir: "/var/lib/pit/shards/shard-3".into(),
            },
            Request::PrepareUpdate {
                edges: vec![(3, 7, 0.1 + 0.2)],
                assignments: vec![(5, 2)],
            },
            Request::PrepareUpdate {
                edges: vec![],
                assignments: vec![],
            },
            Request::Expand {
                gen: 9,
                terms: vec![0, 4],
                probes: vec![(8, 1.0), (11, 0.1 + 0.2)],
            },
        ] {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn update_edge_probabilities_roundtrip_exactly() {
        let req = Request::Update {
            edges: vec![(1, 2, 0.1 + 0.2), (3, 4, 1e-300)],
            assignments: vec![],
        };
        let Request::Update { edges, .. } = Request::parse(&req.render()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(edges[0].2.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(edges[1].2.to_bits(), 1e-300f64.to_bits());
    }

    #[test]
    fn request_rejects_malformed() {
        for bad in [
            "",
            "FROB",
            "QUERY",
            "QUERY notanum 3 kw",
            "QUERY 3",
            "QUERY 3 zero kw",
            "QUERY 3 0 kw",
            "QUERY 3 5",
            "QUERY 3 5 kw\nstray second line",
            "PING extra\nline",
            "RELOAD",
            "RELOAD   ",
            "RELOAD /dir\nstray",
            "UPDATE trailing",
            "UPDATE\nEDGE 1 2",
            "UPDATE\nEDGE 1 2 0.5 extra",
            "UPDATE\nEDGE 1 2 notaprob",
            "UPDATE\nEDGE 1 2 inf",
            "UPDATE\nASSIGN 1",
            "UPDATE\nASSIGN x 1",
            "UPDATE\nFROB 1 2",
            "TRACE 0",
            "TRACE notanum",
            "TRACE 3 4",
            "TRACE 1025",
            "TRACE 5\nstray",
            "METRICS\nstray",
            "SHARD extra",
            "COMMIT extra",
            "ABORT\nstray",
            "PREPARE",
            "PREPARE DIR",
            "PREPARE DIR /dir\nstray",
            "PREPARE FROB /dir",
            "PREPARE UPDATE\nEDGE 1 2",
            "EXPAND",
            "EXPAND 1",
            "EXPAND 1 1",
            "EXPAND 1 0\nF 3 0.5",
            "EXPAND 1 1 notaterm\nF 3 0.5",
            "EXPAND 1 1 0\nF 3",
            "EXPAND 1 1 0\nF 3 inf",
            "EXPAND 1 1 0\nF x 0.5",
            "EXPAND 1 1 0\nG 3 0.5",
            "EXPAND 1 1 0",
            "EXPAND 1 2 0\nF 3 0.5",
            "EXPAND notanum 1 0\nF 3 0.5",
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert!(err.starts_with("malformed"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn query_caps_are_enforced_at_both_edges() {
        // k: the cap itself passes, one past it is malformed — and the
        // unbounded-k attack (u64::MAX) is rejected outright.
        let at_cap = format!("QUERY 1 {MAX_K} kw");
        assert!(matches!(
            Request::parse(&at_cap),
            Ok(Request::Query { k, .. }) if k == MAX_K
        ));
        let over = format!("QUERY 1 {} kw", MAX_K + 1);
        assert!(Request::parse(&over).unwrap_err().starts_with("malformed"));
        let huge = "QUERY 1 18446744073709551615 kw";
        assert!(Request::parse(huge).unwrap_err().starts_with("malformed"));

        // Keyword count: 32 passes, 33 is malformed.
        let kws = |n: usize| {
            (0..n)
                .map(|i| format!("kw{i}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let at_cap = format!("QUERY 1 5 {}", kws(MAX_KEYWORDS));
        assert!(matches!(
            Request::parse(&at_cap),
            Ok(Request::Query { keywords, .. }) if keywords.len() == MAX_KEYWORDS
        ));
        let over = format!("QUERY 1 5 {}", kws(MAX_KEYWORDS + 1));
        assert!(Request::parse(&over).unwrap_err().starts_with("malformed"));
    }

    #[test]
    fn bare_trace_defaults_its_count() {
        assert_eq!(
            Request::parse("TRACE").unwrap(),
            Request::Trace {
                n: DEFAULT_TRACE_DUMP
            }
        );
    }

    #[test]
    fn oversized_update_delta_is_rejected() {
        let mut text = "UPDATE".to_string();
        for _ in 0..=MAX_DELTA_LINES {
            text.push_str("\nASSIGN 1 0");
        }
        let err = Request::parse(&text).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Pong,
            Response::Bye,
            Response::Generation(42),
            Response::Err("timeout".into()),
            Response::Err("reload-failed: corrupt store: walks".into()),
            Response::Topics {
                ranked: vec![(7, 0.137), (2, 1.0 / 3.0), (0, 0.0)],
                cached: true,
                micros: 412,
                partial: vec![],
            },
            Response::Topics {
                ranked: vec![(7, 0.137)],
                cached: false,
                micros: 9001,
                partial: vec![(1, "timeout".into()), (3, "internal".into())],
            },
            Response::Staged,
            Response::ShardInfo {
                index: 2,
                count: 4,
                gen: 17,
            },
            Response::Expanded {
                gen: 3,
                bound: 0.1 + 0.2,
                tables: vec![
                    ProbeTable {
                        node: 8,
                        hits: vec![(2, 1.0 / 3.0), (6, 1e-300)],
                        cands: vec![(11, 0.137)],
                    },
                    ProbeTable {
                        node: 11,
                        hits: vec![],
                        cands: vec![],
                    },
                ],
            },
            Response::Expanded {
                gen: 1,
                bound: 0.0,
                tables: vec![],
            },
            Response::Stats(vec![
                ("queries".into(), "12".into()),
                ("cache_hit_rate".into(), "0.25".into()),
            ]),
            Response::Metrics(
                "# HELP pit_queries_total q\n# TYPE pit_queries_total counter\npit_queries_total 3"
                    .into(),
            ),
            Response::Traces("captured sampled=1 slow=0\n[slow] showing 0 of 0".into()),
        ] {
            assert_eq!(Response::parse(&resp.render()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn scores_roundtrip_exactly() {
        let scores = [0.1 + 0.2, 1e-300, std::f64::consts::PI, 0.137];
        let resp = Response::Topics {
            ranked: scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as u32, s))
                .collect(),
            cached: false,
            micros: 1,
            partial: vec![],
        };
        let Response::Topics { ranked, .. } = Response::parse(&resp.render()).unwrap() else {
            panic!("wrong variant");
        };
        for ((_, got), &want) in ranked.iter().zip(scores.iter()) {
            assert_eq!(got.to_bits(), want.to_bits(), "score did not roundtrip");
        }
    }

    #[test]
    fn router_responses_reject_malformed() {
        for bad in [
            "SHARD",
            "SHARD 1",
            "SHARD 1 2",
            "SHARD 2 2 5", // index outside count
            "SHARD 0 0 5", // zero shards cannot serve
            "SHARD x 2 5",
            "EXPANDED",
            "EXPANDED 1",
            "EXPANDED 1 1",
            "EXPANDED 1 1 inf",
            "EXPANDED 1 1 0.5",                   // claims a table, carries none
            "EXPANDED 1 0 0.5\nT 3 0 0",          // carries a table, claims none
            "EXPANDED 1 1 0.5\nT 3 1 0",          // claims a hit, carries none
            "EXPANDED 1 1 0.5\nT 3 0 0\nH 2 0.5", // stray row past the claim
            "EXPANDED 1 1 0.5\nT 3 1 0\nC 2 0.5", // C row where H claimed
            "EXPANDED 1 1 0.5\nT 3 1 0\nH 2 inf",
            "EXPANDED 1 1 0.5\nT 3 1 0\nH 2 0.5 extra",
            "TOPICS 0 fresh 1 partial=",
            "TOPICS 0 fresh 1 partial=3",  // entry without reason
            "TOPICS 0 fresh 1 partial=3:", // empty reason
            "TOPICS 0 fresh 1 partial=x:timeout",
            "TOPICS 0 fresh 1 stray",
            "TOPICS 0 fresh 1 partial=3:timeout stray",
        ] {
            assert!(Response::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn expanded_probabilities_roundtrip_exactly() {
        let resp = Response::Expanded {
            gen: 1,
            bound: 1e-300,
            tables: vec![ProbeTable {
                node: 8,
                hits: vec![(2, 0.1 + 0.2)],
                cands: vec![(11, std::f64::consts::PI)],
            }],
        };
        let Response::Expanded { bound, tables, .. } = Response::parse(&resp.render()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(bound.to_bits(), 1e-300f64.to_bits());
        assert_eq!(tables[0].hits[0].1.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(
            tables[0].cands[0].1.to_bits(),
            std::f64::consts::PI.to_bits()
        );
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        write_frame(&mut buf, "QUERY 1 2 a b").unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "PING");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "QUERY 1 2 a b");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut r: &[u8] = &buf;
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_close() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // promised 8, delivered 3
        let mut r: &[u8] = &buf;
        assert!(read_frame(&mut r).is_err());
    }
}
