//! Worker pool: a fixed set of threads draining a bounded request queue,
//! isolated from query panics and self-healing when one slips through.
//!
//! The bounded `crossbeam` channel is the server's admission controller —
//! connection threads `try_send`, and a full queue becomes an immediate
//! `ERR overloaded` instead of unbounded queueing. Workers exit when every
//! sender is dropped, which is exactly the graceful-shutdown drain: the
//! queue empties, then the pool joins.
//!
//! Failure isolation is layered. Each job runs under `catch_unwind`, so a
//! panic inside the engine answers that one waiter with
//! [`JobError::Panicked`] and the worker lives on. Should a panic ever
//! escape the guarded region (e.g. while reporting the result), a sentinel
//! respawns a replacement thread before the dying one unwinds away — the
//! pool never silently bleeds capacity.

use crate::cache::QueryKey;
use crate::engine::ServeError;
use crate::metrics::Metrics;
use crate::protocol::Response;
use crate::state::{EngineGen, RankedTopics, ServerState};
use crate::trace::TraceCtx;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use pit_obs::trace::Stage;
use pit_search_core::{CancelToken, SearchError, SearchScratch, SearchStats};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a worker could not produce a ranking for an admitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The query execution panicked; the pool survived, the result did not.
    Panicked,
    /// A typed search failure (cancelled mid-flight or unindexed user).
    Search(SearchError),
    /// A router could not seed the search: the query user's home shard was
    /// unreachable. Maps to `ERR internal: …` — backend health is the
    /// server's fault, never the client's.
    Shard(String),
    /// The flight leader could not admit the shared execution: the bounded
    /// queue was full. Every waiter of that flight maps this to
    /// `ERR overloaded` (and one `shed` bump each), exactly as if it had
    /// been shed at its own admission.
    Shed,
    /// The flight leader found the pool gone — the server is draining.
    /// Maps to `ERR shutting-down`.
    Closed,
}

/// What a worker sends back for an admitted job: the ranking, the service
/// time in µs, and the (usually empty) partial-answer provenance —
/// `(shard index, reason)` for every shard that could not contribute.
pub type JobReply = Result<(RankedTopics, u64, Vec<(u32, String)>), JobError>;

/// Where a finished query's [`JobReply`] goes.
pub enum ReplyTo {
    /// A single waiter's buffered channel (coalescing off, or a
    /// cache-bypassing caller).
    Direct(Sender<JobReply>),
    /// The single-flight registry: the worker resolves the flight keyed by
    /// the job's `(generation, key)`, delivering one clone per waiter.
    Flight,
}

/// One unit of work admitted to the bounded queue.
pub enum Job {
    /// A client `QUERY` (the expensive path).
    Query(QueryJob),
    /// One router `EXPAND` probe round — a pure read against the captured
    /// generation. Runs on the pool so a dragged round blocks a worker,
    /// never an I/O thread.
    Expand(ExpandJob),
}

/// One `EXPAND` probe round bound for a worker.
pub struct ExpandJob {
    /// Engine generation captured (and verified against the request) at
    /// dispatch; the round answers under exactly this generation.
    pub engine: EngineGen,
    /// Resolved query term ids.
    pub terms: Vec<u32>,
    /// `(user, mass)` probes to expand.
    pub probes: Vec<(u32, f64)>,
    /// Buffered (capacity 1) reply slot; the send never blocks a worker.
    pub reply: Sender<Response>,
}

/// One admitted query, owned by a worker until answered.
pub struct QueryJob {
    /// Engine generation captured at admission. The worker executes against
    /// exactly this engine even if a `RELOAD` swap lands while the job is
    /// queued or running — in-flight queries finish on the `Arc` they
    /// captured, and their cache fill is tagged with this generation.
    pub engine: EngineGen,
    /// Validated, normalized query identity.
    pub key: QueryKey,
    /// When the connection thread admitted the job; service latency is
    /// measured from here so queue wait counts against the budget.
    pub enqueued: Instant,
    /// Shared cancellation/deadline token: the waiter sets its flag when
    /// the budget expires, and the token's own deadline stops the search
    /// even if the waiter is gone.
    pub cancel: CancelToken,
    /// Where the result goes. Direct sends are buffered (capacity 1) and
    /// flight resolution skips dead receivers, so a worker's send never
    /// blocks even when every waiter already gave up.
    pub reply: ReplyTo,
    /// Per-query trace handle, created at admission; the worker that
    /// answers the job finalizes it (inert single branch when unsampled).
    pub trace: TraceCtx,
}

/// Outcome of offering a job to the pool.
pub enum Admission {
    /// Job accepted; await the reply channel.
    Queued,
    /// Queue full — shed.
    Overloaded,
    /// Pool is gone (server shutting down).
    Closed,
}

/// Everything a worker thread (and its respawn sentinel) needs.
struct PoolShared {
    rx: Receiver<Job>,
    state: Arc<ServerState>,
    /// Live worker handles; respawned replacements are recorded here so
    /// shutdown joins them too.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Monotonic id source for worker thread names.
    next_id: AtomicUsize,
    /// Set once shutdown begins; sentinels stop respawning past this point.
    draining: AtomicBool,
}

/// The worker pool plus the sending side of its queue.
pub struct WorkerPool {
    jobs: Sender<Job>,
    shared: Arc<PoolShared>,
}

/// A cloneable submit handle onto the pool's bounded queue, for threads
/// that inject work without owning the pool (the updater's post-reload
/// cache warmup). Admission semantics are identical to
/// [`WorkerPool::submit`].
///
/// Holding a `PoolClient` keeps the workers alive — they exit only when
/// every job sender is gone — so its owner must drop it (or exit) before
/// [`WorkerPool::shutdown`] can finish draining.
#[derive(Clone)]
pub struct PoolClient {
    jobs: Sender<Job>,
    state: Arc<ServerState>,
}

impl PoolClient {
    /// Offer a job without blocking; a full queue is the load-shed signal.
    pub fn submit(&self, job: Job) -> Admission {
        offer(&self.jobs, &self.state, job)
    }
}

/// Shared admission path: maintains the `queued_jobs` gauge — incremented
/// before the offer so a worker's decrement can never precede it,
/// decremented right back when the offer is refused.
fn offer(jobs: &Sender<Job>, state: &ServerState, job: Job) -> Admission {
    let gauge = &state.metrics().queued_jobs;
    Metrics::bump(gauge);
    match jobs.try_send(job) {
        Ok(()) => Admission::Queued,
        Err(TrySendError::Full(_)) => {
            Metrics::dec(gauge);
            Admission::Overloaded
        }
        Err(TrySendError::Disconnected(_)) => {
            Metrics::dec(gauge);
            Admission::Closed
        }
    }
}

impl WorkerPool {
    /// Spawn `state.config().workers` threads over a queue of depth
    /// `state.config().queue_depth`.
    pub fn start(state: Arc<ServerState>) -> WorkerPool {
        let workers = state.config().workers.max(1);
        let (jobs, rx) = channel::bounded::<Job>(state.config().queue_depth);
        let shared = Arc::new(PoolShared {
            rx,
            state,
            handles: Mutex::named("server.pool.handles", Vec::with_capacity(workers)),
            next_id: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        });
        for _ in 0..workers {
            // Startup, before any request is admitted: a host that cannot
            // spawn its configured workers cannot serve and must die loudly.
            spawn_worker(&shared).expect("spawn worker thread");
        }
        WorkerPool { jobs, shared }
    }

    /// Offer a job without blocking; a full queue is the load-shed signal.
    /// Maintains the `queued_jobs` gauge (see the module-private `offer`).
    pub fn submit(&self, job: Job) -> Admission {
        offer(&self.jobs, &self.shared.state, job)
    }

    /// A detached submit handle for threads that outlive individual
    /// connections (the updater). See [`PoolClient`] for the shutdown
    /// ordering obligation this creates.
    pub fn client(&self) -> PoolClient {
        PoolClient {
            jobs: self.jobs.clone(),
            state: Arc::clone(&self.shared.state),
        }
    }

    /// Stop accepting new jobs, drain the queue, and join every worker —
    /// including any respawned replacements.
    pub fn shutdown(self) {
        self.shared.draining.store(true, Ordering::Release);
        drop(self.jobs); // workers drain the queue, then see Disconnected
        loop {
            // Pop one handle at a time: a dying worker's sentinel may still
            // push a replacement while we join, and it must be joined too.
            let handle = self.shared.handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Spawn one worker thread and record its handle for shutdown.
///
/// # Errors
/// Propagates the OS thread-spawn failure; the caller decides whether that
/// is fatal (pool startup) or lost capacity to absorb (sentinel respawn,
/// which runs during unwinding where a second panic would abort).
fn spawn_worker(shared: &Arc<PoolShared>) -> std::io::Result<()> {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let cloned = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("pit-worker-{id}"))
        .spawn(move || {
            let sentinel = Sentinel {
                shared: Arc::clone(&cloned),
            };
            worker_loop(&cloned.rx, &cloned.state);
            // Clean exit (queue drained): the sentinel must not respawn.
            std::mem::forget(sentinel);
        })?;
    shared.handles.lock().push(handle);
    Ok(())
}

/// Respawn guard: dropped during unwinding only when a panic escaped the
/// per-job `catch_unwind`, in which case the dying worker is replaced so
/// the pool keeps its configured capacity.
struct Sentinel {
    shared: Arc<PoolShared>,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.draining.load(Ordering::Acquire) {
            Metrics::bump(&self.shared.state.metrics().panics);
            // Already unwinding: a panic here would abort the process, so a
            // failed respawn is absorbed as reduced capacity, not escalated.
            if spawn_worker(&self.shared).is_err() {
                eprintln!(
                    "pit-server: could not respawn worker after a panic; pool capacity reduced"
                );
            }
        }
    }
}

fn worker_loop(rx: &Receiver<Job>, state: &ServerState) {
    // One scratch arena per worker, reused across every query this thread
    // ever runs: after the first few queries warm its buffers, the search's
    // probe/feed loop performs no heap allocation at all. `begin` resets the
    // contents each query, so a scratch abandoned mid-search by a panic
    // (caught below) is safe to reuse.
    let mut scratch = SearchScratch::new();
    while let Ok(job) = rx.recv() {
        Metrics::dec(&state.metrics().queued_jobs);
        match job {
            Job::Query(job) => run_query(job, state, &mut scratch),
            Job::Expand(job) => run_expand(job, state),
        }
    }
}

/// Deliver one query reply: to the single direct waiter, or to every
/// registered waiter of the job's flight.
fn deliver(
    reply_to: &ReplyTo,
    engine: &EngineGen,
    key: &QueryKey,
    reply: JobReply,
    state: &ServerState,
) {
    match reply_to {
        ReplyTo::Direct(tx) => {
            let _ = tx.send(reply);
        }
        ReplyTo::Flight => state.flight_resolve(engine.generation, key, &reply),
    }
}

/// One `EXPAND` round on a worker. The generation was verified at dispatch;
/// the captured engine is immutable, so the reply's generation tag is
/// correct even if a swap lands mid-round.
fn run_expand(job: ExpandJob, state: &ServerState) {
    // Fault-injection hook for drills: dragging a configured user slows the
    // shard that owns it, exactly like a hot neighbor would.
    if let Some(dragged) = state.config().drag_user {
        if job.probes.iter().any(|&(u, _)| u == dragged) {
            std::thread::sleep(state.config().drag_per_check);
        }
    }
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        job.engine.engine.expand(&job.terms, &job.probes)
    }));
    let response = match result {
        Ok(Ok((tables, bound))) => Response::Expanded {
            gen: job.engine.generation,
            bound,
            tables,
        },
        Ok(Err(reason)) => {
            Metrics::bump(&state.metrics().errors);
            Response::Err(reason)
        }
        Err(_) => {
            Metrics::bump(&state.metrics().panics);
            Metrics::bump(&state.metrics().internal_errors);
            Response::Err("internal: expand panicked".to_string())
        }
    };
    let _ = job.reply.send(response);
}

fn run_query(mut job: QueryJob, state: &ServerState, scratch: &mut SearchScratch) {
    {
        let waited = job.enqueued.elapsed();
        state.metrics().queue_wait.observe(waited);
        job.trace.event(Stage::QueueWait, waited, 0);
        if job.cancel.is_cancelled() {
            // Every waiter already timed out (or the deadline expired
            // in-queue): don't burn CPU on an abandoned job.
            state.tracing().finish(
                job.trace,
                &job.key,
                "timeout",
                false,
                None,
                job.enqueued.elapsed(),
                state.metrics(),
            );
            deliver(
                &job.reply,
                &job.engine,
                &job.key,
                Err(JobError::Search(SearchError::Cancelled {
                    probed_tables: 0,
                    expand_rounds: 0,
                })),
                state,
            );
            return;
        }
        let exec_started = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            state.try_execute(&job.engine, &job.key, &job.cancel, &mut job.trace, scratch)
        }));
        let (reply, outcome, stats): (JobReply, &'static str, Option<SearchStats>) = match result {
            Ok(Ok((ranked, serve))) => {
                state.metrics().execution.observe(exec_started.elapsed());
                let elapsed = job.enqueued.elapsed();
                let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
                if !job.cancel.is_cancelled() {
                    state.metrics().latency.observe(elapsed);
                }
                let label = if serve.partial.is_empty() {
                    "ok"
                } else {
                    "partial"
                };
                (
                    Ok((ranked, micros, serve.partial)),
                    label,
                    Some(serve.stats),
                )
            }
            Ok(Err(ServeError::Search(e))) => {
                // A cancelled search still reports the work it did before
                // the token fired — the trace and histograms see real work,
                // not zeros.
                let (outcome, stats) = match &e {
                    SearchError::Cancelled {
                        probed_tables,
                        expand_rounds,
                    } => (
                        "timeout",
                        Some(SearchStats {
                            probed_tables: *probed_tables,
                            expand_rounds: *expand_rounds,
                            ..SearchStats::default()
                        }),
                    ),
                    _ => ("error", None),
                };
                (Err(JobError::Search(e)), outcome, stats)
            }
            Ok(Err(ServeError::Shard(reason))) => (Err(JobError::Shard(reason)), "error", None),
            Err(_) => {
                // The panic payload already went to the panic hook (stderr);
                // count it and keep serving.
                Metrics::bump(&state.metrics().panics);
                (Err(JobError::Panicked), "panic", None)
            }
        };
        // Finalize the trace before releasing the waiter: a client that has
        // its answer is guaranteed to find the query in METRICS and TRACE.
        state.tracing().finish(
            job.trace,
            &job.key,
            outcome,
            false,
            stats,
            job.enqueued.elapsed(),
            state.metrics(),
        );
        // Direct reply slots are buffered and flight resolution skips dead
        // receivers — either way this never blocks a worker.
        deliver(&job.reply, &job.engine, &job.key, reply, state);
    }
}
