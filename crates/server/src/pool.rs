//! Worker pool: a fixed set of threads draining a bounded request queue.
//!
//! The bounded `crossbeam` channel is the server's admission controller —
//! connection threads `try_send`, and a full queue becomes an immediate
//! `ERR overloaded` instead of unbounded queueing. Workers exit when every
//! sender is dropped, which is exactly the graceful-shutdown drain: the
//! queue empties, then the pool joins.

use crate::cache::QueryKey;
use crate::state::{RankedTopics, ServerState};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One admitted query, owned by a worker until answered.
pub struct QueryJob {
    /// Validated, normalized query identity.
    pub key: QueryKey,
    /// When the connection thread admitted the job; service latency is
    /// measured from here so queue wait counts against the budget.
    pub enqueued: Instant,
    /// Set by the connection thread when its deadline fires; the worker
    /// skips the computation for an abandoned job.
    pub cancelled: Arc<AtomicBool>,
    /// Where the result goes. Buffered (capacity 1), so a worker's send
    /// never blocks even when the waiter already gave up.
    pub reply: Sender<(RankedTopics, u64)>,
}

/// Outcome of offering a job to the pool.
pub enum Admission {
    /// Job accepted; await the reply channel.
    Queued,
    /// Queue full — shed.
    Overloaded,
    /// Pool is gone (server shutting down).
    Closed,
}

/// The worker pool plus the sending side of its queue.
pub struct WorkerPool {
    jobs: Sender<QueryJob>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `state.config().workers` threads over a queue of depth
    /// `state.config().queue_depth`.
    pub fn start(state: Arc<ServerState>) -> WorkerPool {
        let (jobs, rx) = channel::bounded::<QueryJob>(state.config().queue_depth);
        let workers = (0..state.config().workers.max(1))
            .map(|i| {
                let rx: Receiver<QueryJob> = rx.clone();
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("pit-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { jobs, workers }
    }

    /// Offer a job without blocking; a full queue is the load-shed signal.
    pub fn submit(&self, job: QueryJob) -> Admission {
        match self.jobs.try_send(job) {
            Ok(()) => Admission::Queued,
            Err(TrySendError::Full(_)) => Admission::Overloaded,
            Err(TrySendError::Disconnected(_)) => Admission::Closed,
        }
    }

    /// Stop accepting new jobs, drain the queue, and join every worker.
    pub fn shutdown(self) {
        drop(self.jobs); // workers drain the queue, then see Disconnected
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Receiver<QueryJob>, state: &ServerState) {
    while let Ok(job) = rx.recv() {
        if job.cancelled.load(Ordering::Acquire) {
            continue; // waiter already timed out; don't burn CPU on it
        }
        let ranked = state.execute(&job.key);
        let elapsed = job.enqueued.elapsed();
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        if !job.cancelled.load(Ordering::Acquire) {
            state.metrics().latency.observe(elapsed);
        }
        // The reply slot is buffered and the waiter may be gone — either way
        // this never blocks a worker.
        let _ = job.reply.send((ranked, micros));
    }
}
