//! Worker pool: a fixed set of threads draining a bounded request queue,
//! isolated from query panics and self-healing when one slips through.
//!
//! The bounded `crossbeam` channel is the server's admission controller —
//! connection threads `try_send`, and a full queue becomes an immediate
//! `ERR overloaded` instead of unbounded queueing. Workers exit when every
//! sender is dropped, which is exactly the graceful-shutdown drain: the
//! queue empties, then the pool joins.
//!
//! Failure isolation is layered. Each job runs under `catch_unwind`, so a
//! panic inside the engine answers that one waiter with
//! [`JobError::Panicked`] and the worker lives on. Should a panic ever
//! escape the guarded region (e.g. while reporting the result), a sentinel
//! respawns a replacement thread before the dying one unwinds away — the
//! pool never silently bleeds capacity.

use crate::cache::QueryKey;
use crate::engine::ServeError;
use crate::metrics::Metrics;
use crate::state::{EngineGen, RankedTopics, ServerState};
use crate::trace::TraceCtx;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use pit_obs::trace::Stage;
use pit_search_core::{CancelToken, SearchError, SearchStats};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a worker could not produce a ranking for an admitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The query execution panicked; the pool survived, the result did not.
    Panicked,
    /// A typed search failure (cancelled mid-flight or unindexed user).
    Search(SearchError),
    /// A router could not seed the search: the query user's home shard was
    /// unreachable. Maps to `ERR internal: …` — backend health is the
    /// server's fault, never the client's.
    Shard(String),
}

/// What a worker sends back for an admitted job: the ranking, the service
/// time in µs, and the (usually empty) partial-answer provenance —
/// `(shard index, reason)` for every shard that could not contribute.
pub type JobReply = Result<(RankedTopics, u64, Vec<(u32, String)>), JobError>;

/// One admitted query, owned by a worker until answered.
pub struct QueryJob {
    /// Engine generation captured at admission. The worker executes against
    /// exactly this engine even if a `RELOAD` swap lands while the job is
    /// queued or running — in-flight queries finish on the `Arc` they
    /// captured, and their cache fill is tagged with this generation.
    pub engine: EngineGen,
    /// Validated, normalized query identity.
    pub key: QueryKey,
    /// When the connection thread admitted the job; service latency is
    /// measured from here so queue wait counts against the budget.
    pub enqueued: Instant,
    /// Shared cancellation/deadline token: the waiter sets its flag when
    /// the budget expires, and the token's own deadline stops the search
    /// even if the waiter is gone.
    pub cancel: CancelToken,
    /// Where the result goes. Buffered (capacity 1), so a worker's send
    /// never blocks even when the waiter already gave up.
    pub reply: Sender<JobReply>,
    /// Per-query trace handle, created at admission; the worker that
    /// answers the job finalizes it (inert single branch when unsampled).
    pub trace: TraceCtx,
}

/// Outcome of offering a job to the pool.
pub enum Admission {
    /// Job accepted; await the reply channel.
    Queued,
    /// Queue full — shed.
    Overloaded,
    /// Pool is gone (server shutting down).
    Closed,
}

/// Everything a worker thread (and its respawn sentinel) needs.
struct PoolShared {
    rx: Receiver<QueryJob>,
    state: Arc<ServerState>,
    /// Live worker handles; respawned replacements are recorded here so
    /// shutdown joins them too.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Monotonic id source for worker thread names.
    next_id: AtomicUsize,
    /// Set once shutdown begins; sentinels stop respawning past this point.
    draining: AtomicBool,
}

/// The worker pool plus the sending side of its queue.
pub struct WorkerPool {
    jobs: Sender<QueryJob>,
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawn `state.config().workers` threads over a queue of depth
    /// `state.config().queue_depth`.
    pub fn start(state: Arc<ServerState>) -> WorkerPool {
        let workers = state.config().workers.max(1);
        let (jobs, rx) = channel::bounded::<QueryJob>(state.config().queue_depth);
        let shared = Arc::new(PoolShared {
            rx,
            state,
            handles: Mutex::named("server.pool.handles", Vec::with_capacity(workers)),
            next_id: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        });
        for _ in 0..workers {
            // Startup, before any request is admitted: a host that cannot
            // spawn its configured workers cannot serve and must die loudly.
            spawn_worker(&shared).expect("spawn worker thread");
        }
        WorkerPool { jobs, shared }
    }

    /// Offer a job without blocking; a full queue is the load-shed signal.
    pub fn submit(&self, job: QueryJob) -> Admission {
        match self.jobs.try_send(job) {
            Ok(()) => Admission::Queued,
            Err(TrySendError::Full(_)) => Admission::Overloaded,
            Err(TrySendError::Disconnected(_)) => Admission::Closed,
        }
    }

    /// Stop accepting new jobs, drain the queue, and join every worker —
    /// including any respawned replacements.
    pub fn shutdown(self) {
        self.shared.draining.store(true, Ordering::Release);
        drop(self.jobs); // workers drain the queue, then see Disconnected
        loop {
            // Pop one handle at a time: a dying worker's sentinel may still
            // push a replacement while we join, and it must be joined too.
            let handle = self.shared.handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Spawn one worker thread and record its handle for shutdown.
///
/// # Errors
/// Propagates the OS thread-spawn failure; the caller decides whether that
/// is fatal (pool startup) or lost capacity to absorb (sentinel respawn,
/// which runs during unwinding where a second panic would abort).
fn spawn_worker(shared: &Arc<PoolShared>) -> std::io::Result<()> {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let cloned = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("pit-worker-{id}"))
        .spawn(move || {
            let sentinel = Sentinel {
                shared: Arc::clone(&cloned),
            };
            worker_loop(&cloned.rx, &cloned.state);
            // Clean exit (queue drained): the sentinel must not respawn.
            std::mem::forget(sentinel);
        })?;
    shared.handles.lock().push(handle);
    Ok(())
}

/// Respawn guard: dropped during unwinding only when a panic escaped the
/// per-job `catch_unwind`, in which case the dying worker is replaced so
/// the pool keeps its configured capacity.
struct Sentinel {
    shared: Arc<PoolShared>,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.draining.load(Ordering::Acquire) {
            Metrics::bump(&self.shared.state.metrics().panics);
            // Already unwinding: a panic here would abort the process, so a
            // failed respawn is absorbed as reduced capacity, not escalated.
            if spawn_worker(&self.shared).is_err() {
                eprintln!(
                    "pit-server: could not respawn worker after a panic; pool capacity reduced"
                );
            }
        }
    }
}

fn worker_loop(rx: &Receiver<QueryJob>, state: &ServerState) {
    while let Ok(mut job) = rx.recv() {
        let waited = job.enqueued.elapsed();
        state.metrics().queue_wait.observe(waited);
        job.trace.event(Stage::QueueWait, waited, 0);
        if job.cancel.is_cancelled() {
            // Waiter already timed out (or the deadline expired in-queue):
            // don't burn CPU on an abandoned job.
            state.tracing().finish(
                job.trace,
                &job.key,
                "timeout",
                false,
                None,
                job.enqueued.elapsed(),
                state.metrics(),
            );
            let _ = job.reply.send(Err(JobError::Search(SearchError::Cancelled {
                probed_tables: 0,
                expand_rounds: 0,
            })));
            continue;
        }
        let exec_started = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            state.try_execute(&job.engine, &job.key, &job.cancel, &mut job.trace)
        }));
        let (reply, outcome, stats): (JobReply, &'static str, Option<SearchStats>) = match result {
            Ok(Ok((ranked, serve))) => {
                state.metrics().execution.observe(exec_started.elapsed());
                let elapsed = job.enqueued.elapsed();
                let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
                if !job.cancel.is_cancelled() {
                    state.metrics().latency.observe(elapsed);
                }
                let label = if serve.partial.is_empty() {
                    "ok"
                } else {
                    "partial"
                };
                (
                    Ok((ranked, micros, serve.partial)),
                    label,
                    Some(serve.stats),
                )
            }
            Ok(Err(ServeError::Search(e))) => {
                // A cancelled search still reports the work it did before
                // the token fired — the trace and histograms see real work,
                // not zeros.
                let (outcome, stats) = match &e {
                    SearchError::Cancelled {
                        probed_tables,
                        expand_rounds,
                    } => (
                        "timeout",
                        Some(SearchStats {
                            probed_tables: *probed_tables,
                            expand_rounds: *expand_rounds,
                            ..SearchStats::default()
                        }),
                    ),
                    _ => ("error", None),
                };
                (Err(JobError::Search(e)), outcome, stats)
            }
            Ok(Err(ServeError::Shard(reason))) => (Err(JobError::Shard(reason)), "error", None),
            Err(_) => {
                // The panic payload already went to the panic hook (stderr);
                // count it and keep serving.
                Metrics::bump(&state.metrics().panics);
                (Err(JobError::Panicked), "panic", None)
            }
        };
        // Finalize the trace before releasing the waiter: a client that has
        // its answer is guaranteed to find the query in METRICS and TRACE.
        state.tracing().finish(
            job.trace,
            &job.key,
            outcome,
            false,
            stats,
            job.enqueued.elapsed(),
            state.metrics(),
        );
        // The reply slot is buffered and the waiter may be gone — either way
        // this never blocks a worker.
        let _ = job.reply.send(reply);
    }
}
