//! Serving metrics: lock-free counters and a fixed-bucket latency histogram.
//!
//! Everything here is written on the hot path, so all state is atomic —
//! `STATS` readers see a consistent-enough snapshot without stopping the
//! world. The histogram buckets are fixed at construction (powers of two in
//! microseconds), giving p50/p99 estimates with bounded error and zero
//! allocation per observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket upper bounds in microseconds: 1µs, 2µs, 4µs … ~8.6s, plus a
/// catch-all. 24 buckets ⇒ every estimate is within 2× of the true value.
const BUCKETS: usize = 24;

/// Latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        // Bucket i covers [2^i, 2^(i+1)) µs; 0µs lands in bucket 0.
        let idx = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing quantile `q` ∈ [0, 1],
    /// or 0 when empty. Within 2× of the true quantile by construction.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// All counters the `STATS` command reports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries answered successfully (fresh or cached).
    pub queries: AtomicU64,
    /// Queries rejected because the request queue was full.
    pub shed: AtomicU64,
    /// Queries that exceeded their time budget.
    pub timeouts: AtomicU64,
    /// Requests answered with any other `ERR`.
    pub errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Service latency (queue wait + execution) of successful queries.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// A fresh metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increment `counter` by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render every counter as `(name, value)` pairs for the `STATS` reply.
    /// Cache statistics are appended by the caller, which owns the cache.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("queries".into(), load(&self.queries).to_string()),
            ("shed".into(), load(&self.shed).to_string()),
            ("timeouts".into(), load(&self.timeouts).to_string()),
            ("errors".into(), load(&self.errors).to_string()),
            ("connections".into(), load(&self.connections).to_string()),
            (
                "latency_p50_us".into(),
                self.latency.quantile_micros(0.50).to_string(),
            ),
            (
                "latency_p99_us".into(),
                self.latency.quantile_micros(0.99).to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe(Duration::from_micros(10));
        }
        h.observe(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        // p50 within 2× of 10µs.
        let p50 = h.quantile_micros(0.50);
        assert!((8..=16).contains(&p50), "p50 = {p50}");
        // p99 dominated by the 100ms outlier? 99th of 100 obs is the 99th
        // rank = still 10µs; p100 would be the outlier.
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 65_536, "p100 = {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_names_are_stable() {
        let m = Metrics::new();
        Metrics::bump(&m.queries);
        let names: Vec<String> = m.snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            names,
            vec![
                "queries",
                "shed",
                "timeouts",
                "errors",
                "connections",
                "latency_p50_us",
                "latency_p99_us"
            ]
        );
    }
}
