//! Serving metrics: lock-free counters and fixed-bucket latency histograms.
//!
//! Everything here is written on the hot path, so all state is atomic —
//! `STATS` readers see a consistent-enough snapshot without stopping the
//! world. The histogram buckets are fixed at construction (powers of two in
//! microseconds), giving p50/p99 estimates with bounded error and zero
//! allocation per observation.
//!
//! Service latency is reported three ways so operators can tell admission
//! pressure from slow queries: `queue_wait` (admission → dequeue),
//! `execution` (dequeue → answer), and `latency` (their end-to-end sum).

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bucket count. Bucket 0 holds 0µs exactly; bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i)` µs, so the largest bounded bucket tops out at
/// `2^23` µs ≈ 8.4s and every estimate is within 2× of the true value.
const BUCKETS: usize = 24;

/// Map an observation to its bucket: 0µs → bucket 0, otherwise
/// `floor(log2(µs)) + 1`, saturating into the last (catch-all) bucket.
fn bucket_index(micros: u64) -> usize {
    (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Latency histogram with power-of-two microsecond buckets.
///
/// Despite the name the value axis is unit-agnostic: the serving stack also
/// uses it for per-query work counts (EXPAND rounds, probed tables) via
/// [`LatencyHistogram::observe_value`], with the same bucket layout.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    /// Total of all observed values, for Prometheus `_sum`.
    sum: AtomicU64,
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        self.observe_value(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one raw value (µs for latency histograms, a count for work
    /// histograms).
    pub fn observe_value(&self, value: u64) {
        // Bucket i covers [2^(i-1), 2^i); the value 0 lands in bucket 0.
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total of all observed values (the Prometheus `_sum` series).
    pub fn sum_value(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts. Bucket 0 holds 0µs exactly; bucket
    /// `i ≥ 1` covers `[2^(i-1), 2^i)` µs, the last bucket catching all.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The exclusive upper bound (µs) of the bucket containing quantile
    /// `q` ∈ [0, 1] — `2^i` for bucket `i` — or 0 when empty. Within 2× of
    /// the true quantile by construction.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// All counters the `STATS` command reports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries answered successfully (fresh or cached).
    pub queries: AtomicU64,
    /// Queries rejected because the request queue was full.
    pub shed: AtomicU64,
    /// Queries that exceeded their time budget (`ERR timeout`).
    pub timeouts: AtomicU64,
    /// Requests answered with a request-shaped `ERR` (malformed input).
    pub errors: AtomicU64,
    /// Queries that died to a server-side fault (`ERR internal`): a
    /// panicking job or a vanished worker. Disjoint from `timeouts`.
    pub internal_errors: AtomicU64,
    /// Worker panics caught (or survived via respawn). Each one is an index
    /// bug surfacing; `internal_errors` counts the client-visible fallout.
    pub panics: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Engine swaps completed (`RELOAD` or `UPDATE` verbs); each one bumps
    /// the serving generation.
    pub reloads: AtomicU64,
    /// `RELOAD`/`UPDATE` attempts that failed (`ERR reload-failed`) and left
    /// the prior generation serving.
    pub reload_failures: AtomicU64,
    /// End-to-end service latency (queue wait + execution) of successful
    /// queries.
    pub latency: LatencyHistogram,
    /// Time jobs spent queued before a worker picked them up — rises under
    /// admission pressure even when execution stays fast.
    pub queue_wait: LatencyHistogram,
    /// Pure execution time of successfully completed searches.
    pub execution: LatencyHistogram,
    /// Wall time of successful engine swaps (load/apply through the
    /// generation bump) on the updater thread.
    pub reload_latency: LatencyHistogram,
    /// Queries whose total service time exceeded the slow-query threshold
    /// (captured in the slow-query log regardless of sampling).
    pub slow_queries: AtomicU64,
    /// Queries captured with full spans by the trace sampler.
    pub traces_sampled: AtomicU64,
    /// EXPAND rounds per executed (non-cached) query — the work counter the
    /// paper's pruning argument lives on. Value histogram, not µs.
    pub expand_rounds: LatencyHistogram,
    /// Propagation tables probed per executed query. Value histogram.
    pub probed_tables: LatencyHistogram,
    /// Result-cache probe time (µs) of traced queries.
    pub cache_probe: LatencyHistogram,
    /// Representative gather + `Γ(v)` probe time (µs) of traced queries.
    pub gather: LatencyHistogram,
    /// Final ranking time (µs) of traced queries.
    pub rank: LatencyHistogram,
    /// Shards never probed because the cross-shard upper bound proved them
    /// irrelevant (§5.2 pruning generalized over the fan-out). Always 0 on
    /// a single-node server.
    pub shards_pruned: AtomicU64,
    /// Queries answered with an honest `partial=` tag because one or more
    /// shards failed or timed out mid-fan-out. Partial answers are never
    /// cached.
    pub partial_replies: AtomicU64,
    /// Cold queries that joined an already-in-flight identical execution
    /// instead of running their own search (single-flight coalescing).
    /// Leaders are not counted here; see `inflight_executions`.
    pub coalesced_queries: AtomicU64,
    /// Cold-query executions actually started (flight leaders, plus every
    /// uncoalesced miss). `queries - cache_hits - inflight_executions` is
    /// the work the cache *and* coalescing together saved.
    pub inflight_executions: AtomicU64,
    /// Accept-loop failures that cost a connection: fd exhaustion or any
    /// other non-retryable `accept(2)` error. The client saw a refused or
    /// dropped connection, not an `ERR`.
    pub accept_errors: AtomicU64,
    /// Warmup queries replayed by the updater thread after a full reload
    /// (the post-swap cold-cliff shrinker), over the server's lifetime.
    pub warmup_queries: AtomicU64,
    /// Warmup runs that ran out of `--warmup-budget-ms` before finishing
    /// their key list.
    pub warmup_budget_exhausted: AtomicU64,
    /// Gauge: keys the most recent warmup run set out to replay.
    pub warmup_target: AtomicU64,
    /// Gauge: keys the most recent warmup run actually repopulated.
    pub warmup_warmed: AtomicU64,
    /// Gauge: client connections currently registered with the I/O threads.
    /// Incremented at accept, decremented when the event loop drops the
    /// socket (close, idle cut, error, drain).
    pub open_connections: AtomicU64,
    /// Gauge: jobs currently admitted to the worker queue (queued or
    /// executing). Separates CPU backlog from connection count in STATS.
    pub queued_jobs: AtomicU64,
    /// Per-shard time spent waiting on `EXPAND` round-trips, one histogram
    /// per shard index, grown on first observation. A leaf lock (anonymous:
    /// never held together with another lock); the histograms are `Arc`ed
    /// out so observation happens outside the lock.
    shard_fanout: RwLock<Vec<Arc<LatencyHistogram>>>,
}

impl Metrics {
    /// A fresh metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increment `counter` by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment `counter` by `n` (scatter-gather counters arrive batched
    /// per query).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement a gauge by one. Callers pair every `dec` with an earlier
    /// `bump` on the same gauge, so the value never wraps.
    pub fn dec(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrite a gauge (last-run style gauges like the warmup coverage).
    pub fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }

    /// Fraction of the most recent warmup run's target keys that were
    /// actually repopulated, in `[0, 1]`; 0 when no warmup ran yet.
    pub fn warmup_coverage(&self) -> f64 {
        let target = self.warmup_target.load(Ordering::Relaxed);
        if target == 0 {
            return 0.0;
        }
        self.warmup_warmed.load(Ordering::Relaxed) as f64 / target as f64
    }

    /// Read a counter or gauge.
    pub fn value(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Record one fan-out wait for `shard`, growing the per-shard histogram
    /// vector on first sight of a new index.
    pub fn observe_shard_fanout(&self, shard: u32, micros: u64) {
        let shard = shard as usize;
        let hist = {
            let read = self.shard_fanout.read();
            read.get(shard).cloned()
        };
        let hist = match hist {
            Some(h) => h,
            None => {
                let mut write = self.shard_fanout.write();
                while write.len() <= shard {
                    write.push(Arc::new(LatencyHistogram::new()));
                }
                Arc::clone(&write[shard])
            }
        };
        hist.observe_value(micros);
    }

    /// Snapshot the per-shard fan-out histograms as
    /// `(shard label, bucket counts, sum)` for labeled rendering.
    pub fn shard_fanout_series(&self) -> Vec<(String, Vec<u64>, u64)> {
        self.shard_fanout
            .read()
            .iter()
            .enumerate()
            .map(|(i, h)| (i.to_string(), h.bucket_counts(), h.sum_value()))
            .collect()
    }

    /// Render every counter as `(name, value)` pairs for the `STATS` reply.
    /// Cache statistics are appended by the caller, which owns the cache.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("queries".into(), load(&self.queries).to_string()),
            ("shed".into(), load(&self.shed).to_string()),
            ("timeouts".into(), load(&self.timeouts).to_string()),
            ("errors".into(), load(&self.errors).to_string()),
            (
                "internal_errors".into(),
                load(&self.internal_errors).to_string(),
            ),
            ("panics".into(), load(&self.panics).to_string()),
            ("connections".into(), load(&self.connections).to_string()),
            ("reloads".into(), load(&self.reloads).to_string()),
            (
                "reload_failures".into(),
                load(&self.reload_failures).to_string(),
            ),
            ("slow_queries".into(), load(&self.slow_queries).to_string()),
            (
                "traces_sampled".into(),
                load(&self.traces_sampled).to_string(),
            ),
            (
                "shards_pruned".into(),
                load(&self.shards_pruned).to_string(),
            ),
            (
                "partial_replies".into(),
                load(&self.partial_replies).to_string(),
            ),
            (
                "coalesced_queries".into(),
                load(&self.coalesced_queries).to_string(),
            ),
            (
                "inflight_executions".into(),
                load(&self.inflight_executions).to_string(),
            ),
            (
                "accept_errors".into(),
                load(&self.accept_errors).to_string(),
            ),
            (
                "latency_p50_us".into(),
                self.latency.quantile_micros(0.50).to_string(),
            ),
            (
                "latency_p99_us".into(),
                self.latency.quantile_micros(0.99).to_string(),
            ),
            (
                "queue_p50_us".into(),
                self.queue_wait.quantile_micros(0.50).to_string(),
            ),
            (
                "queue_p99_us".into(),
                self.queue_wait.quantile_micros(0.99).to_string(),
            ),
            (
                "exec_p50_us".into(),
                self.execution.quantile_micros(0.50).to_string(),
            ),
            (
                "exec_p99_us".into(),
                self.execution.quantile_micros(0.99).to_string(),
            ),
            (
                "reload_p50_us".into(),
                self.reload_latency.quantile_micros(0.50).to_string(),
            ),
            (
                "reload_p99_us".into(),
                self.reload_latency.quantile_micros(0.99).to_string(),
            ),
            (
                "warmup_queries".into(),
                load(&self.warmup_queries).to_string(),
            ),
            (
                "warmup_coverage".into(),
                format!("{:.4}", self.warmup_coverage()),
            ),
            (
                "warmup_budget_exhausted".into(),
                load(&self.warmup_budget_exhausted).to_string(),
            ),
        ]
    }

    /// Append every counter and histogram to a Prometheus text exposition.
    /// Metric names are a stable registry — dashboards depend on them and a
    /// golden test pins the full set; never rename, only add.
    pub fn render_prometheus(&self, out: &mut String) {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let hist = |out: &mut String, name: &str, help: &str, h: &LatencyHistogram| {
            pit_obs::prom::histogram(out, name, help, &h.bucket_counts(), h.sum_value());
        };
        pit_obs::prom::counter(
            out,
            "pit_queries_total",
            "Queries answered successfully (fresh or cached).",
            load(&self.queries),
        );
        pit_obs::prom::counter(
            out,
            "pit_shed_total",
            "Queries rejected because the request queue was full.",
            load(&self.shed),
        );
        pit_obs::prom::counter(
            out,
            "pit_timeouts_total",
            "Queries that exceeded their time budget.",
            load(&self.timeouts),
        );
        pit_obs::prom::counter(
            out,
            "pit_errors_total",
            "Requests answered with a malformed-input ERR.",
            load(&self.errors),
        );
        pit_obs::prom::counter(
            out,
            "pit_internal_errors_total",
            "Queries lost to a server-side fault.",
            load(&self.internal_errors),
        );
        pit_obs::prom::counter(
            out,
            "pit_panics_total",
            "Worker panics caught or survived via respawn.",
            load(&self.panics),
        );
        pit_obs::prom::counter(
            out,
            "pit_connections_total",
            "Connections accepted over the server's lifetime.",
            load(&self.connections),
        );
        pit_obs::prom::counter(
            out,
            "pit_reloads_total",
            "Engine swaps completed (RELOAD or UPDATE).",
            load(&self.reloads),
        );
        pit_obs::prom::counter(
            out,
            "pit_reload_failures_total",
            "RELOAD/UPDATE attempts that failed.",
            load(&self.reload_failures),
        );
        pit_obs::prom::counter(
            out,
            "pit_slow_queries_total",
            "Queries over the slow-query threshold.",
            load(&self.slow_queries),
        );
        pit_obs::prom::counter(
            out,
            "pit_traces_sampled_total",
            "Queries captured with full spans by the trace sampler.",
            load(&self.traces_sampled),
        );
        pit_obs::prom::counter(
            out,
            "pit_shards_pruned_total",
            "Shards never probed because the cross-shard bound proved them irrelevant.",
            load(&self.shards_pruned),
        );
        pit_obs::prom::counter(
            out,
            "pit_partial_replies_total",
            "Queries answered partial because a shard failed or timed out.",
            load(&self.partial_replies),
        );
        pit_obs::prom::counter(
            out,
            "pit_coalesced_queries_total",
            "Cold queries that joined an in-flight identical execution.",
            load(&self.coalesced_queries),
        );
        pit_obs::prom::counter(
            out,
            "pit_inflight_executions_total",
            "Cold-query executions started (flight leaders + uncoalesced misses).",
            load(&self.inflight_executions),
        );
        pit_obs::prom::counter(
            out,
            "pit_accept_errors_total",
            "Accept-loop failures that cost a connection (e.g. fd exhaustion).",
            load(&self.accept_errors),
        );
        pit_obs::prom::counter(
            out,
            "pit_warmup_queries_total",
            "Warmup queries replayed by the updater thread after full reloads.",
            load(&self.warmup_queries),
        );
        pit_obs::prom::counter(
            out,
            "pit_warmup_budget_exhausted_total",
            "Warmup runs that ran out of budget before finishing their key list.",
            load(&self.warmup_budget_exhausted),
        );
        hist(
            out,
            "pit_latency_us",
            "End-to-end service latency (µs) of successful queries.",
            &self.latency,
        );
        hist(
            out,
            "pit_queue_wait_us",
            "Time (µs) jobs spent queued before a worker picked them up.",
            &self.queue_wait,
        );
        hist(
            out,
            "pit_execution_us",
            "Pure execution time (µs) of completed searches.",
            &self.execution,
        );
        hist(
            out,
            "pit_reload_us",
            "Wall time (µs) of successful engine swaps.",
            &self.reload_latency,
        );
        hist(
            out,
            "pit_expand_rounds",
            "EXPAND rounds per executed query.",
            &self.expand_rounds,
        );
        hist(
            out,
            "pit_probed_tables",
            "Propagation tables probed per executed query.",
            &self.probed_tables,
        );
        hist(
            out,
            "pit_cache_probe_us",
            "Result-cache probe time (µs) of traced queries.",
            &self.cache_probe,
        );
        hist(
            out,
            "pit_gather_us",
            "Representative gather time (µs) of traced queries.",
            &self.gather,
        );
        hist(
            out,
            "pit_rank_us",
            "Final ranking time (µs) of traced queries.",
            &self.rank,
        );
        pit_obs::prom::histogram_labeled(
            out,
            "pit_shard_fanout_us",
            "Per-shard EXPAND round-trip wait (µs), labeled by shard index.",
            "shard",
            &self.shard_fanout_series(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_pinned() {
        // Bucket 0 holds only 0µs; bucket i ≥ 1 covers [2^(i-1), 2^i) µs.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        // Beyond the bounded range everything saturates into the catch-all.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_reports_the_bucket_upper_bound() {
        // A single observation's quantile is its bucket's exclusive upper
        // bound 2^i — never below the observed value.
        for (us, upper) in [(1u64, 2u64), (2, 4), (1024, 2048)] {
            let h = LatencyHistogram::new();
            h.observe(Duration::from_micros(us));
            assert_eq!(h.quantile_micros(1.0), upper, "{us}µs");
        }
        let h = LatencyHistogram::new();
        h.observe(Duration::ZERO);
        assert_eq!(h.quantile_micros(1.0), 1, "0µs sits in bucket 0, bound 1");
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe(Duration::from_micros(10));
        }
        h.observe(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        // p50 within 2× of 10µs.
        let p50 = h.quantile_micros(0.50);
        assert!((8..=16).contains(&p50), "p50 = {p50}");
        // p99 dominated by the 100ms outlier? 99th of 100 obs is the 99th
        // rank = still 10µs; p100 would be the outlier.
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 65_536, "p100 = {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_value(), 0);
    }

    #[test]
    fn sum_tracks_observed_values() {
        let h = LatencyHistogram::new();
        h.observe_value(3);
        h.observe_value(0);
        h.observe(Duration::from_micros(1024));
        assert_eq!(h.sum_value(), 1027);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn prometheus_rendering_covers_every_counter() {
        let m = Metrics::new();
        Metrics::bump(&m.queries);
        m.expand_rounds.observe_value(2);
        let mut out = String::new();
        m.render_prometheus(&mut out);
        // One # TYPE line per metric; histograms carry sum/count/+Inf.
        assert!(out.contains("# TYPE pit_queries_total counter\n"));
        assert!(out.contains("pit_queries_total 1\n"));
        assert!(out.contains("# TYPE pit_expand_rounds histogram\n"));
        assert!(out.contains("pit_expand_rounds_sum 2\n"));
        assert!(out.contains("pit_expand_rounds_count 1\n"));
        assert!(out.contains("pit_expand_rounds_bucket{le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn shard_fanout_grows_per_shard_series() {
        let m = Metrics::new();
        assert!(m.shard_fanout_series().is_empty(), "no shards observed yet");
        m.observe_shard_fanout(2, 100);
        m.observe_shard_fanout(0, 5);
        m.observe_shard_fanout(2, 200);
        let series = m.shard_fanout_series();
        assert_eq!(series.len(), 3, "grown to cover shard 2");
        assert_eq!(series[0].0, "0");
        assert_eq!(series[0].2, 5);
        assert_eq!(series[1].2, 0, "shard 1 never observed");
        assert_eq!(series[2].2, 300);
        let mut out = String::new();
        m.render_prometheus(&mut out);
        assert!(
            out.contains("pit_shard_fanout_us_sum{shard=\"2\"} 300\n"),
            "{out}"
        );
    }

    #[test]
    fn snapshot_names_are_stable() {
        let m = Metrics::new();
        Metrics::bump(&m.queries);
        let names: Vec<String> = m.snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            names,
            vec![
                "queries",
                "shed",
                "timeouts",
                "errors",
                "internal_errors",
                "panics",
                "connections",
                "reloads",
                "reload_failures",
                "slow_queries",
                "traces_sampled",
                "shards_pruned",
                "partial_replies",
                "coalesced_queries",
                "inflight_executions",
                "accept_errors",
                "latency_p50_us",
                "latency_p99_us",
                "queue_p50_us",
                "queue_p99_us",
                "exec_p50_us",
                "exec_p99_us",
                "reload_p50_us",
                "reload_p99_us",
                "warmup_queries",
                "warmup_coverage",
                "warmup_budget_exhausted"
            ]
        );
    }
}
