//! The `1/N` trace-sampling knob.
//!
//! Sampling must be nearly free when off: `Sampler::every(0)` answers with
//! a single branch and no atomic traffic, and an enabled sampler costs one
//! relaxed `fetch_add` per decision. Deterministic modular sampling (every
//! N-th query) is used instead of randomness so tests can pin which
//! queries get traced.

use std::sync::atomic::{AtomicU64, Ordering};

/// Samples every N-th decision; `N = 0` disables sampling entirely.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    seen: AtomicU64,
}

impl Sampler {
    /// Sample one in `every` decisions (the first decision always samples,
    /// so `--trace-sample 1` traces every query). `0` never samples.
    pub fn every(every: u64) -> Self {
        Sampler {
            every,
            seen: AtomicU64::new(0),
        }
    }

    /// The configured period (0 = disabled).
    pub fn period(&self) -> u64 {
        self.every
    }

    /// Decide whether this query is sampled.
    pub fn hit(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.seen
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_never_samples() {
        let s = Sampler::every(0);
        assert!((0..100).all(|_| !s.hit()));
    }

    #[test]
    fn one_always_samples() {
        let s = Sampler::every(1);
        assert!((0..100).all(|_| s.hit()));
    }

    #[test]
    fn n_samples_exactly_one_in_n() {
        let s = Sampler::every(4);
        let hits: Vec<bool> = (0..12).map(|_| s.hit()).collect();
        assert_eq!(
            hits,
            vec![true, false, false, false, true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn concurrent_decisions_keep_the_rate() {
        let s = std::sync::Arc::new(Sampler::every(10));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || (0..1000).filter(|_| s.hit()).count())
            })
            .collect();
        let hits: usize = threads.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(hits, 800, "8000 decisions at 1/10 sample exactly 800");
    }
}
