//! Prometheus text-exposition rendering (text format version 0.0.4).
//!
//! Only the shapes the serving stack needs: monotone counters, point-in-time
//! gauges, and the workspace's power-of-two bucket histograms (bucket 0
//! holds the value 0 exactly, bucket `i ≥ 1` covers `[2^(i-1), 2^i)`, last
//! bucket catches all). For that layout the cumulative count through bucket
//! `i` is *exactly* the count of observations `≤ 2^i − 1`, so the rendered
//! `le` bounds are exact, not approximations.

use std::fmt::Write as _;

/// Append one `counter` metric with its `# TYPE` line.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Append one `counter` metric carried by several labeled series — one
/// `# HELP`/`# TYPE` header, then one sample line per series distinguished
/// by a `{label_key="label_value"}` pair. An empty series list renders just
/// the header, which scrapes cleanly as "no data yet".
pub fn counter_labeled(
    out: &mut String,
    name: &str,
    help: &str,
    label_key: &str,
    series: &[(&str, u64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (label_value, value) in series {
        let _ = writeln!(out, "{name}{{{label_key}=\"{label_value}\"}} {value}");
    }
}

/// Append one `gauge` metric with its `# TYPE` line.
pub fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Append one fractional `gauge` metric (ratios such as a warmup coverage)
/// with its `# TYPE` line, rendered with four decimal places.
pub fn gauge_f64(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value:.4}");
}

/// Append one `histogram` metric from per-bucket counts in the workspace's
/// power-of-two layout, with cumulative `_bucket` / `le` lines, `_sum`,
/// and `_count`.
///
/// `buckets[0]` counts observations equal to 0; `buckets[i]` (for `i ≥ 1`)
/// counts observations in `[2^(i-1), 2^i)`; the last bucket is the
/// catch-all. `sum` is the total of all observed values.
pub fn histogram(out: &mut String, name: &str, help: &str, buckets: &[u64], sum: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        cumulative += count;
        if i + 1 == buckets.len() {
            // The catch-all bucket is unbounded: fold it into +Inf below.
            break;
        }
        // Everything in buckets 0..=i is ≤ 2^i − 1 (exact; see module doc).
        let le = (1u64 << i) - 1;
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let total: u64 = buckets.iter().sum();
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_sum {sum}");
    let _ = writeln!(out, "{name}_count {total}");
}

/// Append one `histogram` metric carried by several labeled series — one
/// `# HELP`/`# TYPE` header, then per-series `_bucket`/`_sum`/`_count`
/// lines distinguished by a `{label_key="label_value"}` pair. Bucket layout
/// and exactness are as in [`histogram`]. An empty series list renders just
/// the header, which scrapes cleanly as "no data yet".
pub fn histogram_labeled(
    out: &mut String,
    name: &str,
    help: &str,
    label_key: &str,
    series: &[(String, Vec<u64>, u64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (label_value, buckets, sum) in series {
        let tag = format!("{label_key}=\"{label_value}\"");
        let mut cumulative = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            cumulative += count;
            if i + 1 == buckets.len() {
                break;
            }
            let le = (1u64 << i) - 1;
            let _ = writeln!(out, "{name}_bucket{{{tag},le=\"{le}\"}} {cumulative}");
        }
        let total: u64 = buckets.iter().sum();
        let _ = writeln!(out, "{name}_bucket{{{tag},le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{name}_sum{{{tag}}} {sum}");
        let _ = writeln!(out, "{name}_count{{{tag}}} {total}");
    }
}

/// Extract every metric name from an exposition's `# TYPE` lines, in order.
/// Used by golden tests pinning the registry.
pub fn type_line_names(exposition: &str) -> Vec<String> {
    exposition
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_ascii_whitespace().next())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_type_lines() {
        let mut out = String::new();
        counter(&mut out, "pit_queries_total", "Queries answered.", 7);
        gauge(&mut out, "pit_generation", "Serving generation.", 3);
        assert!(out.contains("# TYPE pit_queries_total counter\n"));
        assert!(out.contains("pit_queries_total 7\n"));
        assert!(out.contains("# TYPE pit_generation gauge\n"));
        assert!(out.contains("pit_generation 3\n"));
        assert_eq!(
            type_line_names(&out),
            vec!["pit_queries_total", "pit_generation"]
        );
    }

    #[test]
    fn labeled_counter_shares_one_header_across_series() {
        let mut out = String::new();
        counter_labeled(
            &mut out,
            "pit_cache_stale_by_reason_total",
            "Entries marked stale, by reason.",
            "reason",
            &[("edge-added", 3), ("full-reload", 7)],
        );
        assert_eq!(
            out.matches("# TYPE pit_cache_stale_by_reason_total counter\n")
                .count(),
            1
        );
        assert!(
            out.contains("pit_cache_stale_by_reason_total{reason=\"edge-added\"} 3\n"),
            "{out}"
        );
        assert!(
            out.contains("pit_cache_stale_by_reason_total{reason=\"full-reload\"} 7\n"),
            "{out}"
        );
        assert_eq!(
            type_line_names(&out),
            vec!["pit_cache_stale_by_reason_total"]
        );
    }

    #[test]
    fn fractional_gauge_renders_four_decimals() {
        let mut out = String::new();
        gauge_f64(&mut out, "pit_warmup_coverage", "Coverage.", 0.5);
        assert!(out.contains("# TYPE pit_warmup_coverage gauge\n"));
        assert!(out.contains("pit_warmup_coverage 0.5000\n"), "{out}");
    }

    #[test]
    fn histogram_cumulative_counts_are_monotone_and_exact() {
        // Buckets: 2 zeros, 3 in [1,2), 1 in [2,4), 4 in the catch-all.
        let buckets = [2u64, 3, 1, 4];
        let mut out = String::new();
        histogram(&mut out, "pit_x", "Test.", &buckets, 123);
        // le bounds for buckets 0..=2: 0, 1, 3; catch-all folds into +Inf.
        assert!(out.contains("pit_x_bucket{le=\"0\"} 2\n"), "{out}");
        assert!(out.contains("pit_x_bucket{le=\"1\"} 5\n"), "{out}");
        assert!(out.contains("pit_x_bucket{le=\"3\"} 6\n"), "{out}");
        assert!(out.contains("pit_x_bucket{le=\"+Inf\"} 10\n"), "{out}");
        assert!(out.contains("pit_x_sum 123\n"));
        assert!(out.contains("pit_x_count 10\n"));
        // Cumulative values never decrease down the bucket lines.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("pit_x_bucket"))
            .filter_map(|l| l.split_ascii_whitespace().last())
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn labeled_histogram_shares_one_header_across_series() {
        let mut out = String::new();
        histogram_labeled(
            &mut out,
            "pit_shard_fanout_us",
            "Per-shard fan-out wait.",
            "shard",
            &[
                ("0".to_string(), vec![1, 2, 0, 0], 3),
                ("1".to_string(), vec![0, 0, 1, 0], 2),
            ],
        );
        assert_eq!(
            out.matches("# TYPE pit_shard_fanout_us histogram\n")
                .count(),
            1
        );
        assert!(
            out.contains("pit_shard_fanout_us_bucket{shard=\"0\",le=\"0\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("pit_shard_fanout_us_bucket{shard=\"1\",le=\"+Inf\"} 1\n"),
            "{out}"
        );
        assert!(out.contains("pit_shard_fanout_us_sum{shard=\"0\"} 3\n"));
        assert!(out.contains("pit_shard_fanout_us_count{shard=\"1\"} 1\n"));
        assert_eq!(type_line_names(&out), vec!["pit_shard_fanout_us"]);
    }

    #[test]
    fn empty_histogram_is_well_formed() {
        let mut out = String::new();
        histogram(&mut out, "pit_e", "Empty.", &[0; 24], 0);
        assert!(out.contains("pit_e_bucket{le=\"+Inf\"} 0\n"));
        assert!(out.contains("pit_e_count 0\n"));
        // 23 bounded buckets + the +Inf line.
        let bucket_lines = out
            .lines()
            .filter(|l| l.starts_with("pit_e_bucket"))
            .count();
        assert_eq!(bucket_lines, 24);
    }
}
