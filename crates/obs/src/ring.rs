//! A fixed-size ring of finished traces.
//!
//! Writers claim a slot with one lock-free `fetch_add` on the cursor, then
//! store the trace under that slot's (uncontended, per-slot) mutex. The
//! ring overwrites oldest-first on wrap, never blocks a writer on another
//! slot, and never allocates after construction beyond the traces it
//! stores. Readers (`TRACE n`) walk backwards from the cursor.

use crate::trace::Trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fixed-capacity overwrite-on-wrap trace buffer.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<Trace>>>,
    /// Total pushes ever; `cursor % capacity` is the next slot to claim.
    cursor: AtomicU64,
}

impl TraceRing {
    /// A ring holding the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// How many traces fit before overwrite.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever captured (including ones since overwritten).
    pub fn captured(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Store `trace`, overwriting the oldest entry when full.
    pub fn push(&self, trace: Trace) {
        let claim = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        // A poisoned slot only means a panicking thread died mid-store; the
        // old value is still a whole Trace, so recover and overwrite it.
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(trace);
    }

    /// The last `n` captured traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Trace> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let take = (n as u64).min(cursor).min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(take as usize);
        for back in 1..=take {
            let idx = ((cursor - back) % self.slots.len() as u64) as usize;
            let guard = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = guard.as_ref() {
                out.push(t.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceId;

    fn trace(id: u64) -> Trace {
        Trace {
            id: TraceId(id),
            generation: 1,
            user: 0,
            k: 1,
            terms: vec![],
            outcome: "ok",
            cached: false,
            slow: false,
            sampled: true,
            total_us: 0,
            expand_rounds: 0,
            probed_tables: 0,
            candidate_topics: 0,
            pruned_topics: 0,
            loaded_reps: 0,
            spans: vec![],
        }
    }

    #[test]
    fn recent_returns_newest_first_and_respects_capacity() {
        let ring = TraceRing::new(4);
        for id in 0..10 {
            ring.push(trace(id));
        }
        assert_eq!(ring.captured(), 10);
        let ids: Vec<u64> = ring.recent(8).iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![9, 8, 7, 6], "only the last capacity survive");
        let two: Vec<u64> = ring.recent(2).iter().map(|t| t.id.0).collect();
        assert_eq!(two, vec![9, 8]);
    }

    #[test]
    fn empty_ring_and_zero_capacity_are_safe() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1, "capacity clamps to 1");
        assert!(ring.recent(5).is_empty());
        ring.push(trace(1));
        assert_eq!(ring.recent(5).len(), 1);
    }

    #[test]
    fn concurrent_pushes_lose_no_claims() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.push(trace(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        assert_eq!(ring.captured(), 800);
        assert_eq!(ring.recent(64).len(), 64, "full ring after wrap");
    }
}
