//! # pit-obs
//!
//! Observability primitives for the serving stack, with zero external
//! dependencies (consistent with the workspace's vendored-only policy):
//!
//! * [`trace`] — per-query span traces: a [`TraceId`] allocator, the
//!   [`Stage`] vocabulary (queue wait, cache probe, gather, expand rounds,
//!   ranking), a live [`SpanRecorder`], and the finished [`Trace`] record
//!   with its human-readable rendering.
//! * [`ring`] — [`TraceRing`], a fixed-size overwrite-on-wrap buffer of
//!   finished traces with a lock-free slot claim, so capture never blocks
//!   the query path on a reader.
//! * [`sample`] — [`Sampler`], the `1/N` trace-sampling knob; the unsampled
//!   path costs one branch plus one relaxed counter increment.
//! * [`prom`] — Prometheus text-exposition rendering for counters, gauges,
//!   and the workspace's power-of-two bucket histograms.
//!
//! This crate holds no clocks-forbidden engine logic and is *allowed* to
//! read wall time (`Instant`): timestamps are captured here and in the
//! server layer, never inside the deterministic engine crates (pit-lint
//! rule L4).

#![forbid(unsafe_code)]

pub mod prom;
pub mod ring;
pub mod sample;
pub mod trace;

pub use ring::TraceRing;
pub use sample::Sampler;
pub use trace::{Span, SpanRecorder, Stage, Trace, TraceId};
