//! Per-query span traces: stage vocabulary, live recording, and the
//! finished trace record.
//!
//! A query's trace is built in two halves. While the query runs, a
//! [`SpanRecorder`] (owned by the server layer, which is the only place
//! allowed to read the clock) turns `begin`/`end` callbacks into [`Span`]s
//! with microsecond offsets from the recorder's epoch. When the query
//! finishes, the collector folds the spans together with the query's
//! identity and work counters into an immutable [`Trace`], which is what
//! the ring buffer stores and the `TRACE` verb renders.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide monotonically increasing trace id.
///
/// Ids are allocated lazily — only for queries that are sampled or land in
/// the slow-query log — so the unsampled fast path never touches this
/// counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// Allocate the next id.
    pub fn next() -> TraceId {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The stages a served query passes through, in lifecycle order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Admission → dequeue by a worker.
    QueueWait,
    /// Result-cache lookup on the connection thread.
    CacheProbe,
    /// Representative-set loading plus the query user's own `Γ(v)` probe
    /// (Algorithm 10 lines 1–16).
    Gather,
    /// One EXPAND round over the marked-node frontier (Algorithm 11); a
    /// query records one span per executed round.
    ExpandRound,
    /// Final sort/truncate of the candidate scores.
    Rank,
}

impl Stage {
    /// Stable lowercase name used in trace renderings and tests.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::CacheProbe => "cache_probe",
            Stage::Gather => "gather",
            Stage::ExpandRound => "expand_round",
            Stage::Rank => "rank",
        }
    }
}

/// One timed stage of one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Which stage this span timed.
    pub stage: Stage,
    /// Offset of the stage start from the query's admission, in µs.
    pub start_us: u64,
    /// Stage duration in µs.
    pub dur_us: u64,
    /// Stage-specific payload: cache hit (1/0) for
    /// [`Stage::CacheProbe`], representative entries loaded for
    /// [`Stage::Gather`], tables probed this round for
    /// [`Stage::ExpandRound`], candidate topics for [`Stage::Rank`].
    pub detail: u64,
}

impl Span {
    fn render_into(&self, out: &mut String) {
        out.push_str(&format!(
            "  {:<12} +{}us {}us",
            self.stage.name(),
            self.start_us,
            self.dur_us
        ));
        match self.stage {
            Stage::QueueWait => {}
            Stage::CacheProbe => {
                out.push_str(if self.detail == 1 { " hit" } else { " miss" });
            }
            Stage::Gather => out.push_str(&format!(" reps={}", self.detail)),
            Stage::ExpandRound => out.push_str(&format!(" tables={}", self.detail)),
            Stage::Rank => out.push_str(&format!(" candidates={}", self.detail)),
        }
    }
}

/// Live span recording for one in-flight query.
///
/// The recorder owns the clock: stage callbacks coming out of the
/// (clock-free) searcher are timestamped here, against the epoch captured
/// at admission. Stages never nest, so an unmatched `begin` is simply
/// superseded by the next one and an unmatched `end` is dropped — a
/// cancelled query yields a truncated but well-formed trace.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    spans: Vec<Span>,
    open: Option<(Stage, Instant)>,
}

impl SpanRecorder {
    /// Start recording with `epoch` as time zero (the query's admission
    /// instant).
    pub fn starting_at(epoch: Instant) -> Self {
        SpanRecorder {
            epoch,
            spans: Vec::new(),
            open: None,
        }
    }

    fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64
    }

    /// Open a stage now.
    pub fn begin(&mut self, stage: Stage) {
        self.open = Some((stage, Instant::now()));
    }

    /// Close the currently open stage if it matches, recording its span.
    pub fn end(&mut self, stage: Stage, detail: u64) {
        if let Some((open_stage, started)) = self.open.take() {
            if open_stage == stage {
                let now = Instant::now();
                self.spans.push(Span {
                    stage,
                    start_us: self.offset_us(started),
                    dur_us: now
                        .saturating_duration_since(started)
                        .as_micros()
                        .min(u64::MAX as u128) as u64,
                    detail,
                });
            } else {
                self.open = Some((open_stage, started));
            }
        }
    }

    /// Record a stage that was measured elsewhere and ended now (e.g. queue
    /// wait, which only the dequeuing worker can measure).
    pub fn event(&mut self, stage: Stage, dur: Duration, detail: u64) {
        let end = self.offset_us(Instant::now());
        let dur_us = dur.as_micros().min(u64::MAX as u128) as u64;
        self.spans.push(Span {
            stage,
            start_us: end.saturating_sub(dur_us),
            dur_us,
            detail,
        });
    }

    /// Finish recording and hand back the spans, in the order they closed.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

/// One finished query trace, as stored in the ring and rendered by `TRACE`.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Unique id, hex-rendered.
    pub id: TraceId,
    /// Engine generation the query ran against.
    pub generation: u64,
    /// Querying user's node id.
    pub user: u32,
    /// Requested result size.
    pub k: usize,
    /// Normalized query term ids (sorted, deduped — the cache-key view).
    pub terms: Vec<u32>,
    /// How the query ended: `ok`, `timeout`, `overloaded`, `malformed`,
    /// `internal`, or `shutting-down`.
    pub outcome: &'static str,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Whether total service time exceeded the slow-query threshold.
    pub slow: bool,
    /// True for sampled captures (full spans); false for slow-query
    /// summaries captured outside the sample (counters only, no spans).
    pub sampled: bool,
    /// End-to-end service time in µs.
    pub total_us: u64,
    /// EXPAND rounds executed.
    pub expand_rounds: u64,
    /// Propagation tables probed.
    pub probed_tables: u64,
    /// Query-related topics considered.
    pub candidate_topics: u64,
    /// Topics eliminated by the upper-bound rule.
    pub pruned_topics: u64,
    /// Representative entries loaded at query start.
    pub loaded_reps: u64,
    /// Timed stages, when sampled.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Render as structured text: one header line, one indented line per
    /// span. The `key=value` header tokens are stable — tests and operators
    /// grep them.
    pub fn render(&self) -> String {
        let terms = self
            .terms
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut out = format!(
            "trace {} user={} k={} terms=[{terms}] gen={} outcome={} cached={} slow={} \
             sampled={} total_us={} rounds={} tables={} candidates={} pruned={} reps={}",
            self.id,
            self.user,
            self.k,
            self.generation,
            self.outcome,
            yn(self.cached),
            yn(self.slow),
            yn(self.sampled),
            self.total_us,
            self.expand_rounds,
            self.probed_tables,
            self.candidate_topics,
            self.pruned_topics,
            self.loaded_reps,
        );
        for span in &self.spans {
            out.push('\n');
            span.render_into(&mut out);
        }
        out
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert!(b.0 > a.0);
        assert_eq!(format!("{}", TraceId(0x2a)), "000000000000002a");
    }

    #[test]
    fn recorder_matches_begin_end_pairs() {
        let mut rec = SpanRecorder::starting_at(Instant::now());
        rec.begin(Stage::Gather);
        rec.end(Stage::Gather, 12);
        rec.begin(Stage::ExpandRound);
        rec.end(Stage::ExpandRound, 3);
        let spans = rec.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Gather);
        assert_eq!(spans[0].detail, 12);
        assert_eq!(spans[1].stage, Stage::ExpandRound);
        assert_eq!(spans[1].detail, 3);
        assert!(spans[1].start_us >= spans[0].start_us);
    }

    #[test]
    fn unmatched_end_is_dropped_and_mismatched_open_survives() {
        let mut rec = SpanRecorder::starting_at(Instant::now());
        rec.end(Stage::Rank, 1); // nothing open: dropped
        rec.begin(Stage::Gather);
        rec.end(Stage::Rank, 1); // wrong stage: Gather stays open
        rec.end(Stage::Gather, 7);
        let spans = rec.into_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Gather);
        assert_eq!(spans[0].detail, 7);
    }

    #[test]
    fn event_backdates_its_start() {
        let epoch = Instant::now();
        let mut rec = SpanRecorder::starting_at(epoch);
        rec.event(Stage::QueueWait, Duration::from_micros(500), 0);
        let spans = rec.into_spans();
        assert_eq!(spans[0].stage, Stage::QueueWait);
        assert_eq!(spans[0].dur_us, 500);
    }

    #[test]
    fn render_carries_grep_stable_tokens() {
        let t = Trace {
            id: TraceId(1),
            generation: 2,
            user: 7,
            k: 5,
            terms: vec![0, 3],
            outcome: "ok",
            cached: false,
            slow: true,
            sampled: true,
            total_us: 1234,
            expand_rounds: 2,
            probed_tables: 9,
            candidate_topics: 4,
            pruned_topics: 1,
            loaded_reps: 12,
            spans: vec![
                Span {
                    stage: Stage::CacheProbe,
                    start_us: 1,
                    dur_us: 2,
                    detail: 0,
                },
                Span {
                    stage: Stage::ExpandRound,
                    start_us: 10,
                    dur_us: 100,
                    detail: 9,
                },
            ],
        };
        let text = t.render();
        for token in [
            "user=7",
            "k=5",
            "terms=[0,3]",
            "gen=2",
            "outcome=ok",
            "slow=yes",
            "total_us=1234",
            "rounds=2",
            "tables=9",
            "cache_probe",
            "miss",
            "expand_round",
            "tables=9",
        ] {
            assert!(text.contains(token), "missing {token} in:\n{text}");
        }
    }
}
