//! Live-reload integration tests against the real `pit` binary: a daemon
//! under concurrent query load is told to `RELOAD` onto a second engine
//! snapshot (with an injected slow swap), and must keep answering on the
//! old generation until the instant of the swap, flip exactly once, and
//! never serve a post-swap response from the pre-swap cache. Failed
//! reloads must leave the prior generation serving.

use pit::{store, PitEngine, SummarizerKind};
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pit-reload-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Build a small engine from `seed` and persist it where `pit serve` /
/// `RELOAD` can load it. Different seeds give different graphs (and thus
/// different rankings) over the same stable vocabulary.
fn build_engine(dir: &Path, seed: u64) -> PitEngine {
    let spec = pit_datasets::DatasetSpec {
        name: format!("reload-it-{seed}"),
        nodes: 400,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(400, seed),
        seed,
    };
    let ds = pit_datasets::generate(&spec);
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(3, 8).with_seed(4))
        .propagation(pit_index::PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            rep_count: Some(8),
            ..pit_summarize::LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));
    store::save_engine(dir, &engine).expect("save engine");
    engine
}

/// Spawn `pit serve` on an ephemeral port and return (child, bound address).
fn spawn_server(engine_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pit"));
    cmd.args(["serve", "--engine"])
        .arg(engine_dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn pit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> TcpStream {
    let c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn query(user: u32, k: usize, kw: &str) -> Request {
    Request::Query {
        user,
        k,
        keywords: vec![kw.to_string()],
    }
}

fn offline_ranking(engine: &PitEngine, user: u32, k: usize) -> Vec<(u32, f64)> {
    engine
        .search_keywords(pit_graph::NodeId(user), &["query-0"], k)
        .expect("offline search")
        .top_k
        .iter()
        .map(|s| (s.topic.0, s.score))
        .collect()
}

fn get_stat(pairs: &[(String, String)], name: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing stat {name}"))
        .1
        .parse()
        .unwrap_or_else(|_| panic!("stat {name} not numeric"))
}

/// One observed query reply from a hammer thread.
struct Observation {
    sent: Instant,
    received: Instant,
    new_generation: bool,
}

const PROBE_USER: u32 = 7;
const K: usize = 5;
const RELOAD_DRAG: Duration = Duration::from_millis(1500);

#[test]
fn reload_under_concurrent_load_flips_exactly_at_the_swap() {
    let dir_a = scratch_dir("live-a");
    let dir_b = scratch_dir("live-b");
    let engine_a = build_engine(&dir_a, 17);
    let engine_b = build_engine(&dir_b, 23);
    let old_ranking = offline_ranking(&engine_a, PROBE_USER, K);
    let new_ranking = offline_ranking(&engine_b, PROBE_USER, K);
    assert_ne!(old_ranking, new_ranking, "fixture engines must disagree");

    // The swap is artificially stretched by RELOAD_DRAG so there is a wide
    // window in which queries *must* keep being answered from the old
    // generation while the reload is in flight.
    let (mut child, addr) = spawn_server(
        &dir_a,
        &[
            "--workers",
            "4",
            "--cache",
            "64",
            "--reload-drag-ms",
            "1500",
        ],
    );

    // Hammer threads: keep querying the probe user (plus a per-thread user
    // to vary the load) until told to stop, recording what each reply was
    // and when. Any ERR, block, or ranking that matches neither engine is
    // an immediate failure.
    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for t in 0..4u32 {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let old_ranking = old_ranking.clone();
        let new_ranking = new_ranking.clone();
        hammers.push(std::thread::spawn(move || {
            let mut c = connect(&addr);
            let mut seen = Vec::<Observation>::new();
            let mut iteration = 0u32;
            while !stop.load(Ordering::Acquire) {
                let user = if iteration.is_multiple_of(2) {
                    PROBE_USER
                } else {
                    50 + t
                };
                iteration += 1;
                let sent = Instant::now();
                match ask(&mut c, &query(user, K, "query-0")) {
                    Response::Topics { ranked, .. } => {
                        if user == PROBE_USER {
                            let new_generation = ranked == new_ranking;
                            assert!(
                                new_generation || ranked == old_ranking,
                                "thread {t}: ranking matches neither generation"
                            );
                            seen.push(Observation {
                                sent,
                                received: Instant::now(),
                                new_generation,
                            });
                        }
                    }
                    other => panic!("thread {t}: query failed during reload: {other:?}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            seen
        }));
    }

    // Warm up, then issue the slow RELOAD on a dedicated connection. It must
    // block this client for at least the injected drag while the hammers
    // keep being served.
    let mut admin = connect(&addr);
    std::thread::sleep(Duration::from_millis(300));
    let issued = Instant::now();
    let reload = Request::Reload {
        dir: dir_b.display().to_string(),
    };
    assert_eq!(ask(&mut admin, &reload), Response::Generation(2));
    let swapped = Instant::now();
    assert!(
        swapped - issued >= RELOAD_DRAG,
        "RELOAD returned before the injected drag elapsed"
    );

    // Keep hammering briefly past the swap, then stop and collect.
    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Release);
    let mut all = Vec::new();
    for h in hammers {
        let seen = h.join().expect("hammer thread");
        // Per-connection requests are sequential, so each thread's admission
        // order is its send order: the generation it observes must flip at
        // most once, old → new, never back.
        let mut flipped = false;
        for obs in &seen {
            if obs.new_generation {
                flipped = true;
            } else {
                assert!(!flipped, "ranking flipped back to the old generation");
            }
        }
        all.extend(seen);
    }

    // Queries never stalled on the in-flight reload: replies landed inside
    // the drag window, and answered fast.
    let during = all
        .iter()
        .filter(|o| o.received > issued && o.received < swapped)
        .count();
    assert!(
        during >= 10,
        "only {during} probe replies during a {RELOAD_DRAG:?} reload window — queries blocked"
    );
    // Everything completed before the RELOAD was even issued is old…
    for obs in all.iter().filter(|o| o.received < issued) {
        assert!(
            !obs.new_generation,
            "new-generation ranking served before RELOAD was issued"
        );
    }
    // …and everything sent after the swap completed is new. A pre-swap
    // cache entry answering any of these would resurrect the old ranking —
    // exactly the staleness bug — and the probe query is cache-hot by
    // construction.
    let post_swap: Vec<_> = all.iter().filter(|o| o.sent > swapped).collect();
    assert!(!post_swap.is_empty(), "no observations after the swap");
    for obs in &post_swap {
        assert!(
            obs.new_generation,
            "old-generation ranking served after the swap (stale cache?)"
        );
    }

    let Response::Stats(pairs) = ask(&mut admin, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(get_stat(&pairs, "generation"), 2);
    assert_eq!(get_stat(&pairs, "reloads"), 1);
    assert_eq!(get_stat(&pairs, "reload_failures"), 0);
    assert!(
        get_stat(&pairs, "reload_p50_us") >= RELOAD_DRAG.as_micros() as u64,
        "reload latency histogram must include the dragged swap"
    );
    assert!(
        get_stat(&pairs, "cache_stale_evictions") >= 1,
        "the cache-hot probe entry must have been lazily evicted"
    );

    assert_eq!(ask(&mut admin, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn failed_reload_leaves_the_prior_generation_serving() {
    let dir_a = scratch_dir("fail-a");
    let dir_b = scratch_dir("fail-b");
    let engine_a = build_engine(&dir_a, 17);
    build_engine(&dir_b, 23);
    let old_ranking = offline_ranking(&engine_a, PROBE_USER, K);

    let (mut child, addr) = spawn_server(&dir_a, &["--workers", "2", "--cache", "16"]);
    let mut c = connect(&addr);

    // A missing snapshot directory.
    let missing = Request::Reload {
        dir: "/no/such/snapshot-dir".to_string(),
    };
    let Response::Err(reason) = ask(&mut c, &missing) else {
        panic!("reload of a missing snapshot must fail");
    };
    assert!(reason.starts_with("reload-failed"), "got: {reason}");

    // A torn snapshot: directory exists, artifacts are garbage.
    let torn = scratch_dir("fail-torn");
    std::fs::write(torn.join("graph.pitg"), b"not a snapshot").unwrap();
    let corrupt = Request::Reload {
        dir: torn.display().to_string(),
    };
    let Response::Err(reason) = ask(&mut c, &corrupt) else {
        panic!("reload of a torn snapshot must fail");
    };
    assert!(reason.starts_with("reload-failed"), "got: {reason}");

    // Still generation 1, still answering the old rankings.
    let Response::Topics { ranked, .. } = ask(&mut c, &query(PROBE_USER, K, "query-0")) else {
        panic!("daemon stopped serving after failed reloads");
    };
    assert_eq!(ranked, old_ranking);
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(get_stat(&pairs, "generation"), 1);
    assert_eq!(get_stat(&pairs, "reloads"), 0);
    assert_eq!(get_stat(&pairs, "reload_failures"), 2);

    // The daemon is not wedged: a good snapshot still swaps in.
    let good = Request::Reload {
        dir: dir_b.display().to_string(),
    };
    assert_eq!(ask(&mut c, &good), Response::Generation(2));

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_dir_all(&torn);
}

/// Run the `pit` binary with `args` and return (success, stdout, stderr).
fn run_pit(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pit"))
        .args(args)
        .output()
        .expect("run pit");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_reload_and_update_subcommands_drive_a_live_daemon() {
    let dir_a = scratch_dir("cli-a");
    let dir_b = scratch_dir("cli-b");
    build_engine(&dir_a, 17);
    let engine_b = build_engine(&dir_b, 23);

    let (mut child, addr) = spawn_server(&dir_a, &["--workers", "2"]);

    // `pit reload` swaps the daemon onto snapshot B.
    let (ok, stdout, stderr) = run_pit(&[
        "reload",
        "--addr",
        &addr,
        "--dir",
        &dir_b.display().to_string(),
    ]);
    assert!(ok, "pit reload failed: {stderr}");
    assert!(stdout.contains("generation 2"), "stdout: {stdout}");

    // `pit update` pushes an edge delta (an edge B does not already have).
    let u = pit_graph::NodeId(PROBE_USER);
    let v = (0..engine_b.graph().node_count() as u32)
        .map(pit_graph::NodeId)
        .find(|&v| v != u && !engine_b.graph().has_edge(u, v))
        .expect("fixture graph is not complete");
    let edge = format!("{}:{}:0.6", u.0, v.0);
    let (ok, stdout, stderr) = run_pit(&["update", "--addr", &addr, "--edges", &edge]);
    assert!(ok, "pit update failed: {stderr}");
    assert!(stdout.contains("generation 3"), "stdout: {stdout}");

    // Served rankings now match an offline apply of the same delta to B —
    // to B *as loaded from disk*: `load_engine` restores the summarizer
    // kind with default parameters (the sets already embody the originals),
    // and the daemon's delta apply re-summarizes under that config.
    let delta = pit::Delta {
        new_edges: vec![(u, v, 0.6)],
        new_assignments: vec![],
    };
    let loaded_b = store::load_engine(&dir_b).expect("load snapshot B");
    let (expected_engine, _) = loaded_b.with_delta(&delta).expect("offline apply");
    let expected = offline_ranking(&expected_engine, PROBE_USER, K);
    let mut c = connect(&addr);
    let Response::Topics { ranked, .. } = ask(&mut c, &query(PROBE_USER, K, "query-0")) else {
        panic!("expected topics");
    };
    assert_eq!(ranked, expected, "served delta diverged from offline apply");

    // A bad delta surfaces the reload-failed class through the CLI.
    let (ok, _, stderr) = run_pit(&["update", "--addr", &addr, "--assign", "1:999999"]);
    assert!(!ok, "update with an unknown topic must fail");
    assert!(stderr.contains("reload-failed"), "stderr: {stderr}");

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
