//! In-process integration tests for the `pit` subcommands: the full
//! generate → build → stats/query/audience lifecycle against real temp
//! directories, plus the error paths a user actually hits.

use pit_cli::args::{parse, Parsed};
use pit_cli::commands;
use std::path::PathBuf;

fn argv(s: &str) -> Parsed {
    let v: Vec<String> = s.split_whitespace().map(str::to_string).collect();
    parse(&v).expect("test argv parses")
}

struct TempDirs {
    corpus: PathBuf,
    engine: PathBuf,
}

impl TempDirs {
    fn new(tag: &str) -> Self {
        let base = std::env::temp_dir().join(format!("pit-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        TempDirs {
            corpus: base.join("corpus"),
            engine: base.join("engine"),
        }
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        if let Some(base) = self.corpus.parent() {
            let _ = std::fs::remove_dir_all(base);
        }
    }
}

/// One shared lifecycle: generate a small corpus, build an engine, then run
/// every read command against it. Serialized in a single test to build the
/// corpus once.
#[test]
fn full_lifecycle() {
    let dirs = TempDirs::new("lifecycle");
    let corpus = dirs.corpus.display().to_string();
    let engine = dirs.engine.display().to_string();

    // generate: use the heavy scale so data_350k shrinks to 1000 nodes.
    commands::generate(&argv(&format!(
        "generate --dataset data_350k --scale 1000 --out {corpus}"
    )))
    .expect("generate succeeds");
    for f in ["graph.pitg", "topics.pitt", "vocab.pitv"] {
        assert!(dirs.corpus.join(f).exists(), "missing corpus file {f}");
    }

    // build (LRW default).
    commands::build(&argv(&format!(
        "build --corpus {corpus} --out {engine} --reps 8 --walk-r 8 --walk-l 3"
    )))
    .expect("build succeeds");
    assert!(
        dirs.engine.join("engine.pitf").exists(),
        "missing flat engine snapshot"
    );

    // stats, query, audience all succeed against the built engine.
    commands::stats(&argv(&format!("stats --engine {engine}"))).expect("stats succeeds");
    commands::query(&argv(&format!(
        "query --engine {engine} --user 3 --keywords query-0 --k 5"
    )))
    .expect("query succeeds");
    commands::audience(&argv(&format!(
        "audience --engine {engine} --topic 0 --keyword query-0 --k 3 --sample 20"
    )))
    .expect("audience succeeds");

    // Error paths against the same engine.
    let err = commands::query(&argv(&format!(
        "query --engine {engine} --user 999999 --keywords query-0"
    )))
    .unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    let err = commands::query(&argv(&format!(
        "query --engine {engine} --user 3 --keywords nope"
    )))
    .unwrap_err();
    assert!(err.contains("unknown keyword"), "{err}");

    let err = commands::audience(&argv(&format!(
        "audience --engine {engine} --topic 999999 --keyword query-0"
    )))
    .unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    // RCL build variant over the same corpus.
    let engine2 = dirs.engine.with_extension("rcl");
    commands::build(&argv(&format!(
        "build --corpus {corpus} --out {} --summarizer rcl --reps 8 --walk-r 8 --walk-l 3",
        engine2.display()
    )))
    .expect("rcl build succeeds");
    commands::query(&argv(&format!(
        "query --engine {} --user 3 --keywords query-0 --k 5",
        engine2.display()
    )))
    .expect("query against rcl engine succeeds");
    let _ = std::fs::remove_dir_all(engine2);
}

#[test]
fn generate_rejects_unknown_dataset() {
    let dirs = TempDirs::new("baddataset");
    let err = commands::generate(&argv(&format!(
        "generate --dataset data_nope --out {}",
        dirs.corpus.display()
    )))
    .unwrap_err();
    assert!(err.contains("unknown dataset"), "{err}");
    assert!(err.contains("data_2k"), "should list available: {err}");
}

#[test]
fn build_rejects_unknown_summarizer_and_missing_corpus() {
    let dirs = TempDirs::new("badbuild");
    let err = commands::build(&argv(&format!(
        "build --corpus /nonexistent --out {} --summarizer magic",
        dirs.engine.display()
    )))
    .unwrap_err();
    assert!(err.contains("unknown summarizer"), "{err}");

    let err = commands::build(&argv(&format!(
        "build --corpus /nonexistent --out {}",
        dirs.engine.display()
    )))
    .unwrap_err();
    assert!(
        err.contains("No such file") || err.contains("os error"),
        "{err}"
    );
}

#[test]
fn read_commands_reject_missing_engine() {
    for cmd in [
        "stats --engine /nonexistent-engine",
        "query --engine /nonexistent-engine --user 0 --keywords x",
        "audience --engine /nonexistent-engine --topic 0 --keyword x",
    ] {
        let p = argv(cmd);
        let err = match p.command.as_str() {
            "stats" => commands::stats(&p).unwrap_err(),
            "query" => commands::query(&p).unwrap_err(),
            _ => commands::audience(&p).unwrap_err(),
        };
        assert!(
            err.contains("No such file")
                || err.contains("os error")
                || err.contains("no engine.pitf"),
            "{cmd}: {err}"
        );
    }
}
