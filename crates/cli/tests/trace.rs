//! End-to-end observability test against the real binary: spawn `pit serve`
//! with tracing on and a fault-injected slow user, run queries, and verify
//! the slow one is findable — in the `TRACE` slow-query log with nonzero
//! expand-round and probed-table spans, and in the `METRICS` exposition's
//! slow-query counter. Also drives the `pit trace` and
//! `pit client --op metrics` subcommands the way an operator would.

use pit::{store, PitEngine, SummarizerKind};
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pit-trace-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn build_engine(dir: &Path) {
    let spec = pit_datasets::DatasetSpec {
        name: "trace-it".to_string(),
        nodes: 400,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(400, 17),
        seed: 17,
    };
    let ds = pit_datasets::generate(&spec);
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(3, 8).with_seed(4))
        .propagation(pit_index::PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            rep_count: Some(8),
            ..pit_summarize::LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));
    store::save_engine(dir, &engine).expect("save engine");
}

fn spawn_server(engine_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pit"));
    cmd.args(["serve", "--engine"])
        .arg(engine_dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn pit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

/// Run a `pit` subcommand against the daemon and return its stdout.
fn pit_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pit"))
        .args(args)
        .output()
        .expect("run pit subcommand");
    assert!(
        out.status.success(),
        "pit {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// The trace lines describing slow queries: everything between `[slow]`
/// and `[sampled]` in a TRACE dump.
fn slow_section(dump: &str) -> Vec<&str> {
    dump.lines()
        .skip_while(|l| !l.starts_with("[slow]"))
        .take_while(|l| !l.starts_with("[sampled]"))
        .collect()
}

/// `key=value` fields from a rendered trace header line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}= in {line:?}"))
}

#[test]
fn slow_query_is_findable_in_trace_and_metrics() {
    let dir = scratch_dir("slow");
    build_engine(&dir);
    // User 7 drags 2ms at every cancellation check (every table probe), so
    // its query takes tens of ms against a 5ms slow threshold; sampling
    // every query keeps the sampled ring busy too.
    let (mut child, addr) = spawn_server(
        &dir,
        &[
            "--workers",
            "2",
            "--trace-sample",
            "1",
            "--slow-ms",
            "5",
            "--drag-user",
            "7",
            "--drag-us",
            "2000",
            "--cancel-every",
            "1",
        ],
    );
    let mut c = TcpStream::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // A fast control query, then the dragged one.
    let fast = Request::Query {
        user: 3,
        k: 5,
        keywords: vec!["query-0".to_string()],
    };
    let slow = Request::Query {
        user: 7,
        k: 5,
        keywords: vec!["query-0".to_string()],
    };
    assert!(matches!(ask(&mut c, &fast), Response::Topics { .. }));
    let Response::Topics { micros, .. } = ask(&mut c, &slow) else {
        panic!("expected topics for the dragged user");
    };
    assert!(
        micros >= 5_000,
        "dragged query finished in {micros}us — fault injection not biting"
    );

    // TRACE over the wire: the dragged query must sit in the slow-query
    // log with real work recorded — a nonzero round/table summary and at
    // least one expand_round span naming the tables it probed.
    let Response::Traces(dump) = ask(&mut c, &Request::Trace { n: 16 }) else {
        panic!("expected TRACES reply");
    };
    let slow_lines = slow_section(&dump);
    let header = slow_lines
        .iter()
        .find(|l| l.contains("user=7") && l.contains("slow=yes"))
        .unwrap_or_else(|| panic!("dragged user missing from slow log:\n{dump}"));
    assert!(
        header.contains("outcome=ok"),
        "dragged query should finish: {header}"
    );
    assert!(
        field(header, "rounds") >= 1,
        "no expand rounds recorded: {header}"
    );
    assert!(
        field(header, "tables") >= 1,
        "no probed tables recorded: {header}"
    );
    let expand_spans: Vec<&&str> = slow_lines
        .iter()
        .filter(|l| l.trim_start().starts_with("expand_round"))
        .collect();
    assert!(
        !expand_spans.is_empty(),
        "no expand_round spans in slow log:\n{dump}"
    );
    assert!(
        expand_spans.iter().any(|l| field(l, "tables") >= 1),
        "expand_round spans recorded no probed tables:\n{dump}"
    );

    // The fast control query is in the sampled ring (sample_every=1) but
    // must not pollute the slow log.
    assert!(
        !slow_lines.iter().any(|l| l.contains("user=3")),
        "fast query leaked into the slow log:\n{dump}"
    );
    assert!(
        dump.contains("user=3"),
        "sampled ring missed the fast query:\n{dump}"
    );

    // METRICS over the wire: the slow-query counter and the work
    // histograms saw it.
    let Response::Metrics(body) = ask(&mut c, &Request::Metrics) else {
        panic!("expected METRICS reply");
    };
    let counter = |name: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no {name} in METRICS"))
            .parse()
            .expect("counter value")
    };
    assert!(counter("pit_slow_queries_total") >= 1);
    assert_eq!(counter("pit_traces_sampled_total"), 2);
    assert!(counter("pit_probed_tables_count") >= 2);
    assert!(body.contains("# TYPE pit_latency_us histogram"));

    // Operator-facing subcommands against the same daemon.
    let cli_dump = pit_stdout(&["trace", "--addr", &addr, "--n", "8"]);
    assert!(
        cli_dump.contains("user=7") && cli_dump.contains("slow=yes"),
        "pit trace did not show the slow query:\n{cli_dump}"
    );
    let cli_metrics = pit_stdout(&["client", "--addr", &addr, "--op", "metrics"]);
    assert!(
        cli_metrics.contains("# TYPE pit_slow_queries_total counter"),
        "pit client --op metrics is not a Prometheus exposition:\n{cli_metrics}"
    );

    ask(&mut c, &Request::Shutdown);
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited uncleanly: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
