//! End-to-end router drill against the real `pit` binary: split a snapshot
//! with `pit shard-split`, spawn one `pit serve` backend per shard, front
//! them with `pit route`, and verify — over the wire — that the fleet
//! answers bit-identically to the offline path, that a killed backend
//! degrades to an honest `partial` reply instead of a hang, and that a
//! dragged backend is cut off by the router's budget and reported
//! `partial=<shard>:timeout` within the deadline.

use pit::{store, PitEngine, SummarizerKind};
use pit_graph::NodeId;
use pit_router::{LocalTransport, ShardError, ShardTransport, ShardedEngine};
use pit_search_core::{CancelToken, NoTracer, SearchScratch};
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use pit_server::{LocalServeEngine, ServeEngine};
use pit_topics::KeywordQuery;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

const SHARDS: u32 = 2;
const KEYWORD: &str = "query-0";
const K: usize = 5;

/// Everything both drills share: the split snapshot on disk, the offline
/// engine, and a query proven (in-process) to probe both shards — with the
/// non-home shard failing to an honest partial, not a seed-round error.
struct Fixture {
    shards_dir: PathBuf,
    engine: Arc<PitEngine>,
    user: u32,
    dead: u32,
    /// A node owned by the dead shard that the query's expansion probes —
    /// the target for `--drag-user` fault injection on that backend.
    dead_probe: u32,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(build_fixture)
}

fn build_fixture() -> Fixture {
    let root = std::env::temp_dir().join(format!("pit-router-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let src = root.join("full");
    std::fs::create_dir_all(&src).expect("create scratch dir");

    let spec = pit_datasets::DatasetSpec {
        name: "router-drill".to_string(),
        nodes: 400,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(400, 17),
        seed: 17,
    };
    let ds = pit_datasets::generate(&spec);
    let engine = Arc::new(
        PitEngine::builder()
            .walk(pit_walk::WalkConfig::new(3, 8).with_seed(4))
            .propagation(pit_index::PropIndexConfig::with_theta(0.02))
            .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
                rep_count: Some(8),
                ..pit_summarize::LrwConfig::default()
            }))
            .build_with_vocab(ds.graph, ds.space, Some(ds.vocab)),
    );
    store::save_engine(&src, &engine).expect("save engine");

    // Slice with the real binary — the drill exercises `pit shard-split`
    // exactly as an operator would run it.
    let shards_dir = root.join("shards");
    let out = Command::new(env!("CARGO_BIN_EXE_pit"))
        .args(["shard-split", "--dir"])
        .arg(&src)
        .arg("--out")
        .arg(&shards_dir)
        .args(["--shards", &SHARDS.to_string()])
        .output()
        .expect("run pit shard-split");
    assert!(
        out.status.success(),
        "shard-split failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("wrote and verified 2 shards"),
        "unexpected shard-split output: {stdout}"
    );

    let (user, dead, dead_probe) = find_cross_shard_query(&engine);
    Fixture {
        shards_dir,
        engine,
        user,
        dead,
        dead_probe,
    }
}

/// Records every probe node a shard is asked to expand, delegating to a
/// real in-process transport.
struct Recording {
    inner: LocalTransport,
    probes: Mutex<Vec<u32>>,
}

impl ShardTransport for Recording {
    fn location(&self) -> String {
        self.inner.location()
    }
    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        self.inner.shard_info()
    }
    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        deadline: Option<Instant>,
    ) -> Result<(Vec<pit_server::protocol::ProbeTable>, f64), ShardError> {
        self.probes
            .lock()
            .expect("probe log")
            .extend(probes.iter().map(|&(u, _)| u));
        self.inner.expand(gen, terms, probes, deadline)
    }
    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError> {
        self.inner.prepare_dir(dir)
    }
    fn prepare_update(&self, delta: &pit::Delta) -> Result<(), ShardError> {
        self.inner.prepare_update(delta)
    }
    fn commit(&self) -> Result<u64, ShardError> {
        self.inner.commit()
    }
    fn abort(&self) -> Result<u64, ShardError> {
        self.inner.abort()
    }
}

/// A healthy shard that fails every expansion — the in-process stand-in for
/// the backend we will kill or drag on the wire.
struct Failing {
    inner: LocalTransport,
}

impl ShardTransport for Failing {
    fn location(&self) -> String {
        self.inner.location()
    }
    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        self.inner.shard_info()
    }
    fn expand(
        &self,
        _gen: u64,
        _terms: &[u32],
        _probes: &[(u32, f64)],
        _deadline: Option<Instant>,
    ) -> Result<(Vec<pit_server::protocol::ProbeTable>, f64), ShardError> {
        Err(ShardError::Timeout)
    }
    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError> {
        self.inner.prepare_dir(dir)
    }
    fn prepare_update(&self, delta: &pit::Delta) -> Result<(), ShardError> {
        self.inner.prepare_update(delta)
    }
    fn commit(&self) -> Result<u64, ShardError> {
        self.inner.commit()
    }
    fn abort(&self) -> Result<u64, ShardError> {
        self.inner.abort()
    }
}

fn local_shard(engine: &Arc<PitEngine>, index: u32) -> LocalTransport {
    let spec = pit::ShardSpec::new(index, SHARDS);
    let slice = pit::shard::slice_engine(engine, spec);
    LocalTransport::new(Arc::new(LocalServeEngine::sharded(Arc::new(slice), spec)))
}

fn drill_query(engine: &Arc<PitEngine>, user: u32) -> KeywordQuery {
    let single = LocalServeEngine::full(Arc::clone(engine));
    let terms = single
        .resolve_terms(&[KEYWORD.to_string()])
        .expect("fixture keyword resolves");
    KeywordQuery::new(NodeId(user), terms)
}

/// Scan for a query whose expansion probes both shards AND degrades to an
/// honest partial (not a seed-round failure) when the non-home shard dies.
/// Returns `(user, dead_shard, dead_probe)`.
fn find_cross_shard_query(engine: &Arc<PitEngine>) -> (u32, u32, u32) {
    let recorders: Vec<Arc<Recording>> = (0..SHARDS)
        .map(|i| {
            Arc::new(Recording {
                inner: local_shard(engine, i),
                probes: Mutex::new(Vec::new()),
            })
        })
        .collect();
    let transports: Vec<Arc<dyn ShardTransport>> = recorders
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ShardTransport>)
        .collect();
    let router =
        ShardedEngine::assemble(Arc::clone(engine), transports).expect("assemble recorder fleet");

    for user in 0..400u32 {
        for r in &recorders {
            r.probes.lock().expect("probe log").clear();
        }
        let q = drill_query(engine, user);
        let out = router
            .try_search(
                &q,
                K,
                &CancelToken::none(),
                &mut NoTracer,
                &mut SearchScratch::new(),
            )
            .expect("healthy scan query");
        if out.fanout_micros.len() != SHARDS as usize {
            continue;
        }
        let dead = 1 - user % SHARDS;
        let dead_probe = {
            let log = recorders[dead as usize].probes.lock().expect("probe log");
            match log.first() {
                Some(&u) => u,
                None => continue,
            }
        };

        // Prove the premise in-process before trusting it on the wire: with
        // the non-home shard failing, this query must yield a partial, not
        // a seed-round error.
        let home = user % SHARDS;
        let mixed: Vec<Arc<dyn ShardTransport>> = (0..SHARDS)
            .map(|i| {
                if i == dead {
                    Arc::new(Failing {
                        inner: local_shard(engine, i),
                    }) as Arc<dyn ShardTransport>
                } else {
                    Arc::new(local_shard(engine, i)) as Arc<dyn ShardTransport>
                }
            })
            .collect();
        let degraded = ShardedEngine::assemble(Arc::clone(engine), mixed)
            .expect("assemble degraded fleet")
            .try_search(
                &q,
                K,
                &CancelToken::none(),
                &mut NoTracer,
                &mut SearchScratch::new(),
            );
        match degraded {
            Ok(out) if out.partial == vec![(dead, "timeout".to_string())] => {
                assert_ne!(home, dead);
                return (user, dead, dead_probe);
            }
            _ => continue,
        }
    }
    panic!("fixture produced no query that degrades to a partial; regenerate it");
}

/// Spawn a `pit` daemon subcommand on an ephemeral port; return the child
/// and the bound address parsed from the banner line.
fn spawn_daemon(args: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pit"));
    cmd.args(args)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn pit daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon printed a banner")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn spawn_backend(fx: &Fixture, index: u32, extra: &[&str]) -> (Child, String) {
    let dir = fx.shards_dir.join(format!("shard-{index}"));
    let dir = dir.to_str().expect("utf-8 scratch path").to_string();
    let mut args = vec!["serve", "--engine", dir.as_str()];
    args.extend_from_slice(extra);
    spawn_daemon(&args)
}

fn spawn_router(fx: &Fixture, backends: &[String], extra: &[&str]) -> (Child, String) {
    let meta = fx.shards_dir.join("shard-0");
    let meta = meta.to_str().expect("utf-8 scratch path").to_string();
    let list = backends.join(",");
    let mut args = vec![
        "route",
        "--engine",
        meta.as_str(),
        "--shards",
        list.as_str(),
        "--cache",
        "0",
    ];
    args.extend_from_slice(extra);
    spawn_daemon(&args)
}

fn connect(addr: &str) -> TcpStream {
    let c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn wire_query(user: u32) -> Request {
    Request::Query {
        user,
        k: K,
        keywords: vec![KEYWORD.to_string()],
    }
}

fn shutdown(child: &mut Child, addr: &str) {
    let mut c = connect(addr);
    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("daemon exit").success());
}

#[test]
fn killed_backend_degrades_to_an_honest_partial_on_the_wire() {
    let fx = fixture();
    let mut backends: Vec<(Child, String)> = (0..SHARDS)
        .map(|i| spawn_backend(fx, i, &["--workers", "2"]))
        .collect();
    let addrs: Vec<String> = backends.iter().map(|(_, a)| a.clone()).collect();

    // A shard slice must refuse a direct QUERY — it cannot answer honestly
    // once expansion crosses shard boundaries.
    {
        let mut b = connect(&addrs[0]);
        let Response::Err(reason) = ask(&mut b, &wire_query(fx.user)) else {
            panic!("shard backend answered a direct QUERY");
        };
        assert!(reason.contains("shard"), "got: {reason}");
    }

    let (mut router, router_addr) = spawn_router(
        fx,
        &addrs,
        &["--io-timeout-ms", "2000", "--budget-ms", "5000"],
    );

    // Healthy fleet: the wire answer matches the offline path bit for bit.
    let offline: Vec<(u32, f64)> = fx
        .engine
        .search_keywords(NodeId(fx.user), &[KEYWORD], K)
        .expect("offline search")
        .top_k
        .iter()
        .map(|s| (s.topic.0, s.score))
        .collect();
    let mut c = connect(&router_addr);
    let Response::Topics {
        ranked, partial, ..
    } = ask(&mut c, &wire_query(fx.user))
    else {
        panic!("expected topics from the router");
    };
    assert!(partial.is_empty(), "healthy fleet answered {partial:?}");
    assert_eq!(ranked, offline, "routed ranking diverged from offline");

    // The real client can reach the fleet through the front door.
    let out = Command::new(env!("CARGO_BIN_EXE_pit"))
        .args(["client", "--via-router", &router_addr, "--user"])
        .arg(fx.user.to_string())
        .args(["--keywords", KEYWORD, "--k", &K.to_string()])
        .output()
        .expect("run pit client");
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("2 shards"),
        "client did not confirm the fleet: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Kill the non-home backend and re-ask: an honest partial within the
    // deadline, never a hang and never a silently-wrong full answer.
    let (ref mut victim, _) = backends[fx.dead as usize];
    victim.kill().expect("kill backend");
    let _ = victim.wait();

    let started = Instant::now();
    let Response::Topics {
        ranked, partial, ..
    } = ask(&mut c, &wire_query(fx.user))
    else {
        panic!("expected a degraded topics reply");
    };
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(10),
        "degraded reply took {waited:?}"
    );
    assert!(!ranked.is_empty(), "degraded reply lost the ranking");
    assert_eq!(partial.len(), 1, "got {partial:?}");
    assert_eq!(partial[0].0, fx.dead, "wrong shard blamed: {partial:?}");
    assert!(
        ["timeout", "overloaded", "internal"].contains(&partial[0].1.as_str()),
        "reason outside the taxonomy: {partial:?}"
    );

    shutdown(&mut router, &router_addr);
    let home = (1 - fx.dead) as usize;
    shutdown(&mut backends[home].0, &addrs[home]);
}

#[test]
fn dragged_backend_is_cut_off_by_the_budget_and_reported_partial() {
    let fx = fixture();
    let drag_user = fx.dead_probe.to_string();
    // The dead shard's backend sleeps 5s on any expansion touching the
    // probe we know this query sends it; the router's 1s per-call I/O cap
    // must cut it off and report `partial=<dead>:timeout` — the 10s query
    // budget never fires, so the rest of the fleet still answers in full.
    let mut backends: Vec<(Child, String)> = (0..SHARDS)
        .map(|i| {
            let extra: &[&str] = if i == fx.dead {
                &["--drag-user", drag_user.as_str(), "--drag-us", "5000000"]
            } else {
                &[]
            };
            spawn_backend(fx, i, extra)
        })
        .collect();
    let addrs: Vec<String> = backends.iter().map(|(_, a)| a.clone()).collect();
    let (mut router, router_addr) = spawn_router(
        fx,
        &addrs,
        &["--io-timeout-ms", "1000", "--budget-ms", "10000"],
    );

    let mut c = connect(&router_addr);
    let started = Instant::now();
    let Response::Topics {
        ranked, partial, ..
    } = ask(&mut c, &wire_query(fx.user))
    else {
        panic!("expected a degraded topics reply");
    };
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(4),
        "I/O cap did not bound the dragged shard: took {waited:?}"
    );
    assert!(!ranked.is_empty(), "degraded reply lost the ranking");
    assert_eq!(
        partial,
        vec![(fx.dead, "timeout".to_string())],
        "dragged shard must be reported as a timeout"
    );

    shutdown(&mut router, &router_addr);
    for (i, (child, addr)) in backends.iter_mut().enumerate() {
        if i == fx.dead as usize {
            // Its expand thread may still be mid-sleep; don't wait on drain.
            child.kill().expect("kill dragged backend");
            let _ = child.wait();
        } else {
            shutdown(child, addr);
        }
    }
}
