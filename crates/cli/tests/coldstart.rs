//! Cold-start drill against the real `pit` binary: a serving process must
//! go from "flat snapshot on disk" to "first query answered" inside a
//! pinned budget, and `RELOAD` onto a flat snapshot must be an order of
//! magnitude cheaper than the owned (deep-copy + deep-validate) load of
//! the same snapshot, measured in the same process profile.
//!
//! The fixture is array-dominated (large Γ at θ = 0.01, R = 32, few small
//! topics) — the shape the flat format exists for: at production scale the
//! Γ tables dwarf every other artifact, so mapping them in place instead
//! of copying is what turns a reload from seconds into milliseconds.
//! CI runs this as the `coldstart-integration` job.

use pit::{store, PitEngine};
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use pit_topics::SyntheticTopicConfig;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pit-coldstart-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Build an array-dominated engine snapshot: 4 000 nodes, large Γ, small
/// topic space. Different seeds give different graphs so a RELOAD swap is
/// a real generation change.
fn build_snapshot(dir: &Path, seed: u64) {
    let spec = pit_datasets::DatasetSpec {
        name: format!("coldstart-it-{seed}"),
        nodes: 4_000,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: SyntheticTopicConfig {
            topic_count: 100,
            query_term_count: 8,
            tail_term_count: 100,
            terms_per_topic: 4,
            topics_per_node_mean: 2.0,
            zipf_exponent: 0.9,
            seed,
        },
        seed,
    };
    let ds = pit_datasets::generate(&spec);
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(5, 32).with_seed(4))
        .propagation(pit_index::PropIndexConfig::with_theta(0.01))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));
    store::save_engine(dir, &engine).expect("save engine");
}

fn spawn_server(engine_dir: &Path) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pit"));
    cmd.args(["serve", "--engine"])
        .arg(engine_dir)
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn pit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> TcpStream {
    let c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn get_stat(pairs: &[(String, String)], name: &str) -> String {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing stat {name}"))
        .1
        .clone()
}

/// The whole spawn-to-first-reply budget. Debug builds on a loaded CI core
/// are slow at everything *except* the thing under test (the mapped load),
/// so the pin is generous in absolute terms — the sharp assertion is the
/// reload-vs-owned ratio below, which is profile-independent.
const FIRST_QUERY_BUDGET: Duration = Duration::from_secs(10);
const RELOADS: u64 = 6;

#[test]
fn flat_coldstart_drill() {
    let dir_a = scratch_dir("drill-a");
    let dir_b = scratch_dir("drill-b");
    build_snapshot(&dir_a, 17);
    build_snapshot(&dir_b, 23);

    // Owned-load baseline, measured in this process: best of three, so a
    // cold page cache or a scheduler hiccup can't inflate the denominator
    // in the flat loader's favor.
    let owned_us = (0..3)
        .map(|_| {
            let t = Instant::now();
            let engine = store::load_engine_owned(&dir_a).expect("owned load");
            assert_eq!(engine.snapshot_format(), "owned");
            t.elapsed().as_micros() as u64
        })
        .min()
        .unwrap();

    // Spawn-to-first-reply: the serving process validates the snapshot
    // (checksummed mapped load), binds, and must answer a real query
    // inside the pinned budget.
    let spawn_started = Instant::now();
    let (mut child, addr) = spawn_server(&dir_a);
    let mut c = connect(&addr);
    let first = ask(
        &mut c,
        &Request::Query {
            user: 7,
            k: 5,
            keywords: vec!["query-0".to_string()],
        },
    );
    let to_first_reply = spawn_started.elapsed();
    let Response::Topics { ranked, .. } = first else {
        panic!("first query failed: {first:?}");
    };
    assert!(!ranked.is_empty(), "first query returned no topics");
    assert!(
        to_first_reply <= FIRST_QUERY_BUDGET,
        "spawn to first reply took {to_first_reply:?} (budget {FIRST_QUERY_BUDGET:?})"
    );

    // The resident engine is the mapped flat load, not a copy.
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(get_stat(&pairs, "snapshot_format"), "flat-mapped");
    let Response::Metrics(body) = ask(&mut c, &Request::Metrics) else {
        panic!("expected metrics");
    };
    let mapped_gauge = body
        .lines()
        .find(|l| l.starts_with("pit_reload_bytes_mapped "))
        .unwrap_or_else(|| panic!("pit_reload_bytes_mapped missing from:\n{body}"));
    let mapped: u64 = mapped_gauge
        .split_whitespace()
        .nth(1)
        .expect("gauge value")
        .parse()
        .expect("gauge numeric");
    assert!(mapped > 0, "flat-mapped engine reports zero mapped bytes");

    // RELOAD drill: swap back and forth between the two snapshots. Every
    // reload is a fast mapped load; the latency histogram must sit an
    // order of magnitude under the owned baseline — tail, not median.
    for i in 0..RELOADS {
        let dir = if i % 2 == 0 { &dir_b } else { &dir_a };
        let reply = ask(
            &mut c,
            &Request::Reload {
                dir: dir.display().to_string(),
            },
        );
        assert_eq!(reply, Response::Generation(i + 2), "reload {i} failed");
    }
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(get_stat(&pairs, "reloads"), RELOADS.to_string());
    assert_eq!(get_stat(&pairs, "reload_failures"), "0");
    assert_eq!(get_stat(&pairs, "snapshot_format"), "flat-mapped");
    let reload_p99_us: u64 = get_stat(&pairs, "reload_p99_us").parse().expect("numeric");
    assert!(
        reload_p99_us.saturating_mul(10) <= owned_us,
        "flat reload p99 {reload_p99_us}µs not 10x under the owned baseline {owned_us}µs"
    );

    // Queries still answer after the drill, on the final generation.
    let Response::Topics { ranked, .. } = ask(
        &mut c,
        &Request::Query {
            user: 7,
            k: 5,
            keywords: vec!["query-0".to_string()],
        },
    ) else {
        panic!("query after reload drill failed");
    };
    assert!(!ranked.is_empty());

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
