//! End-to-end daemon test: build an engine on disk, spawn the real `pit`
//! binary with `serve`, and talk to it over TCP — including a concurrent
//! burst — then shut it down cleanly.

use pit::{store, PitEngine, SummarizerKind};
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pit-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Build a small engine and persist it where `pit serve` can load it.
fn build_engine(dir: &Path) -> PitEngine {
    let spec = pit_datasets::DatasetSpec {
        name: "serve-it".to_string(),
        nodes: 400,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(400, 17),
        seed: 17,
    };
    let ds = pit_datasets::generate(&spec);
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(3, 8).with_seed(4))
        .propagation(pit_index::PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            rep_count: Some(8),
            ..pit_summarize::LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));
    store::save_engine(dir, &engine).expect("save engine");
    engine
}

/// Spawn `pit serve` on an ephemeral port and return (child, bound address).
fn spawn_server(engine_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pit"));
    cmd.args(["serve", "--engine"])
        .arg(engine_dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn pit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn query(user: u32, k: usize, kw: &str) -> Request {
    Request::Query {
        user,
        k,
        keywords: vec![kw.to_string()],
    }
}

#[test]
fn serve_answers_queries_identical_to_offline_and_drains() {
    let dir = scratch_dir("main");
    let engine = build_engine(&dir);
    let (mut child, addr) = spawn_server(&dir, &["--workers", "4", "--cache", "64"]);

    let mut c = TcpStream::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Liveness.
    assert_eq!(ask(&mut c, &Request::Ping), Response::Pong);

    // Served top-k must match the offline path bit for bit.
    for user in [0u32, 7, 123] {
        let Response::Topics { ranked, .. } = ask(&mut c, &query(user, 5, "query-0")) else {
            panic!("expected topics for user {user}");
        };
        let offline = engine
            .search_keywords(pit_graph::NodeId(user), &["query-0"], 5)
            .expect("offline search");
        let offline: Vec<(u32, f64)> = offline.top_k.iter().map(|s| (s.topic.0, s.score)).collect();
        assert_eq!(ranked, offline, "user {user} diverged from offline path");
    }

    // Re-asking is a cache hit with the same ranking.
    let Response::Topics { cached, ranked, .. } = ask(&mut c, &query(7, 5, "query-0")) else {
        panic!("expected topics");
    };
    assert!(cached, "repeat query should hit the cache");
    assert!(!ranked.is_empty());

    // Concurrent burst: 8 client threads, each with its own connection.
    let mut burst = Vec::new();
    for t in 0..8u32 {
        let addr = addr.clone();
        burst.push(std::thread::spawn(move || {
            let mut c = TcpStream::connect(&addr).expect("connect");
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            for i in 0..6u32 {
                // Mix repeats (cache hits) with per-thread users.
                let user = if i % 2 == 0 { 7 } else { 20 + t };
                match ask(&mut c, &query(user, 5, "query-0")) {
                    Response::Topics { ranked, .. } => {
                        assert!(!ranked.is_empty(), "thread {t} got empty top-k")
                    }
                    Response::Err(reason) => {
                        // Shedding is legal under burst; anything else is not.
                        assert_eq!(reason, "overloaded", "thread {t}: {reason}")
                    }
                    other => panic!("thread {t}: unexpected reply {other:?}"),
                }
            }
        }));
    }
    for h in burst {
        h.join().expect("burst thread");
    }

    // STATS reflects the traffic: non-zero queries and cache hits.
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    let get = |name: &str| -> u64 {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
            .parse()
            .unwrap_or_else(|_| panic!("stat {name} not numeric"))
    };
    assert!(get("queries") >= 4, "queries = {}", get("queries"));
    assert!(get("cache_hits") >= 1, "cache_hits = {}", get("cache_hits"));
    assert!(get("connections") >= 9);
    assert!(get("latency_p50_us") > 0);

    // Graceful shutdown: BYE, then the process drains and exits cleanly.
    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn get_stat(pairs: &[(String, String)], name: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing stat {name}"))
        .1
        .parse()
        .unwrap_or_else(|_| panic!("stat {name} not numeric"))
}

#[test]
fn panicking_query_reports_internal_and_the_daemon_keeps_serving() {
    let dir = scratch_dir("poison");
    build_engine(&dir);
    // One worker and a poisoned user: the induced panic must cost exactly
    // one reply — classified `internal`, never `timeout` — while the pool
    // keeps its capacity.
    let (mut child, addr) = spawn_server(&dir, &["--workers", "1", "--poison-user", "5"]);
    let mut c = TcpStream::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let Response::Err(reason) = ask(&mut c, &query(5, 5, "query-0")) else {
        panic!("poisoned query must error");
    };
    assert!(reason.starts_with("internal"), "got: {reason}");

    // The sole worker must still answer (caught panic or respawn).
    for user in [0u32, 7, 123] {
        let Response::Topics { ranked, .. } = ask(&mut c, &query(user, 5, "query-0")) else {
            panic!("daemon stopped serving after a panic (user {user})");
        };
        assert!(!ranked.is_empty());
    }

    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert!(get_stat(&pairs, "panics") >= 1);
    assert!(get_stat(&pairs, "internal_errors") >= 1);
    assert_eq!(
        get_stat(&pairs, "timeouts"),
        0,
        "a worker crash must not masquerade as slowness"
    );

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_expiry_cancels_mid_search_and_frees_the_worker() {
    let dir = scratch_dir("drag");
    let engine = build_engine(&dir);
    // User 7's queries sleep 1s per cancellation check; with checks after
    // every probed table, an uncancelled run holds the only worker for
    // probed_tables seconds.
    let full = engine
        .search_keywords(pit_graph::NodeId(7), &["query-0"], 5)
        .expect("offline search");
    assert!(
        full.probed_tables >= 2,
        "fixture query must probe multiple tables, got {}",
        full.probed_tables
    );
    let uncancelled = Duration::from_secs(full.probed_tables as u64);

    let (mut child, addr) = spawn_server(
        &dir,
        &[
            "--workers",
            "1",
            "--cache",
            "0",
            "--budget-ms",
            "100",
            "--cancel-every",
            "1",
            "--drag-user",
            "7",
            "--drag-us",
            "1000000",
        ],
    );
    let mut c = TcpStream::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let started = std::time::Instant::now();
    assert_eq!(
        ask(&mut c, &query(7, 5, "query-0")),
        Response::Err("timeout".to_string())
    );
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_millis(2_000),
        "timeout reply must honor the 100ms budget, took {waited:?}"
    );

    // The worker must come back long before the dragged search would have
    // finished on its own.
    loop {
        match ask(&mut c, &query(3, 5, "query-0")) {
            Response::Topics { .. } => break,
            Response::Err(reason) => assert_eq!(reason, "timeout", "unexpected: {reason}"),
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(
            started.elapsed() < uncancelled,
            "worker still busy after {:?}; cancellation did not fire",
            started.elapsed()
        );
    }
    assert!(
        started.elapsed() < uncancelled,
        "worker freed only after {:?} — search ran to completion (full run: {uncancelled:?})",
        started.elapsed()
    );

    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert!(get_stat(&pairs, "timeouts") >= 1);
    assert_eq!(get_stat(&pairs, "internal_errors"), 0);

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Build a second, disagreeing engine snapshot for RELOAD drills.
fn build_variant_engine(dir: &Path) -> PitEngine {
    let spec = pit_datasets::DatasetSpec {
        name: "serve-it-v2".to_string(),
        nodes: 400,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(400, 23),
        seed: 23,
    };
    let ds = pit_datasets::generate(&spec);
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(3, 8).with_seed(4))
        .propagation(pit_index::PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            rep_count: Some(8),
            ..pit_summarize::LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));
    store::save_engine(dir, &engine).expect("save variant engine");
    engine
}

/// Fire `n` identical queries from `n` fresh connections through a barrier
/// and return every reply.
fn herd(addr: &str, n: usize, req: &Request) -> Vec<Response> {
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            let req = req.clone();
            let mut c = TcpStream::connect(addr).expect("connect");
            c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            std::thread::spawn(move || {
                barrier.wait();
                ask(&mut c, &req)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("herd thread"))
        .collect()
}

#[test]
fn reload_herd_drill_coalesces_to_one_execution_per_generation() {
    // The real-binary thundering-herd drill: a RELOAD bumps the generation,
    // every cached ranking goes stale at once, and a burst of identical
    // queries lands cold. Single-flight coalescing must turn each such
    // burst into exactly one execution with bit-identical replies.
    let dir = scratch_dir("herd-gen1");
    let dir2 = scratch_dir("herd-gen2");
    let engine = build_engine(&dir);
    let engine2 = build_variant_engine(&dir2);
    // The drag makes the single execution slow enough (~100 ms per probed
    // table) that all herd members register while it is in flight; the
    // reload drag exercises queries-keep-flowing during the swap.
    let (mut child, addr) = spawn_server(
        &dir,
        &[
            "--workers",
            "2",
            "--cache",
            "64",
            "--budget-ms",
            "30000",
            "--cancel-every",
            "1",
            "--drag-user",
            "7",
            "--drag-us",
            "100000",
            "--reload-drag-ms",
            "100",
        ],
    );
    let herd_query = query(7, 5, "query-0");

    let offline = |e: &PitEngine| -> Vec<(u32, f64)> {
        e.search_keywords(pit_graph::NodeId(7), &["query-0"], 5)
            .expect("offline search")
            .top_k
            .iter()
            .map(|s| (s.topic.0, s.score))
            .collect()
    };
    let check_herd = |replies: &[Response], want: &[(u32, f64)], label: &str| {
        for reply in replies {
            assert_eq!(
                reply, &replies[0],
                "{label}: coalesced replies must be bit-identical"
            );
            let Response::Topics { ranked, cached, .. } = reply else {
                panic!("{label}: expected topics, got {reply:?}");
            };
            assert!(!cached, "{label}: herd must be cold");
            assert_eq!(ranked, want, "{label}: ranking diverged from offline");
        }
    };

    // Cold herd on generation 1.
    check_herd(&herd(&addr, 8, &herd_query), &offline(&engine), "gen1");

    let mut c = TcpStream::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(get_stat(&pairs, "inflight_executions"), 1);
    assert_eq!(get_stat(&pairs, "coalesced_queries"), 7);
    assert_eq!(get_stat(&pairs, "queries"), 8);

    // Swap generations — this is the moment the cache goes cold at once.
    let reload = Request::Reload {
        dir: dir2.display().to_string(),
    };
    assert_eq!(ask(&mut c, &reload), Response::Generation(2));

    // Post-reload herd: recomputed once on the new engine, shared by all.
    check_herd(&herd(&addr, 8, &herd_query), &offline(&engine2), "gen2");

    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(
        get_stat(&pairs, "inflight_executions"),
        2,
        "each generation's herd must share exactly one execution"
    );
    assert_eq!(get_stat(&pairs, "coalesced_queries"), 14);
    assert_eq!(get_stat(&pairs, "queries"), 16);

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn ten_thousand_idle_connections_cost_fds_not_threads() {
    // The event-loop acceptance drill: idle clients must not grow the
    // server's thread count, and the daemon must stay responsive with
    // thousands of sockets parked.
    const TARGET: usize = 10_000;
    const FLOOR: usize = 8_000;
    let dir = scratch_dir("idle10k");
    build_engine(&dir);
    let (mut child, addr) = spawn_server(
        &dir,
        &[
            "--workers",
            "2",
            "--io-threads",
            "2",
            "--io-timeout-ms",
            "120000",
        ],
    );
    let server_pid = child.id();

    // Ramp up, tolerating fd exhaustion (EMFILE) and transient backlog
    // refusals on either side — but insisting on a large floor.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(TARGET);
    let mut refusals = 0u32;
    while idle.len() < TARGET {
        match TcpStream::connect(&addr) {
            Ok(s) => idle.push(s),
            Err(_) if refusals < 50 => {
                refusals += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                assert!(
                    idle.len() >= FLOOR,
                    "only {} connections before {e} (floor {FLOOR})",
                    idle.len()
                );
                break;
            }
        }
    }
    let parked = idle.len();
    assert!(parked >= FLOOR, "parked only {parked} connections");

    // A fresh connection is still served promptly despite the parked herd.
    let mut c = TcpStream::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    assert_eq!(ask(&mut c, &Request::Ping), Response::Pong);
    assert!(matches!(
        ask(&mut c, &query(7, 5, "query-0")),
        Response::Topics { .. }
    ));

    // STATS separates connection count from queue depth: every parked
    // socket is registered, none of them occupies the worker queue.
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    assert!(
        get_stat(&pairs, "open_connections") >= parked as u64,
        "open_connections = {} with {parked} parked",
        get_stat(&pairs, "open_connections")
    );
    assert_eq!(get_stat(&pairs, "queued_jobs"), 0);
    assert_eq!(get_stat(&pairs, "io_threads"), 2);

    // The thread count is fixed: main + acceptor + 2 io + 2 workers +
    // updater plus a little slack — nowhere near one-per-connection.
    let tasks = std::fs::read_dir(format!("/proc/{server_pid}/task"))
        .expect("read /proc tasks")
        .count();
    assert!(
        tasks <= 16,
        "server runs {tasks} threads with {parked} connections parked"
    );

    drop(idle);
    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_sheds_or_answers_under_tiny_queue() {
    let dir = scratch_dir("shed");
    build_engine(&dir);
    // One worker, queue depth 1, no cache: a 16-way burst must shed.
    let (mut child, addr) = spawn_server(
        &dir,
        &["--workers", "1", "--queue-depth", "1", "--cache", "0"],
    );
    let mut shed = 0u32;
    let mut served = 0u32;
    let mut burst = Vec::new();
    for t in 0..16u32 {
        let addr = addr.clone();
        burst.push(std::thread::spawn(move || {
            let mut c = TcpStream::connect(&addr).expect("connect");
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            match ask(&mut c, &query(t % 50, 5, "query-0")) {
                Response::Topics { .. } => (1u32, 0u32),
                Response::Err(reason) => {
                    assert_eq!(reason, "overloaded");
                    (0, 1)
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }));
    }
    for h in burst {
        let (s, o) = h.join().expect("burst thread");
        served += s;
        shed += o;
    }
    assert_eq!(served + shed, 16);
    assert!(served >= 1, "at least one query must be served");

    let mut c = TcpStream::connect(&addr).expect("connect");
    let Response::Stats(pairs) = ask(&mut c, &Request::Stats) else {
        panic!("expected stats");
    };
    let reported: u64 = pairs
        .iter()
        .find(|(k, _)| k == "shed")
        .expect("shed stat")
        .1
        .parse()
        .expect("numeric");
    assert_eq!(
        reported, shed as u64,
        "STATS shed must match observed sheds"
    );

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}
