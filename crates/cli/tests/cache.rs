//! Cache-invalidation integration drill against the real `pit` binary.
//!
//! The fixture is two disconnected islands, each with its own topic and
//! term, so an `UPDATE` adding an edge inside island B provably cannot
//! change any island-A answer. The drill proves the daemon exploits that:
//! the island-A entry keeps hitting across the UPDATE swap
//! (`cache_survivors` ≥ 1) while the island-B entry is invalidated with
//! the `edge-added` stale reason — and after a full `RELOAD` (blanket
//! flush), the bounded warmup job repopulates the hottest key before the
//! `GEN` reply lands.

use pit::{store, PitEngine, SummarizerKind};
use pit_graph::NodeId;
use pit_server::protocol::{read_frame, write_frame, Request, Response};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pit-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Two disconnected five-node ring islands with island-local topics and
/// terms. Rings, so influence is mutual and every node scores its island's
/// representative above zero; `weight` scales every edge, so different
/// weights give different rankings over the same shape and vocabulary.
fn build_island_engine(dir: &Path, weight: f64) -> PitEngine {
    let mut g = pit_graph::GraphBuilder::new(10);
    for &(a, b) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
        g.add_edge(NodeId(a), NodeId(b), weight).unwrap();
    }
    for &(a, b) in &[(5, 6), (6, 7), (7, 8), (8, 9), (9, 5), (5, 7)] {
        g.add_edge(NodeId(a), NodeId(b), weight).unwrap();
    }
    let mut vocab = pit_topics::Vocabulary::new();
    let term_a = vocab.intern("island-a");
    let term_b = vocab.intern("island-b");
    let mut sb = pit_topics::TopicSpaceBuilder::new(10, 2);
    let t_a = sb.add_topic(vec![term_a]);
    for m in 0..5 {
        sb.assign(NodeId(m), t_a);
    }
    let t_b = sb.add_topic(vec![term_b]);
    for m in 5..10 {
        sb.assign(NodeId(m), t_b);
    }
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(4, 8).with_seed(3))
        .propagation(pit_index::PropIndexConfig::with_theta(0.01))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig::default()))
        .build_with_vocab(g.build().unwrap(), sb.build(), Some(vocab));
    store::save_engine(dir, &engine).expect("save engine");
    engine
}

fn spawn_server(engine_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pit"));
    cmd.args(["serve", "--engine"])
        .arg(engine_dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn pit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> TcpStream {
    let c = TcpStream::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

fn ask(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.render()).expect("send");
    let text = read_frame(stream).expect("recv").expect("reply");
    Response::parse(&text).expect("parse reply")
}

fn query(user: u32, kw: &str) -> Request {
    Request::Query {
        user,
        k: 3,
        keywords: vec![kw.to_string()],
    }
}

fn topics(stream: &mut TcpStream, req: &Request) -> (Vec<(u32, f64)>, bool) {
    let Response::Topics { ranked, cached, .. } = ask(stream, req) else {
        panic!("expected topics for {req:?}");
    };
    (ranked, cached)
}

fn get_stat(pairs: &[(String, String)], name: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing stat {name}"))
        .1
        .parse()
        .unwrap_or_else(|_| panic!("stat {name} not numeric"))
}

fn stats(stream: &mut TcpStream) -> Vec<(String, String)> {
    let Response::Stats(pairs) = ask(stream, &Request::Stats) else {
        panic!("expected stats");
    };
    pairs
}

fn offline_ranking(engine: &PitEngine, user: u32, kw: &str) -> Vec<(u32, f64)> {
    engine
        .search_keywords(NodeId(user), &[kw], 3)
        .expect("offline search")
        .top_k
        .iter()
        .map(|s| (s.topic.0, s.score))
        .collect()
}

#[test]
fn update_spares_disjoint_entries_and_reload_warmup_repopulates_the_hottest() {
    let dir_a = scratch_dir("gen1");
    let dir_b = scratch_dir("gen2");
    let engine_a = build_island_engine(&dir_a, 0.5);
    let engine_b = build_island_engine(&dir_b, 0.8);
    let a_ranking = offline_ranking(&engine_a, 4, "island-a");
    let b_ranking = offline_ranking(&engine_b, 4, "island-a");
    assert_ne!(a_ranking, b_ranking, "fixture engines must disagree");

    let (mut child, addr) = spawn_server(
        &dir_a,
        &[
            "--workers",
            "2",
            "--cache",
            "32",
            "--warmup-budget-ms",
            "10000",
            "--warmup-top",
            "8",
        ],
    );
    let mut c = connect(&addr);

    // Warm both islands under generation 1; repeat island-A so it is the
    // hottest key in the frequency sketch.
    let disjoint = query(4, "island-a");
    let affected = query(9, "island-b");
    let (ranked, cached) = topics(&mut c, &disjoint);
    assert!(!cached);
    assert_eq!(ranked, a_ranking);
    for _ in 0..2 {
        let (_, cached) = topics(&mut c, &disjoint);
        assert!(cached, "repeat query must hit");
    }
    let (_, cached) = topics(&mut c, &affected);
    assert!(!cached);

    // UPDATE: a new edge strictly inside island B. The island-A entry must
    // keep hitting across the swap; the island-B entry must not.
    let update = Request::Update {
        edges: vec![(6, 9, 0.9)],
        assignments: vec![],
    };
    assert_eq!(ask(&mut c, &update), Response::Generation(2));

    let (ranked, cached) = topics(&mut c, &disjoint);
    assert!(cached, "disjoint entry must survive a scoped UPDATE");
    assert_eq!(ranked, a_ranking, "survivor must keep the correct answer");
    let (_, cached) = topics(&mut c, &affected);
    assert!(!cached, "Γ-affected entry must be invalidated");

    let pairs = stats(&mut c);
    assert_eq!(get_stat(&pairs, "generation"), 2);
    assert!(get_stat(&pairs, "cache_survivors") >= 1);
    assert!(
        get_stat(&pairs, "cache_stale_edge_added") >= 1,
        "the island-B entry must carry the edge-added stale reason"
    );

    // RELOAD onto snapshot B: blanket flush, then the bounded warmup job
    // replays the hottest keys before the GEN reply is sent — so the very
    // first post-reload island-A query is a hit, with the *new* ranking.
    let reload = Request::Reload {
        dir: dir_b.display().to_string(),
    };
    assert_eq!(ask(&mut c, &reload), Response::Generation(3));

    let (ranked, cached) = topics(&mut c, &disjoint);
    assert!(cached, "warmup must repopulate the hottest key in budget");
    assert_eq!(ranked, b_ranking, "warm entry must carry the new ranking");

    let pairs = stats(&mut c);
    assert_eq!(get_stat(&pairs, "generation"), 3);
    assert!(get_stat(&pairs, "warmup_queries") >= 1);
    assert_eq!(
        get_stat(&pairs, "warmup_budget_exhausted"),
        0,
        "a 10s budget must cover a handful of tiny queries"
    );
    assert!(
        get_stat(&pairs, "cache_stale_full_reload") >= 1,
        "the RELOAD flush must be typed full-reload"
    );
    let coverage: f64 = pairs
        .iter()
        .find(|(k, _)| k == "warmup_coverage")
        .expect("missing stat warmup_coverage")
        .1
        .parse()
        .expect("coverage is fractional");
    assert!(coverage > 0.0, "last warmup run must report coverage");

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn warmup_disabled_by_default_keeps_post_reload_queries_cold() {
    let dir = scratch_dir("cold");
    build_island_engine(&dir, 0.5);
    let (mut child, addr) = spawn_server(&dir, &["--workers", "2", "--cache", "16"]);
    let mut c = connect(&addr);

    let probe = query(0, "island-a");
    let (_, cached) = topics(&mut c, &probe);
    assert!(!cached);
    let (_, cached) = topics(&mut c, &probe);
    assert!(cached);

    // Reload in place: without --warmup-budget-ms the cache stays cold.
    let reload = Request::Reload {
        dir: dir.display().to_string(),
    };
    assert_eq!(ask(&mut c, &reload), Response::Generation(2));
    let (_, cached) = topics(&mut c, &probe);
    assert!(!cached, "no warmup was configured");

    let pairs = stats(&mut c);
    assert_eq!(get_stat(&pairs, "warmup_queries"), 0);

    assert_eq!(ask(&mut c, &Request::Shutdown), Response::Bye);
    assert!(child.wait().expect("server exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}
