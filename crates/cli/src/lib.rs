//! Library surface of the `pit` binary: flag parsing and subcommand
//! implementations, exposed so the command layer is testable in-process.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
