//! `pit` — command-line interface to the PIT-Search engine.
//!
//! ```text
//! pit generate --dataset data_2k --scale 30 --out corpus/      # synthesize a corpus
//! pit build    --corpus corpus/ --out engine/ [--summarizer lrw|rcl]
//!              [--theta 0.01] [--walk-l 5] [--walk-r 32] [--reps 64]
//! pit query    --engine engine/ --user 3 --keywords query-0 [--k 10]
//! pit audience --engine engine/ --topic 0 --keyword query-0 [--k 3] [--sample 200]
//! pit stats    --engine engine/
//! pit serve    --engine engine/ [--addr 127.0.0.1:7878] [--workers 8]
//! pit shard-split --dir engine/ --out shards/ --shards 4     # slice a snapshot
//! pit route    --engine shards/shard-0 --shards h1:7878,h2:7878 [--addr 127.0.0.1:7979]
//! pit route    --engine engine/ --in-process 4               # one-process fleet
//! pit client   --addr 127.0.0.1:7878 --user 3 --keywords query-0 [--k 10]
//! pit client   --via-router 127.0.0.1:7979 --user 3 --keywords query-0
//! pit trace    --addr 127.0.0.1:7878 [--n 16]
//! pit reload   --addr 127.0.0.1:7878 --dir engine-v2/
//! pit update   --addr 127.0.0.1:7878 --edges 3:9:0.5 --assign 4:17
//! ```

use pit_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "build" => commands::build(&parsed),
        "query" => commands::query(&parsed),
        "audience" => commands::audience(&parsed),
        "stats" => commands::stats(&parsed),
        "serve" => commands::serve(&parsed),
        "shard-split" => commands::shard_split(&parsed),
        "route" => commands::route(&parsed),
        "client" => commands::client(&parsed),
        "trace" => commands::trace(&parsed),
        "reload" => commands::reload(&parsed),
        "update" => commands::update(&parsed),
        "help" | "--help" | "-h" => {
            usage();
            return;
        }
        other => Err(format!("unknown subcommand {other}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() {
    eprintln!(
        "pit — personalized influential topic search\n\
         \n\
         subcommands:\n\
         \x20 generate --dataset NAME --out DIR [--scale S]       synthesize a corpus\n\
         \x20          NAME ∈ data_2k | data_350k | data_1.2m | data_3m\n\
         \x20 build    --corpus DIR --out DIR [--summarizer lrw|rcl] [--theta F]\n\
         \x20          [--walk-l L] [--walk-r R] [--reps N]        run the offline stage\n\
         \x20 query    --engine DIR --user N --keywords a,b [--k K]\n\
         \x20 audience --engine DIR --topic T --keyword WORD [--k K] [--sample N]\n\
         \x20 stats    --engine DIR\n\
         \x20 serve    --engine DIR [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20          [--cache N] [--budget-ms MS] [--io-timeout-ms MS]   run the query daemon\n\
         \x20          [--io-threads N] [--coalesce on|off]    event-loop front-end sizing\n\
         \x20          [--trace-sample N] [--slow-ms MS] [--trace-ring N]  per-query tracing\n\
         \x20          [--warmup-budget-ms MS] [--warmup-top N]  post-reload cache warmup\n\
         \x20          (a snapshot with a shard manifest comes up as that slice)\n\
         \x20 shard-split --dir DIR --out DIR --shards N   slice a snapshot into N shard\n\
         \x20          snapshots under out/shard-<i>, verifying the user partition\n\
         \x20 route    --engine DIR (--shards HOST:PORT,… | --in-process N)\n\
         \x20          [--addr HOST:PORT] [serve flags]     scatter-gather router daemon\n\
         \x20 client   --addr HOST:PORT [--op ping|stats|metrics|trace|shutdown|query]\n\
         \x20          [--user N --keywords a,b [--k K]]                   talk to a daemon\n\
         \x20          (--via-router HOST:PORT targets a pit route front door)\n\
         \x20 trace    --addr HOST:PORT [--n N]       dump a daemon's slow-query log and\n\
         \x20          sampled per-query traces (see serve --trace-sample/--slow-ms)\n\
         \x20 reload   --addr HOST:PORT --dir DIR      swap a running daemon onto a new\n\
         \x20          engine snapshot (queries keep flowing on the old one meanwhile)\n\
         \x20 update   --addr HOST:PORT [--edges u:v:p,…] [--assign u:t,…]\n\
         \x20          apply a live edge/assignment delta to a running daemon"
    );
}
