//! Flag parsing for the `pit` binary — small, dependency-free, testable.

use std::collections::BTreeMap;

/// A parsed invocation: subcommand plus `--flag value` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Flag values keyed by flag name (without the leading dashes).
    pub flags: BTreeMap<String, String>,
}

/// Parse `args` (without the program name).
///
/// # Errors
/// Returns a message when no subcommand is given, a flag is missing its
/// value, or a bare positional argument appears after the subcommand.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| "missing subcommand".to_string())?
        .clone();
    if command.starts_with('-') {
        return Err(format!("expected a subcommand, got flag {command}"));
    }
    let mut flags = BTreeMap::new();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {flag}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} is missing its value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(Parsed { command, flags })
}

impl Parsed {
    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse(&argv("query --engine /tmp/e --user 7 --k 10")).unwrap();
        assert_eq!(p.command, "query");
        assert_eq!(p.require("engine").unwrap(), "/tmp/e");
        assert_eq!(p.num::<usize>("k", 3).unwrap(), 10);
        assert_eq!(p.num::<usize>("absent", 42).unwrap(), 42);
        assert_eq!(p.get("user"), Some("7"));
        assert_eq!(p.get("nope"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("--engine x")).is_err());
        assert!(parse(&argv("query --engine")).is_err());
        assert!(parse(&argv("query stray")).is_err());
        let p = parse(&argv("query --k ten")).unwrap();
        assert!(p.num::<usize>("k", 1).is_err());
        assert!(p.require("engine").is_err());
    }
}
