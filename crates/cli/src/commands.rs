//! Subcommand implementations for the `pit` binary.

use crate::args::Parsed;
use pit::store;
use pit::{PitEngine, SummarizerKind};
use pit_datasets::paper_specs;
use pit_graph::stats::GraphStats;
use pit_graph::NodeId;
use pit_index::PropIndexConfig;
use pit_summarize::{LrwConfig, RclConfig};
use pit_walk::WalkConfig;
use std::fs;
use std::path::Path;

/// `pit generate` — synthesize a Figure-4 corpus and write its snapshots.
pub fn generate(p: &Parsed) -> Result<(), String> {
    let name = p.require("dataset")?;
    let out = Path::new(p.require("out")?);
    let scale: usize = p.num("scale", 30)?;
    let specs = paper_specs(scale);
    let spec = specs.iter().find(|s| s.name == name).ok_or_else(|| {
        format!(
            "unknown dataset {name}; available: {}",
            specs
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    eprintln!("generating {} ({} nodes)…", spec.name, spec.nodes);
    let ds = pit_datasets::generate(spec);
    fs::create_dir_all(out).map_err(|e| e.to_string())?;
    fs::write(
        out.join("graph.pitg"),
        pit_graph::snapshot::encode(&ds.graph),
    )
    .map_err(|e| e.to_string())?;
    fs::write(
        out.join("topics.pitt"),
        pit_topics::snapshot::encode_space(&ds.space),
    )
    .map_err(|e| e.to_string())?;
    fs::write(
        out.join("vocab.pitv"),
        pit_topics::snapshot::encode_vocab(&ds.vocab),
    )
    .map_err(|e| e.to_string())?;
    let stats = GraphStats::compute(&ds.graph);
    println!(
        "wrote {}: |V|={}, |E|={}, topics={}, terms={}",
        out.display(),
        stats.node_count,
        stats.edge_count,
        ds.space.topic_count(),
        ds.vocab.len()
    );
    Ok(())
}

/// `pit build` — run the offline stage over a saved corpus.
pub fn build(p: &Parsed) -> Result<(), String> {
    let corpus = Path::new(p.require("corpus")?);
    let out = Path::new(p.require("out")?);
    let theta: f64 = p.num("theta", 0.01)?;
    let walk_l: usize = p.num("walk-l", 5)?;
    let walk_r: usize = p.num("walk-r", 32)?;
    let reps: usize = p.num("reps", 64)?;
    let summarizer = match p.get("summarizer").unwrap_or("lrw") {
        "lrw" => SummarizerKind::Lrw(LrwConfig {
            rep_count: Some(reps),
            ..LrwConfig::default()
        }),
        "rcl" => SummarizerKind::Rcl(RclConfig {
            c_size: reps,
            ..RclConfig::default()
        }),
        other => return Err(format!("unknown summarizer {other} (lrw|rcl)")),
    };

    let graph = pit_graph::snapshot::decode(
        &fs::read(corpus.join("graph.pitg")).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let space = pit_topics::snapshot::decode_space(
        &fs::read(corpus.join("topics.pitt")).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let vocab_path = corpus.join("vocab.pitv");
    let vocab = if vocab_path.exists() {
        Some(
            pit_topics::snapshot::decode_vocab(&fs::read(vocab_path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };

    eprintln!(
        "building offline stage ({}, θ={theta}, L={walk_l}, R={walk_r}, {reps} reps/topic)…",
        summarizer.name()
    );
    let t0 = std::time::Instant::now();
    let engine = PitEngine::builder()
        .walk(WalkConfig::new(walk_l, walk_r))
        .propagation(PropIndexConfig::with_theta(theta))
        .summarizer(summarizer)
        .build_with_vocab(graph, space, vocab);
    eprintln!("offline stage took {:.1}s", t0.elapsed().as_secs_f64());
    store::save_engine(out, &engine).map_err(|e| e.to_string())?;
    println!(
        "wrote engine to {} ({} of resident indexes)",
        out.display(),
        pit_eval::table::human_bytes(engine.index_bytes())
    );
    Ok(())
}

/// `pit query` — top-k personalized influential topics for one user.
pub fn query(p: &Parsed) -> Result<(), String> {
    let engine = load(p)?;
    let user: u32 = p.num("user", u32::MAX)?;
    if user == u32::MAX {
        return Err("missing required flag --user".into());
    }
    if user as usize >= engine.graph().node_count() {
        return Err(format!(
            "user {user} out of range (graph has {} users)",
            engine.graph().node_count()
        ));
    }
    let keywords: Vec<&str> = p.require("keywords")?.split(',').collect();
    let k: usize = p.num("k", 10)?;
    let t0 = std::time::Instant::now();
    let out = engine.search_keywords(NodeId(user), &keywords, k)?;
    let dt = t0.elapsed();
    println!(
        "user {user}, q={keywords:?}: {} candidate topics, {} pruned, answered in {:.2} ms",
        out.candidate_topics,
        out.pruned_topics,
        dt.as_secs_f64() * 1e3
    );
    for (rank, s) in out.top_k.iter().enumerate() {
        let members = engine.space().topic_nodes(s.topic).len();
        println!(
            "  {:>3}. topic {:<6} influence {:.6}  ({} users discuss it)",
            rank + 1,
            s.topic.to_string(),
            s.score,
            members
        );
    }
    Ok(())
}

/// `pit audience` — inverse search: who is the topic influential for?
pub fn audience(p: &Parsed) -> Result<(), String> {
    let engine = load(p)?;
    let topic: u32 = p.num("topic", u32::MAX)?;
    if topic == u32::MAX {
        return Err("missing required flag --topic".into());
    }
    if topic as usize >= engine.space().topic_count() {
        return Err(format!(
            "topic {topic} out of range (space has {} topics)",
            engine.space().topic_count()
        ));
    }
    let keyword = p.require("keyword")?;
    let k: usize = p.num("k", 3)?;
    let sample: usize = p.num("sample", 200)?;
    let vocab = engine
        .vocab()
        .ok_or_else(|| "engine was built without a vocabulary".to_string())?;
    let term = vocab
        .get(keyword)
        .ok_or_else(|| format!("unknown keyword {keyword}"))?;
    let n = engine.graph().node_count();
    let stride = (n / sample.max(1)).max(1);
    let candidates: Vec<NodeId> = (0..n).step_by(stride).map(NodeId::from_index).collect();
    let candidate_count = candidates.len();
    let hits = pit_search_core::find_audience(
        engine.space(),
        engine.propagation(),
        engine.reps(),
        pit_graph::TopicId(topic),
        &[term],
        candidates,
        k,
    );
    println!(
        "topic {topic} is in the personal top-{k} of {} / {candidate_count} sampled users",
        hits.len()
    );
    for hit in hits.iter().take(20) {
        println!(
            "  user {:<8} rank {}  influence {:.6}",
            hit.user, hit.rank, hit.score
        );
    }
    Ok(())
}

/// `pit stats` — engine inventory.
pub fn stats(p: &Parsed) -> Result<(), String> {
    let engine = load(p)?;
    let g = GraphStats::compute(engine.graph());
    println!(
        "graph:   |V|={}, |E|={}, degrees {}..{}, components {}",
        g.node_count, g.edge_count, g.min_degree, g.max_degree, g.weak_components
    );
    println!(
        "topics:  {} topics over {} terms, avg |V_t| = {:.1}",
        engine.space().topic_count(),
        engine.space().term_count(),
        engine.space().avg_topic_node_count()
    );
    println!(
        "walks:   L={}, R={}, {}",
        engine.walks().l(),
        engine.walks().r(),
        pit_eval::table::human_bytes(engine.walks().heap_size_bytes())
    );
    println!(
        "gamma:   θ={}, {} entries, {}",
        engine.propagation().config().theta,
        engine.propagation().total_entries(),
        pit_eval::table::human_bytes(engine.propagation().heap_size_bytes())
    );
    println!(
        "reps:    {} ({} total representatives, {})",
        engine.summarizer().name(),
        engine.reps().total_reps(),
        pit_eval::table::human_bytes(engine.reps().heap_size_bytes())
    );
    Ok(())
}

/// The daemon configuration flags shared by `pit serve` and `pit route`.
fn server_config(p: &Parsed) -> Result<pit_server::ServerConfig, String> {
    use std::time::Duration;

    let defaults = pit_server::ServerConfig::default();
    // Fault-injection flags (chaos drills and the integration tests): a
    // user whose queries panic, and a user whose queries are slowed at
    // every cancellation check.
    let opt_user = |name: &str| -> Result<Option<u32>, String> {
        match p.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    };
    Ok(pit_server::ServerConfig {
        workers: p.num("workers", defaults.workers)?,
        queue_depth: p.num("queue-depth", defaults.queue_depth)?,
        cache_capacity: p.num("cache", defaults.cache_capacity)?,
        query_budget: Duration::from_millis(
            p.num("budget-ms", defaults.query_budget.as_millis() as u64)?,
        ),
        io_timeout: Duration::from_millis(
            p.num("io-timeout-ms", defaults.io_timeout.as_millis() as u64)?,
        ),
        // Event-loop sizing: a handful of I/O threads own every client
        // socket, so connection count never grows the thread count.
        io_threads: p.num("io-threads", defaults.io_threads)?,
        // Single-flight coalescing (`--coalesce on|off`): concurrent
        // identical cold queries share one execution and one cache fill.
        coalesce: match p.get("coalesce") {
            None => defaults.coalesce,
            Some("on" | "true" | "1") => true,
            Some("off" | "false" | "0") => false,
            Some(v) => return Err(format!("flag --coalesce: expected on|off, got {v:?}")),
        },
        cancel_check_tables: p.num("cancel-every", defaults.cancel_check_tables)?,
        poison_user: opt_user("poison-user")?,
        drag_user: opt_user("drag-user")?,
        drag_per_check: Duration::from_micros(p.num("drag-us", 0u64)?),
        // Fault injection for the reload integration tests: stretch every
        // RELOAD/UPDATE so queries observably keep flowing on the old
        // generation while the swap is in flight.
        reload_drag: Duration::from_millis(p.num("reload-drag-ms", 0u64)?),
        // Observability: sample one query in N into the trace ring (0 =
        // off), and log any query slower than --slow-ms regardless.
        trace_sample: p.num("trace-sample", defaults.trace_sample)?,
        slow_threshold: Duration::from_millis(
            p.num("slow-ms", defaults.slow_threshold.as_millis() as u64)?,
        ),
        trace_ring: p.num("trace-ring", defaults.trace_ring)?,
        // Post-reload cache warmup: replay the hottest keys after a
        // blanket-flush swap, for at most --warmup-budget-ms (0 = off).
        warmup_budget: Duration::from_millis(p.num(
            "warmup-budget-ms",
            defaults.warmup_budget.as_millis() as u64,
        )?),
        warmup_top: p.num("warmup-top", defaults.warmup_top)?,
    })
}

/// `pit serve` — run the query daemon over a saved engine. A snapshot
/// carrying a shard manifest (`pit shard-split` output) comes up as that
/// slice automatically: it answers the router's probes and refuses direct
/// queries.
pub fn serve(p: &Parsed) -> Result<(), String> {
    use pit_server::ServeEngine as _;
    use std::sync::Arc;

    let dir = Path::new(p.require("engine")?);
    let engine = pit_server::LocalServeEngine::load(dir)?;
    let shard = engine.shard_spec();
    let addr = p.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let config = server_config(p)?;
    let state = Arc::new(pit_server::ServerState::with_engine(
        Arc::new(engine),
        config.clone(),
    ));
    let handle = pit_server::serve(state, addr.as_str()).map_err(|e| e.to_string())?;
    // The integration tests parse this line to learn the ephemeral port, so
    // keep its shape stable and flush it before blocking.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(spec) = shard {
        eprintln!(
            "serving shard {spec} of a split snapshot; direct QUERYs are refused — \
             front the fleet with `pit route`"
        );
    }
    eprintln!(
        "{} workers, queue depth {}, cache {} entries, budget {:?}; stop with the SHUTDOWN verb",
        config.workers, config.queue_depth, config.cache_capacity, config.query_budget
    );
    handle.join();
    println!("drained; bye");
    Ok(())
}

/// `pit shard-split` — slice an engine snapshot into N shard snapshots
/// under `--out/shard-<i>`, re-loading and verifying the partition (every
/// user owned exactly once, owned Γ tables bit-identical, unowned empty).
pub fn shard_split(p: &Parsed) -> Result<(), String> {
    let dir = Path::new(p.require("dir")?);
    let out = Path::new(p.require("out")?);
    let shards: u32 = p.num("shards", 0)?;
    if shards == 0 {
        return Err("missing required flag --shards N (N >= 1)".into());
    }
    eprintln!("splitting {} into {shards} shard snapshots…", dir.display());
    let t0 = std::time::Instant::now();
    let report = pit::shard::split_snapshot(dir, out, shards).map_err(|e| e.to_string())?;
    println!(
        "wrote and verified {} shards under {} in {:.1}s ({} users, each owned exactly once)",
        report.shards,
        out.display(),
        t0.elapsed().as_secs_f64(),
        report.nodes
    );
    for (i, owned) in report.owned_per_shard.iter().enumerate() {
        println!("  shard-{i}: {owned} users");
    }
    Ok(())
}

/// `pit route` — run the scatter-gather router daemon. Two deployments:
/// `--shards host:port,…` fronts remote `pit serve` backends (with
/// `--engine` naming any shard snapshot to replicate the metadata from),
/// while `--in-process N` splits a full snapshot into N in-process shards —
/// same code path, no sockets — for drills and small fleets.
pub fn route(p: &Parsed) -> Result<(), String> {
    use pit_router::{RemoteTransport, ShardTransport, ShardedEngine};
    use std::sync::Arc;

    let addr = p.get("addr").unwrap_or("127.0.0.1:7979").to_string();
    let config = server_config(p)?;
    let engine: Arc<dyn pit_server::ServeEngine> = if let Some(list) = p.get("shards") {
        let backends: Vec<Arc<dyn ShardTransport>> = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|backend| {
                Arc::new(RemoteTransport::new(backend, config.io_timeout))
                    as Arc<dyn ShardTransport>
            })
            .collect();
        if backends.is_empty() {
            return Err("--shards needs at least one host:port".into());
        }
        // The metadata engine: any shard snapshot works — the graph, topic
        // space, vocabulary, and representative sets are replicated on
        // every slice, and the router never probes its own Γ tables.
        let meta = Arc::new(load(p)?);
        Arc::new(ShardedEngine::assemble(meta, backends)?)
    } else {
        let n: u32 = p.num("in-process", 0)?;
        if n == 0 {
            return Err(
                "pass --shards host:port,… (with --engine META_DIR) for a remote fleet, \
                 or --engine DIR --in-process N to split in-process"
                    .into(),
            );
        }
        let full = Arc::new(load(p)?);
        Arc::new(ShardedEngine::split(&full, n))
    };
    let shard_count = engine.shard_count();
    let state = Arc::new(pit_server::ServerState::with_engine(engine, config.clone()));
    let handle = pit_server::serve(state, addr.as_str()).map_err(|e| e.to_string())?;
    // Same parseable first line as `pit serve`.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "scatter-gather over {shard_count} shards; {} workers, queue depth {}, cache {} \
         entries, budget {:?}; stop with the SHUTDOWN verb",
        config.workers, config.queue_depth, config.cache_capacity, config.query_budget
    );
    handle.join();
    println!("drained; bye");
    Ok(())
}

/// `pit client` — one request against a running `pit serve` (or, with
/// `--via-router ADDR` in place of `--addr`, against a `pit route` daemon,
/// confirming first that the target actually fronts a fleet).
pub fn client(p: &Parsed) -> Result<(), String> {
    use pit_server::protocol;

    let via_router = p.get("via-router");
    let addr = match via_router {
        Some(router) => router,
        None => p.require("addr")?,
    };
    if via_router.is_some() {
        // A shard slice also answers SHARD (with its own index), so probe
        // before querying: a query accidentally aimed at one slice would be
        // refused with a confusing "query the router" error.
        match exchange(addr, &protocol::Request::Shard)? {
            protocol::Response::ShardInfo { count, gen, .. } if count >= 2 => {
                eprintln!("via router at {addr}: {count} shards, generation {gen}");
            }
            protocol::Response::ShardInfo { count, gen, .. } => {
                eprintln!(
                    "note: {addr} answers for {count} shard (generation {gen}) — \
                     a single node, not a fleet"
                );
            }
            other => return Err(format!("unexpected SHARD reply {other:?}")),
        }
    }
    let op = p.get("op").unwrap_or("query");
    let request = match op {
        "ping" => protocol::Request::Ping,
        "stats" => protocol::Request::Stats,
        "metrics" => protocol::Request::Metrics,
        "trace" => protocol::Request::Trace {
            n: p.num("n", pit_server::protocol::DEFAULT_TRACE_DUMP)?,
        },
        "shutdown" => protocol::Request::Shutdown,
        "query" => {
            let user: u32 = p.num("user", u32::MAX)?;
            if user == u32::MAX {
                return Err("missing required flag --user".into());
            }
            let keywords: Vec<String> = p
                .require("keywords")?
                .split(',')
                .map(str::to_string)
                .collect();
            protocol::Request::Query {
                user,
                k: p.num("k", 10)?,
                keywords,
            }
        }
        other => {
            return Err(format!(
                "unknown op {other} (ping|stats|metrics|trace|shutdown|query)"
            ))
        }
    };
    print_response(&exchange(addr, &request)?)
}

/// `pit trace` — dump a running daemon's slow-query log and sampled traces.
/// Shorthand for `pit client --op trace`; see `pit serve --trace-sample` /
/// `--slow-ms` for what gets captured.
pub fn trace(p: &Parsed) -> Result<(), String> {
    let addr = p.require("addr")?;
    let request = pit_server::protocol::Request::Trace {
        n: p.num("n", pit_server::protocol::DEFAULT_TRACE_DUMP)?,
    };
    print_response(&exchange(addr, &request)?)
}

/// `pit reload` — ask a running daemon to swap in the snapshot at `--dir`.
/// Blocks until the swap (or failure); queries keep being served on the old
/// generation the whole time.
pub fn reload(p: &Parsed) -> Result<(), String> {
    let addr = p.require("addr")?;
    let dir = p.require("dir")?;
    let request = pit_server::protocol::Request::Reload {
        dir: dir.to_string(),
    };
    print_response(&exchange(addr, &request)?)
}

/// `pit update` — push an edge/assignment delta into a running daemon.
/// Edges are `u:v:p` triples and assignments `u:t` pairs, comma-separated.
pub fn update(p: &Parsed) -> Result<(), String> {
    let addr = p.require("addr")?;
    let edges = parse_edges(p.get("edges").unwrap_or(""))?;
    let assignments = parse_assignments(p.get("assign").unwrap_or(""))?;
    if edges.is_empty() && assignments.is_empty() {
        return Err("empty delta: pass --edges u:v:p,… and/or --assign u:t,…".into());
    }
    let request = pit_server::protocol::Request::Update { edges, assignments };
    print_response(&exchange(addr, &request)?)
}

/// Parse `u:v:p,u:v:p,…` into new-edge triples.
fn parse_edges(spec: &str) -> Result<Vec<(u32, u32, f64)>, String> {
    spec.split(',')
        .filter(|item| !item.is_empty())
        .map(|item| {
            let bad = || format!("bad edge {item:?} (want u:v:p with p in (0,1])");
            let mut parts = item.split(':');
            let u = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let v = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let prob: f64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            if parts.next().is_some() || !prob.is_finite() {
                return Err(bad());
            }
            Ok((u, v, prob))
        })
        .collect()
}

/// Parse `u:t,u:t,…` into new-assignment pairs.
fn parse_assignments(spec: &str) -> Result<Vec<(u32, u32)>, String> {
    spec.split(',')
        .filter(|item| !item.is_empty())
        .map(|item| {
            let bad = || format!("bad assignment {item:?} (want u:t)");
            let mut parts = item.split(':');
            let u = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let t = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            if parts.next().is_some() {
                return Err(bad());
            }
            Ok((u, t))
        })
        .collect()
}

/// One request/response exchange with a running daemon. No client-side read
/// deadline: RELOAD/UPDATE legitimately block until the swap completes.
fn exchange(
    addr: &str,
    request: &pit_server::protocol::Request,
) -> Result<pit_server::protocol::Response, String> {
    use pit_server::protocol;
    use std::net::TcpStream;

    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    protocol::write_frame(&mut stream, &request.render()).map_err(|e| e.to_string())?;
    let text = protocol::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "server closed the connection without replying".to_string())?;
    protocol::Response::parse(&text).map_err(|e| format!("bad reply: {e}"))
}

/// Write a rendered reply to stdout. A consumer that closed the pipe early
/// (`pit trace | head`) is done reading, not an error — swallow the broken
/// pipe instead of panicking mid-dump.
fn emit(text: &str) -> Result<(), String> {
    use std::io::Write as _;
    match writeln!(std::io::stdout(), "{text}") {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => other.map_err(|e| format!("stdout: {e}")),
    }
}

/// Render a server reply for the operator; error replies come back as `Err`
/// with a what-to-do-about-it hint.
fn print_response(response: &pit_server::protocol::Response) -> Result<(), String> {
    use pit_server::protocol;

    let text = match response {
        protocol::Response::Pong => "PONG".to_string(),
        protocol::Response::Bye => "BYE".to_string(),
        protocol::Response::Generation(generation) => format!("generation {generation}"),
        protocol::Response::Err(reason) => {
            // The first word of the reason is the machine-readable class;
            // translate each into what the operator should do about it.
            let class = reason
                .split([' ', ':'])
                .next()
                .unwrap_or_default()
                .to_string();
            let hint = match class.as_str() {
                "timeout" => "query exceeded its budget; retry or raise --budget-ms on the server",
                "overloaded" => "shed at admission; back off and retry",
                "internal" => "server-side fault; check server STATS (panics/internal_errors)",
                "shutting-down" => "server is draining; retry against a live instance",
                "malformed" => "the request was rejected; fix the query parameters",
                "reload-failed" => {
                    "the snapshot/delta was rejected; the previous generation is still serving"
                }
                _ => "unrecognized error class",
            };
            return Err(format!("server error: {reason} ({hint})"));
        }
        protocol::Response::Stats(pairs) => pairs
            .iter()
            .map(|(key, value)| format!("{key:<18} {value}"))
            .collect::<Vec<_>>()
            .join("\n"),
        // Both bodies are already formatted for the terminal (Prometheus
        // exposition / rendered traces): print them verbatim.
        protocol::Response::Metrics(body) | protocol::Response::Traces(body) => body.clone(),
        protocol::Response::Staged => "staged (COMMIT to serve, ABORT to discard)".to_string(),
        protocol::Response::ShardInfo { index, count, gen } => {
            format!("shard {index} of {count}, generation {gen}")
        }
        // EXPAND is router-to-backend plumbing; an operator poking it by
        // hand gets a summary, not the raw tables.
        protocol::Response::Expanded { gen, bound, tables } => format!(
            "{} probe tables (generation {gen}, residual bound {bound:.6})",
            tables.len()
        ),
        protocol::Response::Topics {
            ranked,
            cached,
            micros,
            partial,
        } => {
            let mut out = format!(
                "{} topics ({}, {:.2} ms)",
                ranked.len(),
                if *cached { "cached" } else { "fresh" },
                *micros as f64 / 1e3
            );
            if !partial.is_empty() {
                let missing: Vec<String> = partial
                    .iter()
                    .map(|(shard, reason)| format!("shard {shard}: {reason}"))
                    .collect();
                out.push_str(&format!(" — PARTIAL, missing {}", missing.join(", ")));
            }
            for (rank, (topic, score)) in ranked.iter().enumerate() {
                out.push_str(&format!(
                    "\n  {:>3}. topic {topic:<6} influence {score:.6}",
                    rank + 1
                ));
            }
            out
        }
    };
    emit(&text)
}

fn load(p: &Parsed) -> Result<PitEngine, String> {
    let dir = Path::new(p.require("engine")?);
    store::load_engine(dir).map_err(|e| e.to_string())
}
