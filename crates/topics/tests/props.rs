//! Property-based tests for the topic space and synthetic generator.

use pit_graph::{NodeId, TermId, TopicId};
use pit_topics::{generate_topic_space, KeywordQuery, SyntheticTopicConfig, TopicSpaceBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forward and reverse indexes are exact inverses for arbitrary
    /// assignments.
    #[test]
    fn indexes_are_inverse(
        nodes in 1usize..30,
        assignments in proptest::collection::vec((0u32..30, 0u32..8), 0..120),
    ) {
        let mut b = TopicSpaceBuilder::new(nodes, 4);
        for t in 0..8 {
            b.add_topic(vec![TermId(t % 4)]);
        }
        for &(v, t) in &assignments {
            if (v as usize) < nodes {
                b.assign(NodeId(v), TopicId(t));
            }
        }
        let s = b.build();
        for t in s.topics() {
            for &v in s.topic_nodes(t) {
                prop_assert!(s.node_topics(v).contains(&t));
                prop_assert!(s.node_has_topic(v, t));
            }
        }
        for v in 0..nodes {
            for &t in s.node_topics(NodeId::from_index(v)) {
                prop_assert!(s.topic_nodes(t).contains(&NodeId::from_index(v)));
            }
        }
    }

    /// Term postings cover exactly the topics whose bags contain the term.
    #[test]
    fn term_index_is_inverse(seed in 0u64..500) {
        let cfg = SyntheticTopicConfig {
            topic_count: 40,
            query_term_count: 4,
            tail_term_count: 30,
            terms_per_topic: 5,
            topics_per_node_mean: 4.0,
            zipf_exponent: 0.8,
            seed,
        };
        let (s, vocab) = generate_topic_space(60, &cfg);
        for term in 0..vocab.len() as u32 {
            let term = TermId(term);
            for &t in s.topics_for_term(term) {
                prop_assert!(s.topic_terms(t).contains(&term));
            }
        }
        for t in s.topics() {
            for &term in s.topic_terms(t) {
                prop_assert!(s.topics_for_term(term).contains(&t));
            }
        }
    }

    /// Multi-term queries return the sorted dedup union of per-term results.
    #[test]
    fn query_union_property(seed in 0u64..500, terms in proptest::collection::vec(0u32..8, 1..4)) {
        let cfg = SyntheticTopicConfig {
            topic_count: 30,
            query_term_count: 8,
            tail_term_count: 10,
            terms_per_topic: 3,
            topics_per_node_mean: 3.0,
            zipf_exponent: 0.5,
            seed,
        };
        let (s, _) = generate_topic_space(40, &cfg);
        let q = KeywordQuery::new(NodeId(0), terms.iter().map(|&t| TermId(t)).collect());
        let got = q.related_topics(&s);
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        let mut expect: Vec<TopicId> = terms
            .iter()
            .flat_map(|&t| s.topics_for_term(TermId(t)).to_vec())
            .collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }
}
