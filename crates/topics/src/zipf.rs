//! Zipf-distributed sampling over ranks `0..n`.
//!
//! Topic popularity in social streams is famously heavy-tailed; the synthetic
//! topic generator uses a Zipf law (`P(rank i) ∝ 1/(i+1)^s`) to reproduce the
//! skew that the paper's LDA-derived topic space exhibits. Implemented as an
//! explicit cumulative table with binary search — simple, exact, and fast
//! enough for offline dataset generation.

use rand::Rng;

/// Pre-computed Zipf sampler over `n` ranks with exponent `s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for ranks `0..n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite / negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating rounding leaving the last entry below 1.
        *cumulative.last_mut().expect("n > 0") = 1.0;
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cumulative >= u.
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(100, 1.5);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 must dominate rank 50 heavily under s=1.5.
        assert!(counts[0] > 20 * counts[50].max(1));
        // And the head should hold most of the mass.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 10_000, "head mass {head} too small");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(10, 1.0);
        let a: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
