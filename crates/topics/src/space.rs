//! The topic space: which users mention which topics, in both directions.

use pit_graph::{NodeId, TermId, TopicId};

/// Immutable topic space with the two inverted indexes of the paper:
/// `topic → topic-node set V_t` and `node → topic set T(v)`, plus the
/// `topic → term bag` mapping that connects topics to keyword queries.
#[derive(Clone, Debug)]
pub struct TopicSpace {
    /// `topic_nodes[t]` = sorted, deduplicated `V_t`.
    topic_nodes: Vec<Vec<NodeId>>,
    /// `node_topics[v]` = sorted, deduplicated `T(v)`.
    node_topics: Vec<Vec<TopicId>>,
    /// `topic_terms[t]` = sorted term bag of topic `t`.
    topic_terms: Vec<Vec<TermId>>,
    /// Inverted `term → topics` index, aligned to the vocabulary.
    term_topics: Vec<Vec<TopicId>>,
}

impl TopicSpace {
    /// Number of topics `|T|`.
    #[inline]
    pub fn topic_count(&self) -> usize {
        self.topic_nodes.len()
    }

    /// Number of nodes the space was built for.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_topics.len()
    }

    /// Number of terms in the vocabulary this space references.
    #[inline]
    pub fn term_count(&self) -> usize {
        self.term_topics.len()
    }

    /// The topic node set `V_t` (paper: "inverted node index"). Sorted.
    #[inline]
    pub fn topic_nodes(&self, t: TopicId) -> &[NodeId] {
        &self.topic_nodes[t.index()]
    }

    /// The topic set `T(v)` of a node. Sorted.
    #[inline]
    pub fn node_topics(&self, v: NodeId) -> &[TopicId] {
        &self.node_topics[v.index()]
    }

    /// The term bag of a topic. Sorted.
    #[inline]
    pub fn topic_terms(&self, t: TopicId) -> &[TermId] {
        &self.topic_terms[t.index()]
    }

    /// All topics whose term bag contains `term` (the q-related topics for a
    /// single-keyword query). Sorted.
    #[inline]
    pub fn topics_for_term(&self, term: TermId) -> &[TopicId] {
        &self.term_topics[term.index()]
    }

    /// Whether node `v` mentions topic `t`.
    pub fn node_has_topic(&self, v: NodeId, t: TopicId) -> bool {
        self.node_topics[v.index()].binary_search(&t).is_ok()
    }

    /// Iterator over all topic ids.
    pub fn topics(&self) -> impl Iterator<Item = TopicId> + '_ {
        (0..self.topic_count() as u32).map(TopicId)
    }

    /// Mean `|V_t|` over all topics.
    pub fn avg_topic_node_count(&self) -> f64 {
        if self.topic_nodes.is_empty() {
            return 0.0;
        }
        let total: usize = self.topic_nodes.iter().map(Vec::len).sum();
        total as f64 / self.topic_nodes.len() as f64
    }

    /// Copy this space back into a builder, e.g. to apply new topic
    /// assignments and rebuild (spaces are immutable).
    pub fn to_builder(&self) -> TopicSpaceBuilder {
        let mut b = TopicSpaceBuilder::new(self.node_count(), self.term_count());
        for t in self.topics() {
            let nt = b.add_topic(self.topic_terms(t).to_vec());
            debug_assert_eq!(nt, t);
            for &v in self.topic_nodes(t) {
                b.assign(v, nt);
            }
        }
        b
    }

    /// Estimated resident heap size in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        fn nested<T>(v: &[Vec<T>]) -> usize {
            v.iter()
                .map(|inner| inner.capacity() * std::mem::size_of::<T>())
                .sum::<usize>()
                + std::mem::size_of_val(v)
        }
        nested(&self.topic_nodes)
            + nested(&self.node_topics)
            + nested(&self.topic_terms)
            + nested(&self.term_topics)
    }
}

/// Incremental [`TopicSpace`] construction.
///
/// ```
/// use pit_topics::TopicSpaceBuilder;
/// use pit_graph::{NodeId, TermId, TopicId};
///
/// let mut b = TopicSpaceBuilder::new(4, 8);
/// let apple = b.add_topic(vec![TermId(0), TermId(1)]); // {phone, apple}
/// b.assign(NodeId(1), apple);
/// b.assign(NodeId(2), apple);
/// let space = b.build();
/// assert_eq!(space.topic_nodes(apple), &[NodeId(1), NodeId(2)]);
/// assert_eq!(space.topics_for_term(TermId(0)), &[apple]);
/// ```
#[derive(Clone, Debug)]
pub struct TopicSpaceBuilder {
    node_count: usize,
    term_count: usize,
    topic_nodes: Vec<Vec<NodeId>>,
    topic_terms: Vec<Vec<TermId>>,
}

impl TopicSpaceBuilder {
    /// Start a builder for `node_count` users and a vocabulary of
    /// `term_count` terms.
    pub fn new(node_count: usize, term_count: usize) -> Self {
        TopicSpaceBuilder {
            node_count,
            term_count,
            topic_nodes: Vec::new(),
            topic_terms: Vec::new(),
        }
    }

    /// Register a new topic with its term bag; returns its id.
    ///
    /// # Panics
    /// Panics if any term id is out of the vocabulary range.
    pub fn add_topic(&mut self, mut terms: Vec<TermId>) -> TopicId {
        for t in &terms {
            assert!(
                t.index() < self.term_count,
                "term {t} out of vocabulary range {}",
                self.term_count
            );
        }
        terms.sort_unstable();
        terms.dedup();
        let id = TopicId::from_index(self.topic_terms.len());
        self.topic_terms.push(terms);
        self.topic_nodes.push(Vec::new());
        id
    }

    /// Record that node `v` mentions topic `t` (idempotent after `build`).
    ///
    /// # Panics
    /// Panics if `v` or `t` is out of range.
    pub fn assign(&mut self, v: NodeId, t: TopicId) {
        assert!(v.index() < self.node_count, "node {v} out of range");
        assert!(t.index() < self.topic_nodes.len(), "topic {t} out of range");
        self.topic_nodes[t.index()].push(v);
    }

    /// Number of topics registered so far.
    pub fn topic_count(&self) -> usize {
        self.topic_terms.len()
    }

    /// Finalize: sorts/deduplicates all postings and derives the reverse
    /// indexes.
    pub fn build(mut self) -> TopicSpace {
        for nodes in &mut self.topic_nodes {
            nodes.sort_unstable();
            nodes.dedup();
        }
        let mut node_topics = vec![Vec::new(); self.node_count];
        for (t, nodes) in self.topic_nodes.iter().enumerate() {
            for v in nodes {
                node_topics[v.index()].push(TopicId::from_index(t));
            }
        }
        // node_topics built in ascending t order, already sorted.
        let mut term_topics = vec![Vec::new(); self.term_count];
        for (t, terms) in self.topic_terms.iter().enumerate() {
            for term in terms {
                term_topics[term.index()].push(TopicId::from_index(t));
            }
        }
        TopicSpace {
            topic_nodes: self.topic_nodes,
            node_topics,
            topic_terms: self.topic_terms,
            term_topics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TopicSpace {
        let mut b = TopicSpaceBuilder::new(5, 4);
        let t0 = b.add_topic(vec![TermId(0), TermId(1)]);
        let t1 = b.add_topic(vec![TermId(0), TermId(2)]);
        let t2 = b.add_topic(vec![TermId(3)]);
        b.assign(NodeId(0), t0);
        b.assign(NodeId(1), t0);
        b.assign(NodeId(1), t1);
        b.assign(NodeId(4), t2);
        b.assign(NodeId(4), t2); // duplicate assignment collapses
        b.build()
    }

    #[test]
    fn counts() {
        let s = sample();
        assert_eq!(s.topic_count(), 3);
        assert_eq!(s.node_count(), 5);
        assert_eq!(s.term_count(), 4);
    }

    #[test]
    fn forward_and_reverse_indexes_agree() {
        let s = sample();
        assert_eq!(s.topic_nodes(TopicId(0)), &[NodeId(0), NodeId(1)]);
        assert_eq!(s.topic_nodes(TopicId(2)), &[NodeId(4)]);
        assert_eq!(s.node_topics(NodeId(1)), &[TopicId(0), TopicId(1)]);
        assert_eq!(s.node_topics(NodeId(3)), &[] as &[TopicId]);
        assert!(s.node_has_topic(NodeId(1), TopicId(1)));
        assert!(!s.node_has_topic(NodeId(0), TopicId(1)));
    }

    #[test]
    fn term_index() {
        let s = sample();
        assert_eq!(s.topics_for_term(TermId(0)), &[TopicId(0), TopicId(1)]);
        assert_eq!(s.topics_for_term(TermId(1)), &[TopicId(0)]);
        assert_eq!(s.topics_for_term(TermId(3)), &[TopicId(2)]);
    }

    #[test]
    fn topic_terms_sorted_dedup() {
        let mut b = TopicSpaceBuilder::new(1, 5);
        let t = b.add_topic(vec![TermId(3), TermId(1), TermId(3)]);
        let s = b.build();
        assert_eq!(s.topic_terms(t), &[TermId(1), TermId(3)]);
    }

    #[test]
    fn avg_topic_node_count() {
        let s = sample();
        // |V_t| = 2, 1, 1.
        assert!((s.avg_topic_node_count() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn assign_out_of_range_node_panics() {
        let mut b = TopicSpaceBuilder::new(2, 1);
        let t = b.add_topic(vec![TermId(0)]);
        b.assign(NodeId(9), t);
    }

    #[test]
    #[should_panic]
    fn add_topic_with_bad_term_panics() {
        let mut b = TopicSpaceBuilder::new(2, 1);
        b.add_topic(vec![TermId(5)]);
    }

    #[test]
    fn heap_size_positive() {
        assert!(sample().heap_size_bytes() > 0);
    }
}
