//! Keyword queries and query workloads.
//!
//! A PIT-Search query is "a keyword query q issued by a user v" (Definition
//! 2). The q-related topic set `T_q` is the union over the query's terms of
//! the topics whose term bag contains the term — exactly what Algorithm 10
//! line 1 retrieves from the topic space.

use crate::space::TopicSpace;
use pit_graph::{NodeId, TermId, TopicId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A keyword query issued by one user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeywordQuery {
    /// The query user `v`.
    pub user: NodeId,
    /// The query keywords (term ids).
    pub terms: Vec<TermId>,
}

impl KeywordQuery {
    /// Construct a query.
    pub fn new(user: NodeId, terms: Vec<TermId>) -> Self {
        KeywordQuery { user, terms }
    }

    /// The q-related topics `T_q`: union of topic postings over the query
    /// terms, sorted and deduplicated.
    pub fn related_topics(&self, space: &TopicSpace) -> Vec<TopicId> {
        let mut out: Vec<TopicId> = Vec::new();
        for &term in &self.terms {
            out.extend_from_slice(space.topics_for_term(term));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The paper's evaluation workload: "we select 100 tags to represent a user's
/// keyword queries … then we randomly select an additional 49 users, but keep
/// the 100 sampled keyword queries unchanged" (Section 6.2).
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    /// The sampled keyword set (one term per query, as in the paper's tags).
    pub terms: Vec<TermId>,
    /// The sampled query users.
    pub users: Vec<NodeId>,
}

impl QueryWorkload {
    /// Sample a workload of `n_terms` query terms and `n_users` users.
    ///
    /// Terms are drawn (without replacement) from the hub query terms —
    /// `term id < query_term_count` under the synthetic generator — falling
    /// back to the whole vocabulary when there are fewer hub terms than
    /// requested. Users are drawn uniformly without replacement.
    pub fn sample(
        space: &TopicSpace,
        node_count: usize,
        query_term_count: usize,
        n_terms: usize,
        n_users: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pool = query_term_count.min(space.term_count()).max(1);
        let terms = sample_without_replacement(pool, n_terms.min(pool), &mut rng)
            .into_iter()
            .map(TermId::from_index)
            .collect();
        let users = sample_without_replacement(node_count, n_users.min(node_count), &mut rng)
            .into_iter()
            .map(NodeId::from_index)
            .collect();
        QueryWorkload { terms, users }
    }

    /// Iterate the full cross product of `(user, single-term query)` pairs.
    pub fn queries(&self) -> impl Iterator<Item = KeywordQuery> + '_ {
        self.users.iter().flat_map(move |&u| {
            self.terms
                .iter()
                .map(move |&t| KeywordQuery::new(u, vec![t]))
        })
    }

    /// Total number of queries in the workload.
    pub fn len(&self) -> usize {
        self.users.len() * self.terms.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Floyd's algorithm for sampling `k` distinct values from `0..n`.
fn sample_without_replacement<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut chosen = rustc_hash::FxHashSet::default();
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::TopicSpaceBuilder;

    fn space() -> TopicSpace {
        let mut b = TopicSpaceBuilder::new(10, 3);
        let t0 = b.add_topic(vec![TermId(0)]);
        let t1 = b.add_topic(vec![TermId(0), TermId(1)]);
        let t2 = b.add_topic(vec![TermId(2)]);
        b.assign(NodeId(0), t0);
        b.assign(NodeId(1), t1);
        b.assign(NodeId(2), t2);
        b.build()
    }

    #[test]
    fn related_topics_union() {
        let s = space();
        let q = KeywordQuery::new(NodeId(0), vec![TermId(0)]);
        assert_eq!(q.related_topics(&s), vec![TopicId(0), TopicId(1)]);
        let q = KeywordQuery::new(NodeId(0), vec![TermId(0), TermId(2)]);
        assert_eq!(
            q.related_topics(&s),
            vec![TopicId(0), TopicId(1), TopicId(2)]
        );
    }

    #[test]
    fn related_topics_dedup() {
        let s = space();
        // Both terms hit topic 1's bag only once in the output.
        let q = KeywordQuery::new(NodeId(0), vec![TermId(0), TermId(1)]);
        let topics = q.related_topics(&s);
        assert_eq!(topics, vec![TopicId(0), TopicId(1)]);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let s = space();
        let q = KeywordQuery::new(NodeId(0), vec![]);
        assert!(q.related_topics(&s).is_empty());
    }

    #[test]
    fn workload_shapes() {
        let s = space();
        let w = QueryWorkload::sample(&s, 10, 3, 2, 4, 1);
        assert_eq!(w.terms.len(), 2);
        assert_eq!(w.users.len(), 4);
        assert_eq!(w.len(), 8);
        assert_eq!(w.queries().count(), 8);
        // Users distinct.
        let mut us = w.users.clone();
        us.sort_unstable();
        us.dedup();
        assert_eq!(us.len(), 4);
    }

    #[test]
    fn workload_deterministic() {
        let s = space();
        let a = QueryWorkload::sample(&s, 10, 3, 2, 4, 99);
        let b = QueryWorkload::sample(&s, 10, 3, 2, 4, 99);
        assert_eq!(a.terms, b.terms);
        assert_eq!(a.users, b.users);
    }

    #[test]
    fn workload_clamps_to_available() {
        let s = space();
        let w = QueryWorkload::sample(&s, 3, 3, 50, 50, 1);
        assert_eq!(w.terms.len(), 3);
        assert_eq!(w.users.len(), 3);
    }

    #[test]
    fn floyd_sampling_distinct() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let got = sample_without_replacement(20, 10, &mut rng);
            let mut s = got.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10);
            assert!(s.iter().all(|&x| x < 20));
        }
    }
}
