//! Synthetic topic-space generation.
//!
//! Substitutes the paper's LDA-over-tweets + HetRec-tag pipeline (Section
//! 6.1, "Topic Generation"). The generator reproduces the statistics the
//! PIT-Search algorithms are sensitive to:
//!
//! * **topics per keyword**: every topic carries exactly one *query term*
//!   drawn from a small hub vocabulary, so a single-keyword query matches
//!   `topic_count / query_term_count` topics on average (paper: 500+ topics
//!   per tag);
//! * **nodes per topic**: users adopt topics with Zipf-skewed popularity, so
//!   head topics have large `V_t` and the tail is sparse (paper: ~20,000
//!   topic nodes per q-related topic at 3 M users);
//! * **topics per user**: configurable mean (paper: ~200 topics per user).

use crate::space::{TopicSpace, TopicSpaceBuilder};
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use pit_graph::{NodeId, TermId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`generate_topic_space`].
#[derive(Clone, Debug)]
pub struct SyntheticTopicConfig {
    /// Total number of topics `|T|`.
    pub topic_count: usize,
    /// Number of hub "query terms"; each topic carries exactly one, so one
    /// keyword matches `topic_count / query_term_count` topics on average.
    pub query_term_count: usize,
    /// Long-tail vocabulary size (descriptive, non-query terms).
    pub tail_term_count: usize,
    /// Terms per topic, including the query term (paper: ~16 topic seeds).
    pub terms_per_topic: usize,
    /// Mean number of topics mentioned per user.
    pub topics_per_node_mean: f64,
    /// Zipf exponent for topic popularity (0 = uniform; ~1 is web-like).
    pub zipf_exponent: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl SyntheticTopicConfig {
    /// A small configuration suitable for unit tests and the 2 k dataset.
    pub fn small() -> Self {
        SyntheticTopicConfig {
            topic_count: 200,
            query_term_count: 10,
            tail_term_count: 400,
            terms_per_topic: 8,
            topics_per_node_mean: 8.0,
            zipf_exponent: 1.0,
            seed: 0x9157,
        }
    }
}

/// Generate a deterministic synthetic topic space over `node_count` users.
///
/// Returns the space plus the vocabulary; term ids `0..query_term_count` are
/// the hub query terms (named `query-0`, `query-1`, …), the rest are tail
/// terms (`tag-0`, `tag-1`, …).
///
/// Every topic is guaranteed a non-empty `V_t` (a lonely topic is assigned
/// one random user), matching the paper's setting where topics are by
/// construction extracted *from* users.
pub fn generate_topic_space(
    node_count: usize,
    cfg: &SyntheticTopicConfig,
) -> (TopicSpace, Vocabulary) {
    assert!(node_count > 0, "need at least one node");
    assert!(cfg.topic_count > 0, "need at least one topic");
    assert!(cfg.query_term_count > 0, "need at least one query term");
    assert!(
        cfg.terms_per_topic >= 1,
        "topics need at least their query term"
    );

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut vocab = Vocabulary::new();
    for i in 0..cfg.query_term_count {
        vocab.intern(&format!("query-{i}"));
    }
    for i in 0..cfg.tail_term_count {
        vocab.intern(&format!("tag-{i}"));
    }

    let mut builder = TopicSpaceBuilder::new(node_count, vocab.len());

    // Topic → term bag. Query term drawn Zipf-skewed over hub terms so some
    // keywords are "hotter" than others, like real tags.
    let hub_zipf = Zipf::new(cfg.query_term_count, 0.8);
    for _ in 0..cfg.topic_count {
        let mut terms = Vec::with_capacity(cfg.terms_per_topic);
        terms.push(TermId::from_index(hub_zipf.sample(&mut rng)));
        for _ in 1..cfg.terms_per_topic {
            if cfg.tail_term_count == 0 {
                break;
            }
            let tail = rng.gen_range(0..cfg.tail_term_count);
            terms.push(TermId::from_index(cfg.query_term_count + tail));
        }
        builder.add_topic(terms);
    }

    // Node → topic sets with Zipf-skewed topic popularity.
    let topic_zipf = Zipf::new(cfg.topic_count, cfg.zipf_exponent);
    let mut assigned = vec![false; cfg.topic_count];
    for v in 0..node_count {
        // Per-user topic count: uniform in [mean/2, 3*mean/2], at least 1.
        let lo = (cfg.topics_per_node_mean * 0.5).max(1.0) as usize;
        let hi = (cfg.topics_per_node_mean * 1.5).max(2.0) as usize;
        let k = rng.gen_range(lo..=hi);
        for _ in 0..k {
            let t = topic_zipf.sample(&mut rng);
            assigned[t] = true;
            builder.assign(NodeId::from_index(v), pit_graph::TopicId::from_index(t));
        }
    }

    // Guarantee non-empty V_t for every topic.
    for (t, was_assigned) in assigned.iter().enumerate() {
        if !was_assigned {
            let v = rng.gen_range(0..node_count);
            builder.assign(NodeId::from_index(v), pit_graph::TopicId::from_index(t));
        }
    }

    (builder.build(), vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::TopicId;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = SyntheticTopicConfig::small();
        let (a, _) = generate_topic_space(100, &cfg);
        let (b, _) = generate_topic_space(100, &cfg);
        for t in a.topics() {
            assert_eq!(a.topic_nodes(t), b.topic_nodes(t));
            assert_eq!(a.topic_terms(t), b.topic_terms(t));
        }
    }

    #[test]
    fn different_seed_differs() {
        let cfg = SyntheticTopicConfig::small();
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 0xdead_beef;
        let (a, _) = generate_topic_space(200, &cfg);
        let (b, _) = generate_topic_space(200, &cfg2);
        let differs = a.topics().any(|t| a.topic_nodes(t) != b.topic_nodes(t));
        assert!(differs);
    }

    #[test]
    fn every_topic_has_nodes() {
        let cfg = SyntheticTopicConfig::small();
        let (s, _) = generate_topic_space(50, &cfg);
        for t in s.topics() {
            assert!(!s.topic_nodes(t).is_empty(), "topic {t} has empty V_t");
        }
    }

    #[test]
    fn every_topic_has_a_query_term() {
        let cfg = SyntheticTopicConfig::small();
        let (s, _) = generate_topic_space(50, &cfg);
        for t in s.topics() {
            let has_query = s
                .topic_terms(t)
                .iter()
                .any(|term| term.index() < cfg.query_term_count);
            assert!(has_query, "topic {t} lacks a query term");
        }
    }

    #[test]
    fn query_terms_match_many_topics() {
        let cfg = SyntheticTopicConfig::small();
        let (s, _) = generate_topic_space(100, &cfg);
        // The hottest query term should cover well above the uniform share.
        let max_cover = (0..cfg.query_term_count)
            .map(|i| s.topics_for_term(TermId::from_index(i)).len())
            .max()
            .unwrap();
        assert!(
            max_cover * cfg.query_term_count >= cfg.topic_count,
            "hot term covers too few topics: {max_cover}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = SyntheticTopicConfig {
            topic_count: 100,
            zipf_exponent: 1.2,
            ..SyntheticTopicConfig::small()
        };
        let (s, _) = generate_topic_space(2_000, &cfg);
        let head = s.topic_nodes(TopicId(0)).len();
        let tail = s.topic_nodes(TopicId(90)).len();
        assert!(head > 5 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn vocab_layout() {
        let cfg = SyntheticTopicConfig::small();
        let (_, vocab) = generate_topic_space(10, &cfg);
        assert_eq!(vocab.len(), cfg.query_term_count + cfg.tail_term_count);
        assert!(vocab.get("query-0").is_some());
        assert!(vocab.get("tag-0").is_some());
    }
}
