//! # pit-topics
//!
//! The topic space `T` of the PIT-Search model, with both inverted indexes
//! the paper's algorithms consume:
//!
//! * the **inverted node index** `topic → V_t` (Algorithms 1, 7, 8 all begin
//!   with "Get topic node set `V_t` for `t` from inverted node index"), and
//! * the **keyword → topic** term index used by the online search
//!   (Algorithm 10 line 1: "Get query-related topics `T_q` from topic space").
//!
//! The paper builds its topic space from 50 M tweets with LDA plus the
//! HetRec-2011 tag vocabulary. That corpus is proprietary, so [`synth`]
//! implements the closest synthetic equivalent (documented in DESIGN.md §5):
//! Zipf-distributed topic popularity, per-user topic sets drawn with
//! popularity bias, and per-topic term bags that share common "query terms"
//! so a single keyword matches many topics — the statistic that actually
//! drives search cost (the paper reports ~500+ topics matched per query tag).

#![forbid(unsafe_code)]

pub mod lda;
pub mod query;
pub mod snapshot;
pub mod space;
pub mod synth;
pub mod vocab;
pub mod zipf;

pub use lda::{extract_topic_space, LdaConfig, LdaModel};
pub use query::{KeywordQuery, QueryWorkload};
pub use space::{TopicSpace, TopicSpaceBuilder};
pub use synth::{generate_topic_space, SyntheticTopicConfig};
pub use vocab::Vocabulary;
