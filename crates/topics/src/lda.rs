//! A small Latent Dirichlet Allocation implementation (collapsed Gibbs
//! sampling) — the paper's topic-extraction substrate.
//!
//! Section 6.1: "Given a Twitter user, we first treat the posted messages as
//! a document, and apply a simple LDA topic model to the document to generate
//! a bag of terms (normally 16 terms) to be topic seeds of this user."
//! The tweets themselves are proprietary, but the *pipeline* is fully
//! reproducible: [`LdaModel::fit`] learns topic–term distributions from any
//! bag-of-words corpus, and [`extract_topic_space`] turns per-user documents
//! into the `TopicSpace` the rest of the system consumes — an alternative to
//! the statistics-matched generator in [`crate::synth`].
//!
//! The sampler is the standard collapsed Gibbs update
//! `P(z = t) ∝ (n_dt + α) · (n_tw + β) / (n_t + Wβ)`, fully deterministic
//! for a given seed.

use crate::space::{TopicSpace, TopicSpaceBuilder};
use pit_graph::{NodeId, TermId, TopicId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A document is a bag of term occurrences.
pub type Document = Vec<TermId>;

/// LDA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LdaConfig {
    /// Number of latent topics `K`.
    pub topics: usize,
    /// Dirichlet prior on per-document topic mixtures (`α`).
    pub alpha: f64,
    /// Dirichlet prior on per-topic term distributions (`β`).
    pub beta: f64,
    /// Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            topics: 16,
            alpha: 0.5,
            beta: 0.1,
            iterations: 60,
            seed: 0x1DA,
        }
    }
}

/// A fitted LDA model: count matrices from the final Gibbs state.
#[derive(Clone, Debug)]
pub struct LdaModel {
    config: LdaConfig,
    vocab_size: usize,
    /// `n_tw[t * W + w]` — occurrences of term `w` assigned to topic `t`.
    topic_term: Vec<u32>,
    /// `n_t[t]` — total occurrences assigned to topic `t`.
    topic_total: Vec<u32>,
    /// `n_dt[d * K + t]` — occurrences in document `d` assigned to topic `t`.
    doc_topic: Vec<u32>,
    /// Document lengths.
    doc_len: Vec<u32>,
}

impl LdaModel {
    /// Fit a model to `docs` over a vocabulary of `vocab_size` terms by
    /// collapsed Gibbs sampling.
    ///
    /// # Panics
    /// Panics on an empty corpus, zero topics, or a term id outside the
    /// vocabulary.
    pub fn fit(docs: &[Document], vocab_size: usize, config: LdaConfig) -> Self {
        assert!(!docs.is_empty(), "corpus must be non-empty");
        assert!(config.topics > 0, "need at least one topic");
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        let k = config.topics;
        let w_count = vocab_size;
        let mut rng = SmallRng::seed_from_u64(config.seed);

        let mut topic_term = vec![0u32; k * w_count];
        let mut topic_total = vec![0u32; k];
        let mut doc_topic = vec![0u32; docs.len() * k];
        let mut doc_len = vec![0u32; docs.len()];
        // Current assignment per token, flattened in corpus order.
        let mut assign: Vec<u8> = Vec::new();
        assert!(
            k <= u8::MAX as usize + 1,
            "topic count exceeds u8 assignment storage"
        );

        // Random initialization.
        for (d, doc) in docs.iter().enumerate() {
            doc_len[d] = doc.len() as u32;
            for &term in doc {
                assert!(term.index() < w_count, "term {term} outside vocabulary");
                let t = rng.gen_range(0..k);
                assign.push(t as u8);
                topic_term[t * w_count + term.index()] += 1;
                topic_total[t] += 1;
                doc_topic[d * k + t] += 1;
            }
        }

        // Collapsed Gibbs sweeps.
        let mut weights = vec![0.0f64; k];
        for _ in 0..config.iterations {
            let mut token = 0usize;
            for (d, doc) in docs.iter().enumerate() {
                for &term in doc {
                    let old = assign[token] as usize;
                    // Remove the token from the counts.
                    topic_term[old * w_count + term.index()] -= 1;
                    topic_total[old] -= 1;
                    doc_topic[d * k + old] -= 1;

                    // Sample a new topic.
                    let mut total = 0.0;
                    for (t, wslot) in weights.iter_mut().enumerate() {
                        let p = (doc_topic[d * k + t] as f64 + config.alpha)
                            * (topic_term[t * w_count + term.index()] as f64 + config.beta)
                            / (topic_total[t] as f64 + w_count as f64 * config.beta);
                        *wslot = p;
                        total += p;
                    }
                    let mut x = rng.gen::<f64>() * total;
                    let mut new = k - 1;
                    for (t, &p) in weights.iter().enumerate() {
                        x -= p;
                        if x <= 0.0 {
                            new = t;
                            break;
                        }
                    }

                    assign[token] = new as u8;
                    topic_term[new * w_count + term.index()] += 1;
                    topic_total[new] += 1;
                    doc_topic[d * k + new] += 1;
                    token += 1;
                }
            }
        }

        LdaModel {
            config,
            vocab_size,
            topic_term,
            topic_total,
            doc_topic,
            doc_len,
        }
    }

    /// Number of latent topics `K`.
    pub fn topic_count(&self) -> usize {
        self.config.topics
    }

    /// Number of documents the model was fitted on.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Smoothed probability of `term` under latent topic `t` (`φ_tw`).
    pub fn term_prob(&self, t: usize, term: TermId) -> f64 {
        (self.topic_term[t * self.vocab_size + term.index()] as f64 + self.config.beta)
            / (self.topic_total[t] as f64 + self.vocab_size as f64 * self.config.beta)
    }

    /// Smoothed probability of latent topic `t` in document `d` (`θ_dt`).
    pub fn doc_topic_prob(&self, d: usize, t: usize) -> f64 {
        let k = self.config.topics;
        (self.doc_topic[d * k + t] as f64 + self.config.alpha)
            / (self.doc_len[d] as f64 + k as f64 * self.config.alpha)
    }

    /// The `n` highest-probability terms of latent topic `t` — the paper's
    /// "bag of terms (normally 16 terms)".
    pub fn top_terms(&self, t: usize, n: usize) -> Vec<TermId> {
        let mut order: Vec<u32> = (0..self.vocab_size as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let pa = self.topic_term[t * self.vocab_size + a as usize];
            let pb = self.topic_term[t * self.vocab_size + b as usize];
            pb.cmp(&pa).then(a.cmp(&b))
        });
        order.truncate(n);
        order.into_iter().map(TermId).collect()
    }

    /// Latent topics of document `d` whose share exceeds `min_share`,
    /// strongest first.
    pub fn dominant_topics(&self, d: usize, min_share: f64) -> Vec<usize> {
        let mut topics: Vec<(usize, f64)> = (0..self.config.topics)
            .map(|t| (t, self.doc_topic_prob(d, t)))
            .filter(|&(_, p)| p >= min_share)
            .collect();
        topics.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        topics.into_iter().map(|(t, _)| t).collect()
    }
}

/// Build a [`TopicSpace`] from per-user documents via a fitted model —
/// the paper's end-to-end topic-generation pipeline: user `u` mentions
/// latent topic `t` when `t`'s share of `u`'s document is at least
/// `min_share`; each topic's term bag is its `terms_per_topic` top terms.
///
/// `docs[u]` must be user `u`'s document (one per graph node).
pub fn extract_topic_space(
    model: &LdaModel,
    docs_len: usize,
    vocab_size: usize,
    terms_per_topic: usize,
    min_share: f64,
) -> TopicSpace {
    assert_eq!(
        model.doc_count(),
        docs_len,
        "one document per user required"
    );
    let mut b = TopicSpaceBuilder::new(docs_len, vocab_size);
    for t in 0..model.topic_count() {
        let id = b.add_topic(model.top_terms(t, terms_per_topic));
        debug_assert_eq!(id, TopicId::from_index(t));
    }
    for d in 0..docs_len {
        for t in model.dominant_topics(d, min_share) {
            b.assign(NodeId::from_index(d), TopicId::from_index(t));
        }
    }
    b.build()
}

/// Generate a synthetic corpus from a *known* mixture for testing: `k`
/// ground-truth topics with disjoint term blocks of size `block`, each
/// document drawing all its tokens from 1–2 topics.
pub fn synthetic_corpus(
    n_docs: usize,
    k: usize,
    block: usize,
    tokens_per_doc: usize,
    seed: u64,
) -> (Vec<Document>, usize) {
    let vocab_size = k * block;
    let mut rng = SmallRng::seed_from_u64(seed);
    let docs = (0..n_docs)
        .map(|_| {
            let primary = rng.gen_range(0..k);
            let secondary = rng.gen_range(0..k);
            (0..tokens_per_doc)
                .map(|_| {
                    let topic = if rng.gen::<f64>() < 0.8 {
                        primary
                    } else {
                        secondary
                    };
                    TermId::from_index(topic * block + rng.gen_range(0..block))
                })
                .collect()
        })
        .collect();
    (docs, vocab_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> (Vec<Document>, usize, LdaModel) {
        let (docs, vocab) = synthetic_corpus(120, 4, 12, 40, 7);
        let model = LdaModel::fit(
            &docs,
            vocab,
            LdaConfig {
                topics: 4,
                iterations: 80,
                ..LdaConfig::default()
            },
        );
        (docs, vocab, model)
    }

    /// Each learned topic's top terms should concentrate in one ground-truth
    /// term block, and the four learned topics should cover all four blocks.
    #[test]
    fn recovers_ground_truth_blocks() {
        let (_docs, _vocab, model) = fitted();
        let block = 12usize;
        let mut covered = [false; 4];
        for t in 0..4 {
            let top = model.top_terms(t, 8);
            // Majority block of the top terms.
            let mut counts = [0usize; 4];
            for term in &top {
                counts[term.index() / block] += 1;
            }
            let (best_block, &n) = counts.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap();
            assert!(
                n >= 6,
                "learned topic {t} is not concentrated: top terms {top:?}"
            );
            covered[best_block] = true;
        }
        assert!(
            covered.iter().all(|&c| c),
            "learned topics do not cover all ground-truth blocks: {covered:?}"
        );
    }

    #[test]
    fn distributions_are_normalized() {
        let (_docs, vocab, model) = fitted();
        for t in 0..model.topic_count() {
            let total: f64 = (0..vocab)
                .map(|w| model.term_prob(t, TermId::from_index(w)))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "φ_{t} sums to {total}");
        }
        for d in [0usize, 50, 119] {
            let total: f64 = (0..model.topic_count())
                .map(|t| model.doc_topic_prob(d, t))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "θ_{d} sums to {total}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, vocab) = synthetic_corpus(40, 3, 8, 25, 3);
        let cfg = LdaConfig {
            topics: 3,
            iterations: 30,
            ..LdaConfig::default()
        };
        let a = LdaModel::fit(&docs, vocab, cfg);
        let b = LdaModel::fit(&docs, vocab, cfg);
        for t in 0..3 {
            assert_eq!(a.top_terms(t, 5), b.top_terms(t, 5));
        }
    }

    #[test]
    fn extract_topic_space_pipeline() {
        let (docs, vocab, model) = fitted();
        let space = extract_topic_space(&model, docs.len(), vocab, 16, 0.3);
        assert_eq!(space.topic_count(), 4);
        assert_eq!(space.node_count(), docs.len());
        // Every user mentions at least one topic (their primary has ≥ 0.3
        // share in a 2-topic mixture with 80/20 split — overwhelmingly).
        let covered = (0..docs.len())
            .filter(|&d| !space.node_topics(NodeId::from_index(d)).is_empty())
            .count();
        assert!(
            covered * 10 >= docs.len() * 9,
            "only {covered}/{} users got topics",
            docs.len()
        );
        // Term bags have the requested size.
        for t in space.topics() {
            assert_eq!(space.topic_terms(t).len(), 16);
        }
    }

    #[test]
    fn dominant_topics_ordering() {
        let (_docs, _vocab, model) = fitted();
        for d in 0..5 {
            let tops = model.dominant_topics(d, 0.0);
            assert_eq!(tops.len(), 4);
            let probs: Vec<f64> = tops.iter().map(|&t| model.doc_topic_prob(d, t)).collect();
            assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_empty_corpus() {
        let _ = LdaModel::fit(&[], 10, LdaConfig::default());
    }
}
