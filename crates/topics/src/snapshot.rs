//! Binary snapshots of the topic space and vocabulary.
//!
//! Complements the graph snapshot in `pit-graph`: together they make a
//! generated corpus fully reloadable without regeneration.

use crate::space::{TopicSpace, TopicSpaceBuilder};
use crate::vocab::Vocabulary;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pit_graph::{NodeId, TermId};

const SPACE_MAGIC: &[u8; 4] = b"PITT";
const VOCAB_MAGIC: &[u8; 4] = b"PITV";
const VERSION: u8 = 1;

/// Snapshot decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt topic snapshot: {}", self.0)
    }
}
impl std::error::Error for SnapshotError {}

fn err(msg: &str) -> SnapshotError {
    SnapshotError(msg.to_string())
}

/// Serialize a topic space.
pub fn encode_space(space: &TopicSpace) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(SPACE_MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(space.node_count() as u64);
    buf.put_u64_le(space.term_count() as u64);
    buf.put_u64_le(space.topic_count() as u64);
    for t in space.topics() {
        let terms = space.topic_terms(t);
        buf.put_u32_le(terms.len() as u32);
        for &term in terms {
            buf.put_u32_le(term.0);
        }
        let nodes = space.topic_nodes(t);
        buf.put_u32_le(nodes.len() as u32);
        for &n in nodes {
            buf.put_u32_le(n.0);
        }
    }
    buf.freeze()
}

/// Deserialize a topic space produced by [`encode_space`].
pub fn decode_space(mut data: &[u8]) -> Result<TopicSpace, SnapshotError> {
    if data.len() < 4 + 1 + 24 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != SPACE_MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let node_count = data.get_u64_le() as usize;
    let term_count = data.get_u64_le() as usize;
    let topic_count = data.get_u64_le() as usize;
    // Bound header counts before any count-proportional allocation: ids are
    // u32 and the builder materializes per-node/per-term vectors.
    if node_count > pit_graph::snapshot::MAX_NODES
        || term_count > pit_graph::snapshot::MAX_NODES
        || topic_count.saturating_mul(8) > data.remaining()
    {
        return Err(err("header count exceeds format limit or payload"));
    }
    let mut b = TopicSpaceBuilder::new(node_count, term_count);
    for _ in 0..topic_count {
        if data.remaining() < 4 {
            return Err(err("truncated term count"));
        }
        let nt = data.get_u32_le() as usize;
        if data.remaining() < nt * 4 + 4 {
            return Err(err("truncated terms"));
        }
        let mut terms = Vec::with_capacity(nt);
        for _ in 0..nt {
            let term = data.get_u32_le();
            if term as usize >= term_count {
                return Err(err("term out of range"));
            }
            terms.push(TermId(term));
        }
        let topic = b.add_topic(terms);
        let nn = data.get_u32_le() as usize;
        if data.remaining() < nn * 4 {
            return Err(err("truncated members"));
        }
        for _ in 0..nn {
            let node = data.get_u32_le();
            if node as usize >= node_count {
                return Err(err("member out of range"));
            }
            b.assign(NodeId(node), topic);
        }
    }
    if data.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(b.build())
}

/// Serialize a vocabulary.
pub fn encode_vocab(vocab: &Vocabulary) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(VOCAB_MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(vocab.len() as u64);
    for i in 0..vocab.len() {
        let term = vocab.term(TermId::from_index(i));
        buf.put_u32_le(term.len() as u32);
        buf.put_slice(term.as_bytes());
    }
    buf.freeze()
}

/// Deserialize a vocabulary produced by [`encode_vocab`].
pub fn decode_vocab(mut data: &[u8]) -> Result<Vocabulary, SnapshotError> {
    if data.len() < 4 + 1 + 8 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != VOCAB_MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let n = data.get_u64_le() as usize;
    let mut vocab = Vocabulary::new();
    for i in 0..n {
        if data.remaining() < 4 {
            return Err(err("truncated term length"));
        }
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(err("truncated term bytes"));
        }
        let bytes = &data[..len];
        let s = std::str::from_utf8(bytes).map_err(|_| err("term is not UTF-8"))?;
        let id = vocab.intern(s);
        if id.index() != i {
            return Err(err("duplicate term in vocabulary"));
        }
        data.advance(len);
    }
    if data.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_topic_space, SyntheticTopicConfig};

    #[test]
    fn space_roundtrip() {
        let (space, _) = generate_topic_space(50, &SyntheticTopicConfig::small());
        let restored = decode_space(&encode_space(&space)).unwrap();
        assert_eq!(restored.topic_count(), space.topic_count());
        assert_eq!(restored.node_count(), space.node_count());
        assert_eq!(restored.term_count(), space.term_count());
        for t in space.topics() {
            assert_eq!(restored.topic_nodes(t), space.topic_nodes(t));
            assert_eq!(restored.topic_terms(t), space.topic_terms(t));
        }
        for term in 0..space.term_count() {
            let term = TermId::from_index(term);
            assert_eq!(restored.topics_for_term(term), space.topics_for_term(term));
        }
    }

    #[test]
    fn vocab_roundtrip() {
        let (_, vocab) = generate_topic_space(20, &SyntheticTopicConfig::small());
        let restored = decode_vocab(&encode_vocab(&vocab)).unwrap();
        assert_eq!(restored.len(), vocab.len());
        for i in 0..vocab.len() {
            let id = TermId::from_index(i);
            assert_eq!(restored.term(id), vocab.term(id));
        }
        // Lookup map rebuilt through interning.
        assert_eq!(restored.get("query-0"), vocab.get("query-0"));
    }

    #[test]
    fn rejects_corruption() {
        let (space, vocab) = generate_topic_space(20, &SyntheticTopicConfig::small());
        let sb = encode_space(&space);
        let vb = encode_vocab(&vocab);
        assert!(decode_space(&sb[..8]).is_err());
        assert!(decode_vocab(&vb[..8]).is_err());
        let mut bad = sb.to_vec();
        bad[0] = b'X';
        assert!(decode_space(&bad).is_err());
        let mut bad = vb.to_vec();
        bad[0] = b'X';
        assert!(decode_vocab(&bad).is_err());
        // Swapped streams.
        assert!(decode_space(&vb).is_err());
        assert!(decode_vocab(&sb).is_err());
    }

    #[test]
    fn vocab_rejects_invalid_utf8() {
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"PITV");
        buf.put_u8(1);
        buf.put_u64_le(1);
        buf.put_u32_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(decode_vocab(&buf).is_err());
    }
}
