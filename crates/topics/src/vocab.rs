//! Term vocabulary: interned keyword strings.
//!
//! Stands in for the paper's HetRec-2011 tag vocabulary (53,388 tags). Query
//! keywords and topic term bags both reference terms by [`TermId`].

use pit_graph::TermId;
use rustc_hash::FxHashMap;

/// Bidirectional term interner.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    lookup: FxHashMap<String, TermId>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern `term`, returning its id (existing id if already present).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id = TermId::from_index(self.terms.len());
        self.terms.push(term.to_string());
        self.lookup.insert(term.to_string(), id);
        id
    }

    /// Look up an existing term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.lookup.get(term).copied()
    }

    /// The string of a term id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Rebuild the lookup map (needed after deserialization, where the map is
    /// skipped).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), TermId::from_index(i)))
            .collect();
    }

    /// Generate a synthetic vocabulary of `n` tags: `tag-0 .. tag-{n-1}`.
    pub fn synthetic(n: usize) -> Self {
        let mut v = Vocabulary::new();
        for i in 0..n {
            v.intern(&format!("tag-{i}"));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("phone");
        let b = v.intern("phone");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn roundtrip_lookup() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let s = v.intern("samsung");
        assert_eq!(v.get("apple"), Some(a));
        assert_eq!(v.get("samsung"), Some(s));
        assert_eq!(v.get("htc"), None);
        assert_eq!(v.term(a), "apple");
        assert_eq!(v.term(s), "samsung");
    }

    #[test]
    fn synthetic_has_distinct_terms() {
        let v = Vocabulary::synthetic(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.term(TermId(0)), "tag-0");
        assert_eq!(v.term(TermId(99)), "tag-99");
        assert!(v.get("tag-50").is_some());
    }

    #[test]
    fn rebuild_lookup_restores_queries() {
        let mut v = Vocabulary::synthetic(5);
        v.lookup.clear(); // simulate deserialization
        assert_eq!(v.get("tag-2"), None);
        v.rebuild_lookup();
        assert_eq!(v.get("tag-2"), Some(TermId(2)));
    }
}
