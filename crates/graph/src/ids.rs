//! Strongly-typed identifiers used across the PIT-Search workspace.
//!
//! All identifiers are `u32` newtypes: a social graph at the paper's scale
//! (3 M nodes) fits comfortably in 32 bits, and halving the index footprint
//! relative to `usize` matters for the walk and propagation indexes.

use std::fmt;

/// Identifier of a social user (a node of the graph).
///
/// Dense: valid ids are `0..graph.node_count()`.
/// `repr(transparent)`: id arrays are layout-identical to `u32` arrays, so
/// flat snapshots can view them in place (see the `Pod` impls below).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(pub u32);

/// Identifier of a topic in the topic space `T`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct TopicId(pub u32);

/// Identifier of a query term (keyword) in the term vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct TermId(pub u32);

macro_rules! id_impls {
    ($t:ident, $tag:literal) => {
        impl $t {
            /// The `usize` index of this id, for slice/array indexing.
            #[inline(always)]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[inline(always)]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(
                    i <= u32::MAX as usize,
                    concat!($tag, " index overflows u32")
                );
                $t(i as u32)
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "({})"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u32> for $t {
            #[inline(always)]
            fn from(v: u32) -> Self {
                $t(v)
            }
        }

        impl From<$t> for u32 {
            #[inline(always)]
            fn from(v: $t) -> u32 {
                v.0
            }
        }
    };
}

id_impls!(NodeId, "NodeId");
id_impls!(TopicId, "TopicId");
id_impls!(TermId, "TermId");

macro_rules! id_pod {
    ($t:ident) => {
        // SAFETY: `$t` is `#[repr(transparent)]` over `u32` — no padding, no
        // niches, size == align == 4, and every 32-bit pattern is a valid id
        // value (range checks are the reader's job, not the type's) — so the
        // in-memory representation equals the on-disk little-endian `u32`
        // representation on little-endian targets.
        #[allow(unsafe_code)]
        unsafe impl pit_store::Pod for $t {
            const ELEM: pit_store::ElemType = pit_store::ElemType::U32;
            const NAME: &'static str = stringify!($t);

            fn put_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.0.to_le_bytes());
            }

            fn from_le(bytes: &[u8]) -> Self {
                $t(<u32 as pit_store::Pod>::from_le(bytes))
            }
        }
    };
}

id_pod!(NodeId);
id_pod!(TopicId);
id_pod!(TermId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property really, but check Display/Debug formatting.
        assert_eq!(format!("{}", TopicId(7)), "7");
        assert_eq!(format!("{:?}", TopicId(7)), "TopicId(7)");
        assert_eq!(format!("{:?}", TermId(3)), "TermId(3)");
        assert_eq!(format!("{:?}", NodeId(1)), "NodeId(1)");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(TopicId(0) < TopicId(u32::MAX));
    }

    #[test]
    fn hashable_in_fx_map() {
        let mut m = rustc_hash::FxHashMap::default();
        m.insert(NodeId(5), 1.0f64);
        assert_eq!(m.get(&NodeId(5)), Some(&1.0));
    }
}
