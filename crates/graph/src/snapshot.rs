//! Compact binary snapshots of a graph.
//!
//! The paper's offline stage is re-run "after a period of time when the
//! social network and topics have changed" (Section 4.4); persisting the graph
//! between offline runs avoids regenerating synthetic datasets for every
//! benchmark invocation. Format: little-endian, versioned, length-prefixed
//! edge list — deliberately boring and validated on load.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::ids::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PITG";
const VERSION: u8 = 1;

/// Format limit on the node count: ids are `u32`, and bounding the header
/// field keeps a corrupt snapshot from requesting an absurd allocation
/// before validation can reject it (2^26 ≈ 67 M nodes is 20× the paper's
/// full-scale dataset).
pub const MAX_NODES: usize = 1 << 26;

/// Serialize `g` into a self-describing byte buffer.
pub fn encode(g: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + g.edge_count() * 12);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(g.node_count() as u32);
    buf.put_u64_le(g.edge_count() as u64);
    for (u, v, p) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
        buf.put_f64_le(p);
    }
    buf.freeze()
}

/// Deserialize a graph previously produced by [`encode`].
pub fn decode(mut data: &[u8]) -> Result<CsrGraph> {
    let corrupt = |msg: &str| GraphError::CorruptSnapshot(msg.to_string());
    if data.len() < 4 + 1 + 4 + 8 {
        return Err(corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(GraphError::CorruptSnapshot(format!(
            "unsupported version {version}"
        )));
    }
    let node_count = data.get_u32_le() as usize;
    let edge_count = data.get_u64_le() as usize;
    if node_count > MAX_NODES {
        return Err(corrupt("node count exceeds format limit"));
    }
    if data.remaining() != edge_count.saturating_mul(16) {
        return Err(corrupt("edge payload length mismatch"));
    }
    let mut b = GraphBuilder::with_capacity(node_count, edge_count);
    for _ in 0..edge_count {
        let u = NodeId(data.get_u32_le());
        let v = NodeId(data.get_u32_le());
        let p = data.get_f64_le();
        b.add_edge(u, v, p)
            .map_err(|e| GraphError::CorruptSnapshot(format!("invalid edge: {e}")))?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = figure1_graph();
        let bytes = encode(&g);
        let g2 = decode(&bytes).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn rejects_bad_magic() {
        let g = figure1_graph();
        let mut bytes = encode(&g).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes),
            Err(GraphError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let g = figure1_graph();
        let bytes = encode(&g);
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3]),
            Err(GraphError::CorruptSnapshot(_))
        ));
        assert!(matches!(
            decode(&bytes[..5]),
            Err(GraphError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let g = figure1_graph();
        let mut bytes = encode(&g).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode(&bytes),
            Err(GraphError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn rejects_invalid_probability_payload() {
        let g = figure1_graph();
        let mut bytes = encode(&g).to_vec();
        // Corrupt first edge probability with NaN.
        let prob_offset = 4 + 1 + 4 + 8 + 8;
        bytes[prob_offset..prob_offset + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(GraphError::CorruptSnapshot(_))
        ));
    }
}
