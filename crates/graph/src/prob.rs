//! Transition-probability models for `Λ`.
//!
//! The paper takes `Λ` as given ("Λ maintains the transition probability of
//! edges in E"), and derives edge probabilities from the social data. When we
//! generate synthetic networks we need a concrete model; these are the
//! standard choices from the influence-propagation literature the paper
//! builds on (Kempe et al.'s independent-cascade conventions).

use crate::ids::NodeId;
use rand::Rng;

/// How transition probabilities are assigned to edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbabilityModel {
    /// The classic *weighted cascade*: `Λ(u,v) = 1 / in_degree(v)`. Influence
    /// arriving at a popular node is diluted across its followers.
    WeightedCascade,
    /// Constant probability `p` on every edge (*uniform IC model*).
    Uniform(f64),
    /// Independent uniform draw in `[lo, hi]` per edge (what the paper's
    /// Figure 1 example resembles: heterogeneous hand-assigned weights).
    RandomRange { lo: f64, hi: f64 },
    /// Random draw per edge, then each node's out-edge mass normalized to 1,
    /// making `Λ` a proper row-stochastic random-walk matrix.
    RandomOutNormalized,
    /// Keep the weights supplied explicitly to the builder.
    Explicit,
}

impl ProbabilityModel {
    /// Assign probabilities to `edges` in place according to the model.
    ///
    /// `in_degree[v]` must hold the final in-degree of every node when the
    /// model is [`ProbabilityModel::WeightedCascade`].
    pub fn assign<R: Rng>(
        &self,
        edges: &mut [(NodeId, NodeId, f64)],
        in_degree: &[u32],
        rng: &mut R,
    ) {
        match *self {
            ProbabilityModel::WeightedCascade => {
                for (_, v, p) in edges.iter_mut() {
                    let d = in_degree[v.index()].max(1);
                    *p = 1.0 / d as f64;
                }
            }
            ProbabilityModel::Uniform(q) => {
                for (_, _, p) in edges.iter_mut() {
                    *p = q;
                }
            }
            ProbabilityModel::RandomRange { lo, hi } => {
                for (_, _, p) in edges.iter_mut() {
                    *p = rng.gen_range(lo..=hi);
                }
            }
            ProbabilityModel::RandomOutNormalized => {
                for (_, _, p) in edges.iter_mut() {
                    *p = rng.gen_range(0.05f64..1.0);
                }
                // Normalize per source. Edges are not necessarily grouped, so
                // accumulate out-mass first.
                let n = in_degree.len();
                let mut mass = vec![0.0f64; n];
                for &(u, _, p) in edges.iter() {
                    mass[u.index()] += p;
                }
                for (u, _, p) in edges.iter_mut() {
                    let m = mass[u.index()];
                    if m > 0.0 {
                        *p /= m;
                    }
                }
            }
            ProbabilityModel::Explicit => {}
        }
    }

    /// Whether this model guarantees every edge probability lies in `(0, 1]`.
    pub fn always_valid(&self) -> bool {
        match *self {
            ProbabilityModel::WeightedCascade | ProbabilityModel::RandomOutNormalized => true,
            ProbabilityModel::Uniform(p) => p > 0.0 && p <= 1.0,
            ProbabilityModel::RandomRange { lo, hi } => lo > 0.0 && hi <= 1.0 && lo <= hi,
            ProbabilityModel::Explicit => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_edges() -> Vec<(NodeId, NodeId, f64)> {
        vec![
            (NodeId(0), NodeId(1), 0.0),
            (NodeId(0), NodeId(2), 0.0),
            (NodeId(1), NodeId(2), 0.0),
            (NodeId(3), NodeId(2), 0.0),
        ]
    }

    fn in_degrees(edges: &[(NodeId, NodeId, f64)], n: usize) -> Vec<u32> {
        let mut d = vec![0u32; n];
        for &(_, v, _) in edges {
            d[v.index()] += 1;
        }
        d
    }

    #[test]
    fn weighted_cascade_is_one_over_indegree() {
        let mut edges = sample_edges();
        let indeg = in_degrees(&edges, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        ProbabilityModel::WeightedCascade.assign(&mut edges, &indeg, &mut rng);
        // Node 2 has in-degree 3, node 1 has in-degree 1.
        assert!((edges[0].2 - 1.0).abs() < 1e-12); // 0->1
        assert!((edges[1].2 - 1.0 / 3.0).abs() < 1e-12); // 0->2
        assert!((edges[3].2 - 1.0 / 3.0).abs() < 1e-12); // 3->2
    }

    #[test]
    fn uniform_sets_constant() {
        let mut edges = sample_edges();
        let indeg = in_degrees(&edges, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        ProbabilityModel::Uniform(0.1).assign(&mut edges, &indeg, &mut rng);
        assert!(edges.iter().all(|&(_, _, p)| (p - 0.1).abs() < 1e-12));
    }

    #[test]
    fn random_range_within_bounds_and_deterministic() {
        let mut e1 = sample_edges();
        let mut e2 = sample_edges();
        let indeg = in_degrees(&e1, 4);
        let model = ProbabilityModel::RandomRange { lo: 0.2, hi: 0.8 };
        model.assign(&mut e1, &indeg, &mut SmallRng::seed_from_u64(7));
        model.assign(&mut e2, &indeg, &mut SmallRng::seed_from_u64(7));
        assert_eq!(e1, e2, "same seed must give same probabilities");
        assert!(e1.iter().all(|&(_, _, p)| (0.2..=0.8).contains(&p)));
    }

    #[test]
    fn out_normalized_sums_to_one_per_source() {
        let mut edges = sample_edges();
        let indeg = in_degrees(&edges, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        ProbabilityModel::RandomOutNormalized.assign(&mut edges, &indeg, &mut rng);
        let mass0: f64 = edges
            .iter()
            .filter(|&&(u, _, _)| u == NodeId(0))
            .map(|&(_, _, p)| p)
            .sum();
        let mass1: f64 = edges
            .iter()
            .filter(|&&(u, _, _)| u == NodeId(1))
            .map(|&(_, _, p)| p)
            .sum();
        assert!((mass0 - 1.0).abs() < 1e-12);
        assert!((mass1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_preserves_weights() {
        let mut edges = vec![(NodeId(0), NodeId(1), 0.42)];
        let indeg = vec![0, 1];
        let mut rng = SmallRng::seed_from_u64(1);
        ProbabilityModel::Explicit.assign(&mut edges, &indeg, &mut rng);
        assert_eq!(edges[0].2, 0.42);
    }

    #[test]
    fn validity_flags() {
        assert!(ProbabilityModel::WeightedCascade.always_valid());
        assert!(ProbabilityModel::Uniform(0.5).always_valid());
        assert!(!ProbabilityModel::Uniform(0.0).always_valid());
        assert!(!ProbabilityModel::Uniform(1.5).always_valid());
        assert!(ProbabilityModel::RandomRange { lo: 0.1, hi: 0.9 }.always_valid());
        assert!(!ProbabilityModel::RandomRange { lo: 0.0, hi: 0.9 }.always_valid());
        assert!(!ProbabilityModel::Explicit.always_valid());
    }
}
