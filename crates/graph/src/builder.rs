//! Incremental graph construction with validation.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::ids::NodeId;
use crate::prob::ProbabilityModel;
use rand::Rng;
use rustc_hash::FxHashMap;

/// Builds a [`CsrGraph`] from an edge list.
///
/// Validation performed at `add_edge` time: endpoints in range, probability
/// finite and in `[0, 1]`, no self-loops. Duplicate edges with the *same*
/// weight are silently deduplicated at `build`; conflicting duplicates are an
/// error.
///
/// ```
/// use pit_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
/// assert!(b.add_edge(NodeId(0), NodeId(0), 0.5).is_err()); // self-loop
/// assert!(b.add_edge(NodeId(0), NodeId(1), 1.5).is_err()); // bad prob
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// Start a builder for a graph with exactly `node_count` nodes
    /// (ids `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Start a builder with pre-reserved edge capacity.
    pub fn with_capacity(node_count: usize, edge_capacity: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::with_capacity(edge_capacity),
        }
    }

    /// Number of nodes the final graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `from -> to` with transition probability `prob`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, prob: f64) -> Result<()> {
        if from.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: from,
                node_count: self.node_count,
            });
        }
        if to.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: to,
                node_count: self.node_count,
            });
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from });
        }
        if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
            return Err(GraphError::InvalidProbability { from, to, prob });
        }
        self.edges.push((from, to, prob));
        Ok(())
    }

    /// Add a directed edge whose probability will be assigned later by
    /// [`GraphBuilder::build_with_model`]. Stored with a placeholder of 0.
    pub fn add_edge_unweighted(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.add_edge(from, to, 0.0)
    }

    /// Whether the builder already contains a `from -> to` edge.
    ///
    /// Linear in the number of added edges — intended for generators that
    /// sample few candidate duplicates, not for hot paths.
    pub fn contains_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edges.iter().any(|&(s, d, _)| s == from && d == to)
    }

    /// Finalize the graph with the explicit weights supplied to `add_edge`.
    pub fn build(self) -> Result<CsrGraph> {
        self.finish(None::<(&ProbabilityModel, &mut rand::rngs::mock::StepRng)>)
    }

    /// Finalize the graph, re-assigning probabilities with `model` first.
    pub fn build_with_model<R: Rng>(
        self,
        model: ProbabilityModel,
        rng: &mut R,
    ) -> Result<CsrGraph> {
        self.finish(Some((&model, rng)))
    }

    fn finish<R: Rng>(mut self, model: Option<(&ProbabilityModel, &mut R)>) -> Result<CsrGraph> {
        if self.node_count == 0 {
            return Err(GraphError::EmptyGraph);
        }

        // Deduplicate. Conflicting duplicate weights are an error; identical
        // duplicates collapse.
        let mut seen: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();
        seen.reserve(self.edges.len());
        let mut dedup = Vec::with_capacity(self.edges.len());
        for &(s, d, p) in &self.edges {
            match seen.get(&(s, d)) {
                None => {
                    seen.insert((s, d), p);
                    dedup.push((s, d, p));
                }
                Some(&old) if (old - p).abs() < 1e-12 => { /* identical dup, drop */ }
                Some(_) => return Err(GraphError::DuplicateEdge { from: s, to: d }),
            }
        }
        self.edges = dedup;

        if let Some((model, rng)) = model {
            let mut indeg = vec![0u32; self.node_count];
            for &(_, v, _) in &self.edges {
                indeg[v.index()] += 1;
            }
            model.assign(&mut self.edges, &indeg, rng);
            // Re-validate: an explicit model may leave zero placeholders.
            for &(s, d, p) in &self.edges {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(GraphError::InvalidProbability {
                        from: s,
                        to: d,
                        prob: p,
                    });
                }
            }
        }

        Ok(CsrGraph::from_parts(self.node_count, self.edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let e = b.add_edge(NodeId(0), NodeId(5), 0.2).unwrap_err();
        assert!(matches!(e, GraphError::NodeOutOfRange { .. }));
        let e = b.add_edge(NodeId(5), NodeId(0), 0.2).unwrap_err();
        assert!(matches!(e, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_self_loop_and_bad_prob() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(NodeId(1), NodeId(1), 0.3),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(1), f64::NAN),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(1), -0.1),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            GraphBuilder::new(0).build(),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn identical_duplicates_collapse() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.4).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn conflicting_duplicates_error() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.4).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.6).unwrap();
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn build_with_weighted_cascade() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_unweighted(NodeId(0), NodeId(2)).unwrap();
        b.add_edge_unweighted(NodeId(1), NodeId(2)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let g = b
            .build_with_model(ProbabilityModel::WeightedCascade, &mut rng)
            .unwrap();
        assert!((g.edge_prob(NodeId(0), NodeId(2)).unwrap() - 0.5).abs() < 1e-12);
        assert!((g.edge_prob(NodeId(1), NodeId(2)).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn build_with_explicit_rejects_placeholder_zero() {
        // add_edge_unweighted leaves prob = 0.0 which Explicit keeps; 0.0 is
        // allowed by validation ([0,1]), so this should succeed.
        let mut b = GraphBuilder::new(2);
        b.add_edge_unweighted(NodeId(0), NodeId(1)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let g = b
            .build_with_model(ProbabilityModel::Explicit, &mut rng)
            .unwrap();
        assert_eq!(g.edge_prob(NodeId(0), NodeId(1)), Some(0.0));
    }

    #[test]
    fn contains_edge_works() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.4).unwrap();
        assert!(b.contains_edge(NodeId(0), NodeId(1)));
        assert!(!b.contains_edge(NodeId(1), NodeId(0)));
    }
}
