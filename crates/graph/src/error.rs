//! Error type for graph construction and validation.

use crate::ids::NodeId;
use std::fmt;

/// Convenience alias used across the graph crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised while constructing or validating a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint refers to a node `>= node_count`.
    NodeOutOfRange { node: NodeId, node_count: usize },
    /// An edge probability is not a finite value in `[0, 1]`.
    InvalidProbability { from: NodeId, to: NodeId, prob: f64 },
    /// A self-loop was supplied (the influence model forbids them: a user
    /// does not "influence" themselves through an edge).
    SelfLoop { node: NodeId },
    /// The same directed edge was supplied twice with conflicting weights.
    DuplicateEdge { from: NodeId, to: NodeId },
    /// The graph is empty (zero nodes) where at least one node is required.
    EmptyGraph,
    /// A snapshot byte stream failed validation while deserializing.
    CorruptSnapshot(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => write!(
                f,
                "node {node} out of range for graph with {node_count} nodes"
            ),
            GraphError::InvalidProbability { from, to, prob } => write!(
                f,
                "edge {from}->{to} has invalid transition probability {prob} (must be finite and in [0,1])"
            ),
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} is not allowed"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from}->{to} with conflicting weight")
            }
            GraphError::EmptyGraph => write!(f, "graph must contain at least one node"),
            GraphError::CorruptSnapshot(msg) => write!(f, "corrupt graph snapshot: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 4,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidProbability {
            from: NodeId(0),
            to: NodeId(1),
            prob: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
        let e = GraphError::SelfLoop { node: NodeId(3) };
        assert!(e.to_string().contains("self-loop"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GraphError>();
    }
}
