//! Graph summary statistics (degree distributions, connectivity probes).
//!
//! Used when generating and validating the synthetic datasets of the paper's
//! Figure 4 ("Summary of Datasets Used": node counts and degree ranges).

use crate::csr::CsrGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Summary statistics over a [`CsrGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub node_count: usize,
    /// `|E|`.
    pub edge_count: usize,
    /// Minimum total degree (in + out) over all nodes.
    pub min_degree: usize,
    /// Maximum total degree (in + out) over all nodes.
    pub max_degree: usize,
    /// Mean total degree.
    pub avg_degree: f64,
    /// Number of nodes with zero in- and out-degree.
    pub isolated_nodes: usize,
    /// Number of weakly connected components.
    pub weak_components: usize,
}

impl GraphStats {
    /// Compute statistics for `g`. `O(|V| + |E|)`.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut min_d = usize::MAX;
        let mut max_d = 0usize;
        let mut sum_d = 0usize;
        let mut isolated = 0usize;
        for u in g.nodes() {
            let d = g.out_degree(u) + g.in_degree(u);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
            sum_d += d;
            if d == 0 {
                isolated += 1;
            }
        }
        if n == 0 {
            min_d = 0;
        }
        GraphStats {
            node_count: n,
            edge_count: g.edge_count(),
            min_degree: min_d,
            max_degree: max_d,
            avg_degree: if n == 0 { 0.0 } else { sum_d as f64 / n as f64 },
            isolated_nodes: isolated,
            weak_components: weak_component_count(g),
        }
    }
}

/// Number of weakly connected components (directions ignored).
pub fn weak_component_count(g: &CsrGraph) -> usize {
    weak_components(g).1
}

/// Weak-component label per node plus the component count.
///
/// Labels are dense in `0..count`, assigned in discovery order.
pub fn weak_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = count;
                    queue.push_back(v);
                }
            }
            for &v in g.in_neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Histogram of total degrees, bucketed logarithmically
/// (`bucket i` holds degrees in `[2^i, 2^{i+1})`; bucket 0 holds degree 0–1).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for u in g.nodes() {
        let d = g.out_degree(u) + g.in_degree(u);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_components() -> CsrGraph {
        // Component A: 0 -> 1 -> 2, component B: 3 -> 4, node 5 isolated.
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_basic() {
        let g = two_components();
        let s = GraphStats::compute(&g);
        assert_eq!(s.node_count, 6);
        assert_eq!(s.edge_count, 3);
        assert_eq!(s.isolated_nodes, 1);
        assert_eq!(s.weak_components, 3);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 2); // node 1 has in 1 + out 1
        assert!((s.avg_degree - 1.0).abs() < 1e-12); // 6 endpoints / 6 nodes
    }

    #[test]
    fn weak_components_labels_are_consistent() {
        let g = two_components();
        let (labels, count) = weak_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[5]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn single_component_when_connected() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(weak_component_count(&g), 1);
    }

    #[test]
    fn degree_histogram_buckets() {
        let g = two_components();
        let hist = degree_histogram(&g);
        // Degrees: node0=1, node1=2, node2=1, node3=1, node4=1, node5=0.
        // Bucket 0 (deg 0-1): 5 nodes, bucket 1 (deg 2-3): 1 node.
        assert_eq!(hist, vec![5, 1]);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        // 0 -> 1 and 2 -> 1: weakly one component even though 0 cannot reach 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(weak_component_count(&g), 1);
    }
}
