//! # pit-graph
//!
//! Directed social-network graph substrate for the PIT-Search system
//! (*Personalized Influential Topic Search via Social Network Summarization*,
//! ICDE 2017).
//!
//! The paper models a social network as `G = (V, E, T, Λ)`: users `V`, directed
//! influence edges `E`, a topic space `T`, and per-edge transition
//! probabilities `Λ`. This crate provides `V`, `E` and `Λ`:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row graph holding **both**
//!   out-adjacency (forward influence propagation) and in-adjacency (reverse
//!   BFS for the personalized propagation index), with an `f64` transition
//!   probability per edge.
//! * [`GraphBuilder`] — incremental edge-list construction with validation,
//!   deduplication and several probability models ([`ProbabilityModel`]).
//! * [`fixtures`] — the hand-built graphs of the paper's Figure 1 (worked
//!   Example 1) and Figure 3 (propagation-index example), used by unit and
//!   integration tests throughout the workspace.
//! * [`stats`] — degree distributions and summary statistics used when
//!   generating the paper's synthetic datasets.
//!
//! Topic assignment (`T`) lives in the `pit-topics` crate; this crate is
//! topic-agnostic.
//!
//! ## Example
//!
//! ```
//! use pit_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.out_degree(NodeId(0)), 1);
//! let (tgt, p) = g.out_edges(NodeId(0)).first();
//! assert_eq!(tgt, NodeId(1));
//! assert!((p - 0.5).abs() < 1e-12);
//! ```

// `deny` rather than `forbid`: the single sanctioned exception is the
// `Pod` impl for the id newtypes in `ids` (see the SAFETY comment there),
// which lets flat snapshots view id arrays in place.
#![deny(unsafe_code)]

pub mod builder;
pub mod csr;
pub mod error;
pub mod fixtures;
pub mod ids;
pub mod prob;
pub mod snapshot;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::{GraphError, Result};
pub use ids::{NodeId, TermId, TopicId};
pub use prob::ProbabilityModel;
pub use stats::GraphStats;
