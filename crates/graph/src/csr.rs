//! Immutable compressed-sparse-row (CSR) directed graph.
//!
//! The PIT-Search pipeline traverses the graph in both directions:
//!
//! * **forward** (out-edges) for random walks and influence propagation
//!   (`Λ(u,v)` is the probability that `u`'s influence transitions to `v`);
//! * **backward** (in-edges) for the reverse BFS that materializes the
//!   personalized influence propagation index of Section 5.1.
//!
//! Both directions are therefore stored as CSR arrays. The structure is
//! immutable after [`crate::GraphBuilder::build`]; all query methods are
//! `O(1)` plus the size of the returned slice.

use crate::error::{GraphError, Result};
use crate::ids::NodeId;
use pit_store::Sect;

/// Immutable directed graph with per-edge transition probabilities, stored in
/// CSR form for both adjacency directions.
///
/// Out-edges of `u` are the pairs `(v, Λ(u,v))`; in-edges of `v` are the pairs
/// `(u, Λ(u,v))`. Edge targets within one node's slice are sorted by id, which
/// enables binary-searched `edge_prob` lookups.
///
/// Each array is a [`Sect`]: owned when built in memory, a borrowed window of
/// the snapshot mapping when loaded zero-copy from a flat snapshot. Every
/// accessor goes through `Deref<Target = [_]>`, so the backing is invisible
/// to traversal code.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `out_offsets[u] .. out_offsets[u+1]` delimits `u`'s out-edge slice.
    out_offsets: Sect<u32>,
    /// Targets of out-edges, grouped per source, sorted within a group.
    out_targets: Sect<NodeId>,
    /// Transition probability of each out-edge, parallel to `out_targets`.
    out_probs: Sect<f64>,
    /// `in_offsets[v] .. in_offsets[v+1]` delimits `v`'s in-edge slice.
    in_offsets: Sect<u32>,
    /// Sources of in-edges, grouped per target, sorted within a group.
    in_sources: Sect<NodeId>,
    /// Transition probability of each in-edge, parallel to `in_sources`.
    in_probs: Sect<f64>,
}

impl CsrGraph {
    /// Build directly from validated, deduplicated parts. Used by the builder.
    pub(crate) fn from_parts(node_count: usize, mut edges: Vec<(NodeId, NodeId, f64)>) -> Self {
        // Sort by (src, dst) for the out-CSR.
        edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
        let m = edges.len();

        let mut out_offsets = vec![0u32; node_count + 1];
        for &(s, _, _) in &edges {
            out_offsets[s.index() + 1] += 1;
        }
        for i in 0..node_count {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_probs = Vec::with_capacity(m);
        for &(_, d, p) in &edges {
            out_targets.push(d);
            out_probs.push(p);
        }

        // Re-sort by (dst, src) for the in-CSR.
        edges.sort_unstable_by_key(|&(s, d, _)| (d, s));
        let mut in_offsets = vec![0u32; node_count + 1];
        for &(_, d, _) in &edges {
            in_offsets[d.index() + 1] += 1;
        }
        for i in 0..node_count {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = Vec::with_capacity(m);
        let mut in_probs = Vec::with_capacity(m);
        for &(s, _, p) in &edges {
            in_sources.push(s);
            in_probs.push(p);
        }

        CsrGraph {
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            out_probs: out_probs.into(),
            in_offsets: in_offsets.into(),
            in_sources: in_sources.into(),
            in_probs: in_probs.into(),
        }
    }

    /// Assemble a graph directly from its six CSR arrays (typically borrowed
    /// windows of a flat-snapshot mapping). Performs only O(1) shape checks —
    /// lengths, sentinel first/last offsets — so the zero-copy load path
    /// stays O(sections); call [`CsrGraph::validate_deep`] for the
    /// per-element invariants.
    pub fn from_raw_parts(
        out_offsets: Sect<u32>,
        out_targets: Sect<NodeId>,
        out_probs: Sect<f64>,
        in_offsets: Sect<u32>,
        in_sources: Sect<NodeId>,
        in_probs: Sect<f64>,
    ) -> std::result::Result<Self, String> {
        if out_offsets.is_empty() || in_offsets.is_empty() {
            return Err("CSR offset arrays must hold node_count + 1 entries".into());
        }
        if out_offsets.len() != in_offsets.len() {
            return Err(format!(
                "out/in offset arrays disagree on node count ({} vs {})",
                out_offsets.len(),
                in_offsets.len()
            ));
        }
        if out_targets.len() != out_probs.len() || in_sources.len() != in_probs.len() {
            return Err("edge id/prob arrays have mismatched lengths".into());
        }
        if out_targets.len() != in_sources.len() {
            return Err(format!(
                "out and in CSR disagree on edge count ({} vs {})",
                out_targets.len(),
                in_sources.len()
            ));
        }
        let check_bookends = |offsets: &[u32], edges: usize, dir: &str| {
            if offsets.first() != Some(&0) {
                return Err(format!("{dir} offsets do not start at 0"));
            }
            if offsets.last().copied().map(|v| v as usize) != Some(edges) {
                return Err(format!("{dir} offsets do not end at the edge count"));
            }
            Ok(())
        };
        check_bookends(&out_offsets, out_targets.len(), "out")?;
        check_bookends(&in_offsets, in_sources.len(), "in")?;
        Ok(CsrGraph {
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
        })
    }

    /// Per-element CSR invariants — monotonic offsets, in-range ids, sorted
    /// edge groups, finite probabilities in `[0, 1]`. O(|V| + |E|); the
    /// owned (deep-validation) loader runs this, the zero-copy path skips it.
    pub fn validate_deep(&self) -> std::result::Result<(), String> {
        let n = self.node_count();
        let check = |offsets: &[u32], ids: &[NodeId], probs: &[f64], dir: &str| {
            for w in offsets.windows(2) {
                if w[0] > w[1] {
                    return Err(format!("{dir} offsets are not monotonic"));
                }
            }
            for group in offsets.windows(2) {
                let (lo, hi) = (group[0] as usize, group[1] as usize);
                let slice = ids
                    .get(lo..hi)
                    .ok_or_else(|| format!("{dir} offsets overrun"))?;
                for w in slice.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("{dir} edge group is not strictly sorted"));
                    }
                }
            }
            for id in ids {
                if id.index() >= n {
                    return Err(format!("{dir} edge id {id} out of range (n = {n})"));
                }
            }
            for &p in probs {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(format!("{dir} edge probability {p} outside [0, 1]"));
                }
            }
            Ok(())
        };
        check(&self.out_offsets, &self.out_targets, &self.out_probs, "out")?;
        check(&self.in_offsets, &self.in_sources, &self.in_probs, "in")
    }

    /// The six raw CSR arrays in `from_raw_parts` order, for snapshot
    /// writers.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (&[u32], &[NodeId], &[f64], &[u32], &[NodeId], &[f64]) {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.out_probs,
            &self.in_offsets,
            &self.in_sources,
            &self.in_probs,
        )
    }

    /// Bytes of this graph served by a snapshot mapping rather than owned
    /// memory (0 for built graphs).
    pub fn mapped_bytes(&self) -> usize {
        self.out_offsets.mapped_bytes()
            + self.out_targets.mapped_bytes()
            + self.out_probs.mapped_bytes()
            + self.in_offsets.mapped_bytes()
            + self.in_sources.mapped_bytes()
            + self.in_probs.mapped_bytes()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids `0..node_count`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Out-neighbors of `u` with their transition probabilities, sorted by id.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> OutEdges<'_> {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        OutEdges {
            targets: &self.out_targets[lo..hi],
            probs: &self.out_probs[lo..hi],
        }
    }

    /// In-neighbors of `v` with their transition probabilities, sorted by id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> OutEdges<'_> {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        OutEdges {
            targets: &self.in_sources[lo..hi],
            probs: &self.in_probs[lo..hi],
        }
    }

    /// Out-neighbor ids of `u` (no probabilities), sorted.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbor ids of `v` (no probabilities), sorted.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Transition probability `Λ(u,v)`, or `None` if the edge is absent.
    ///
    /// Binary search over `u`'s sorted out-edge slice: `O(log out_degree(u))`.
    pub fn edge_prob(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        let slice = &self.out_targets[lo..hi];
        slice.binary_search(&v).ok().map(|i| self.out_probs[lo + i])
    }

    /// Whether the directed edge `u -> v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_prob(u, v).is_some()
    }

    /// Validate a node id against this graph.
    #[inline]
    pub fn check_node(&self, n: NodeId) -> Result<()> {
        if n.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: n,
                node_count: self.node_count(),
            })
        }
    }

    /// Sum of out-edge probabilities of `u` (≤ 1 under normalized models,
    /// but arbitrary for explicit weights).
    pub fn out_prob_mass(&self, u: NodeId) -> f64 {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        self.out_probs[lo..hi].iter().sum()
    }

    /// Iterate all edges as `(src, dst, prob)` triples in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |u| {
            self.out_edges(u)
                .iter()
                .map(move |(v, p)| (u, v, p))
                .collect::<Vec<_>>()
        })
    }

    /// Copy this graph back into a builder, e.g. to apply an edge delta and
    /// rebuild (CSR graphs are immutable; a rebuild is `O(|V| + |E|)`, far
    /// cheaper than refreshing the derived indexes).
    pub fn to_builder(&self) -> crate::builder::GraphBuilder {
        let mut b =
            crate::builder::GraphBuilder::with_capacity(self.node_count(), self.edge_count());
        for (u, v, p) in self.edges() {
            b.add_edge(u, v, p).expect("existing edge is valid");
        }
        b
    }

    /// Forward BFS: every node reachable from any of `sources` within
    /// `max_depth` hops (sources included). Sorted output.
    pub fn downstream_within(&self, sources: &[NodeId], max_depth: usize) -> Vec<NodeId> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if dist[s.index()] == u32::MAX {
                dist[s.index()] = 0;
                queue.push_back(s);
            }
        }
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            out.push(u);
            let du = dist[u.index()];
            if du as usize >= max_depth {
                continue;
            }
            for &w in self.out_neighbors(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Logical size of the CSR arrays in bytes, independent of whether they
    /// are resident owned memory or borrowed snapshot windows.
    pub fn heap_size_bytes(&self) -> usize {
        self.out_offsets.size_bytes()
            + self.out_targets.size_bytes()
            + self.out_probs.size_bytes()
            + self.in_offsets.size_bytes()
            + self.in_sources.size_bytes()
            + self.in_probs.size_bytes()
    }
}

/// Borrowed view over one node's edge slice: parallel `(target, prob)` arrays.
#[derive(Clone, Copy, Debug)]
pub struct OutEdges<'a> {
    targets: &'a [NodeId],
    probs: &'a [f64],
}

impl<'a> OutEdges<'a> {
    /// Number of edges in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The `i`-th `(neighbor, probability)` pair.
    #[inline]
    pub fn get(&self, i: usize) -> (NodeId, f64) {
        (self.targets[i], self.probs[i])
    }

    /// Neighbor ids only.
    #[inline]
    pub fn targets(&self) -> &'a [NodeId] {
        self.targets
    }

    /// Probabilities only.
    #[inline]
    pub fn probs(&self) -> &'a [f64] {
        self.probs
    }

    /// Iterate `(neighbor, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + 'a {
        self.targets.iter().copied().zip(self.probs.iter().copied())
    }
}

impl<'a> std::ops::Index<usize> for OutEdges<'a> {
    type Output = NodeId;
    fn index(&self, i: usize) -> &NodeId {
        &self.targets[i]
    }
}

// Allow `g.out_edges(u)[0]` style tuple access in tests via a helper.
impl<'a> OutEdges<'a> {
    /// First `(neighbor, probability)` pair; panics when empty.
    pub fn first(&self) -> (NodeId, f64) {
        self.get(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1 (0.5), 0 -> 2 (0.3), 1 -> 3 (0.7), 2 -> 3 (0.2)
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.3).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn out_edges_sorted_and_correct() {
        let g = diamond();
        let e = g.out_edges(NodeId(0));
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(0), (NodeId(1), 0.5));
        assert_eq!(e.get(1), (NodeId(2), 0.3));
        assert!(g.out_edges(NodeId(3)).is_empty());
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let g = diamond();
        let e = g.in_edges(NodeId(3));
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(0), (NodeId(1), 0.7));
        assert_eq!(e.get(1), (NodeId(2), 0.2));
        assert!(g.in_edges(NodeId(0)).is_empty());
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }

    #[test]
    fn edge_prob_lookup() {
        let g = diamond();
        assert_eq!(g.edge_prob(NodeId(0), NodeId(2)), Some(0.3));
        assert_eq!(g.edge_prob(NodeId(2), NodeId(0)), None);
        assert!(g.has_edge(NodeId(1), NodeId(3)));
        assert!(!g.has_edge(NodeId(3), NodeId(1)));
    }

    #[test]
    fn prob_mass() {
        let g = diamond();
        assert!((g.out_prob_mass(NodeId(0)) - 0.8).abs() < 1e-12);
        assert_eq!(g.out_prob_mass(NodeId(3)), 0.0);
    }

    #[test]
    fn edges_iterator_yields_all_in_order() {
        let g = diamond();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(
            all,
            vec![
                (NodeId(0), NodeId(1), 0.5),
                (NodeId(0), NodeId(2), 0.3),
                (NodeId(1), NodeId(3), 0.7),
                (NodeId(2), NodeId(3), 0.2),
            ]
        );
    }

    #[test]
    fn check_node_bounds() {
        let g = diamond();
        assert!(g.check_node(NodeId(3)).is_ok());
        assert!(matches!(
            g.check_node(NodeId(4)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn isolated_nodes_are_fine() {
        let g = GraphBuilder::new(5).build().unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), 0);
            assert_eq!(g.in_degree(u), 0);
        }
    }

    #[test]
    fn heap_size_is_positive_and_scales() {
        let small = diamond().heap_size_bytes();
        let mut b = GraphBuilder::new(1000);
        for i in 0..999u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let big = b.build().unwrap().heap_size_bytes();
        assert!(small > 0);
        assert!(big > small);
    }
}
