//! Hand-built graphs reproducing the paper's running examples.
//!
//! The paper's figures give path probabilities rather than a full edge list,
//! so the fixtures here choose edge weights consistent with every number the
//! text states:
//!
//! * [`figure1_graph`] — the 15-user network of Figure 1 / Example 1. With the
//!   weights below, the exact influence of topic `t1` on User 3 is
//!   `(0.06 + 0.6 + 0.00006 + 0.024 + 0.00096 + 0.00096) / 5 ≈ 0.137`,
//!   matching the paper's worked table, and the topic ordering for User 3 is
//!   `t2 > t1 > t3` (paper: 0.188 > 0.137 > 0.065).
//! * [`figure3_graph`] — the 12-node network of Figure 3 used to illustrate
//!   the personalized propagation index. With `θ = 0.05` and start node 8 the
//!   reverse-BFS tree covers exactly `Γ(8) = {1, 4, 5, 7, 9, 11, 12}`, node 11
//!   is the only *marked* (expandable) node, and `maxEP = 0.10` — all three
//!   facts the paper's Section 5.2 trace relies on.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::NodeId;

/// Convert the paper's 1-based user numbering to a [`NodeId`].
///
/// # Panics
/// Panics if `n == 0` (the paper numbers users from 1).
#[inline]
pub fn user(n: u32) -> NodeId {
    assert!(n >= 1, "paper user numbering starts at 1");
    NodeId(n - 1)
}

/// The 15-user social network of the paper's Figure 1.
///
/// Topic memberships used by Example 1 (see `figure1_topics`):
/// `t1` (Apple Phone) = users {2, 5, 13, 9, 15}, `t2` (Samsung Phone) =
/// users {1, 4, 13}, `t3` (HTC Phone) = users {6, 11, 13, 14}.
pub fn figure1_graph() -> CsrGraph {
    let mut b = GraphBuilder::new(15);
    let mut e = |s: u32, d: u32, p: f64| {
        b.add_edge(user(s), user(d), p).expect("fixture edge valid");
    };
    e(2, 1, 0.2);
    e(1, 3, 0.3);
    e(5, 3, 0.6);
    e(5, 7, 0.05);
    e(7, 13, 0.05);
    e(13, 12, 0.4);
    e(12, 10, 0.5);
    e(10, 6, 0.4);
    e(6, 3, 0.3);
    e(9, 8, 0.2);
    e(8, 13, 0.2);
    e(15, 9, 1.0);
    e(4, 5, 0.4);
    e(4, 14, 0.8);
    e(13, 14, 0.5);
    e(11, 7, 0.7);
    b.build().expect("figure 1 fixture builds")
}

/// Topic node sets for Example 1, as `(topic index, members)` with members in
/// the paper's 1-based numbering. Order: `t1`, `t2`, `t3`.
pub fn figure1_topics() -> [Vec<NodeId>; 3] {
    [
        vec![user(2), user(5), user(13), user(9), user(15)],
        vec![user(1), user(4), user(13)],
        vec![user(6), user(11), user(13), user(14)],
    ]
}

/// The 12-node network of the paper's Figure 3 (propagation-index example).
///
/// Designed so that, with threshold `θ = 0.05`, the reverse BFS from node 8
/// (paper numbering) yields the lookup table:
///
/// | node | aggregated propagation to 8 |
/// |------|------------------------------|
/// | 7    | 0.500 |
/// | 9    | 0.400 |
/// | 12   | 0.300 |
/// | 5    | 0.320 (0.20 via 7 + 0.12 via 12) |
/// | 1    | 0.280 (0.12 via 9 + 0.10 via 5→7 + 0.06 via 5→12) |
/// | 4    | 0.327 (0.075 + 0.108 + 0.09 + 0.054) |
/// | 11   | 0.100 — **marked**: its in-edge 10→11 arrives below θ |
pub fn figure3_graph() -> CsrGraph {
    let mut b = GraphBuilder::new(12);
    let mut e = |s: u32, d: u32, p: f64| {
        b.add_edge(user(s), user(d), p).expect("fixture edge valid");
    };
    // Direct in-edges of 8.
    e(7, 8, 0.5);
    e(9, 8, 0.4);
    e(12, 8, 0.3);
    // Second ring.
    e(5, 7, 0.4);
    e(11, 7, 0.2);
    e(1, 9, 0.3);
    e(4, 12, 0.25);
    e(5, 12, 0.4);
    // Third ring.
    e(1, 5, 0.5);
    e(4, 1, 0.9);
    // Below-threshold feeder into 11: 10→11→7→8 = 0.3*0.2*0.5 = 0.03 < θ,
    // which is what marks node 11 as expandable.
    e(10, 11, 0.3);
    // Periphery not reaching 8 above θ.
    e(2, 3, 0.5);
    e(3, 6, 0.5);
    e(6, 10, 0.5);
    e(6, 2, 0.2);
    b.build().expect("figure 3 fixture builds")
}

/// The threshold `θ` the paper uses in the Figure 3 example.
pub const FIGURE3_THETA: f64 = 0.05;

/// The representative node sets of the Section 5.2 search trace
/// (`S1 = {1,3,5,12}`, `S2 = {7,9,10}`, `S3 = {2,4,6}`), 1-based.
pub fn figure3_rep_sets() -> [Vec<NodeId>; 3] {
    [
        vec![user(1), user(3), user(5), user(12)],
        vec![user(7), user(9), user(10)],
        vec![user(2), user(4), user(6)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_numbering_is_one_based() {
        assert_eq!(user(1), NodeId(0));
        assert_eq!(user(15), NodeId(14));
    }

    #[test]
    #[should_panic]
    fn user_zero_panics() {
        let _ = user(0);
    }

    #[test]
    fn figure1_shape() {
        let g = figure1_graph();
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 16);
        // The strong 5 -> 3 edge from the worked example.
        assert_eq!(g.edge_prob(user(5), user(3)), Some(0.6));
    }

    /// Recompute the Example-1 path table by brute-force enumeration of
    /// simple paths from each t1 node to User 3 and check the aggregate
    /// matches the paper's final score 0.137 (±0.001).
    #[test]
    fn figure1_t1_influence_matches_paper() {
        let g = figure1_graph();
        let [t1, _, _] = figure1_topics();
        let target = user(3);
        let mut total = 0.0f64;
        for &src in &t1 {
            total += sum_simple_path_probs(&g, src, target);
        }
        let score = total / t1.len() as f64;
        assert!((score - 0.137).abs() < 1e-3, "expected ~0.137, got {score}");
    }

    #[test]
    fn figure1_topic_ordering_for_user3() {
        let g = figure1_graph();
        let topics = figure1_topics();
        let target = user(3);
        let scores: Vec<f64> = topics
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .map(|&s| sum_simple_path_probs(&g, s, target))
                    .sum::<f64>()
                    / nodes.len() as f64
            })
            .collect();
        // Paper: t2 (0.188) > t1 (0.137) > t3 (0.065).
        assert!(scores[1] > scores[0], "t2 must beat t1: {scores:?}");
        assert!(scores[0] > scores[2], "t1 must beat t3: {scores:?}");
        assert!((scores[1] - 0.188).abs() < 2e-3, "t2 ≈ 0.188: {scores:?}");
    }

    #[test]
    fn figure1_user7_prefers_t3_and_user14_prefers_t2() {
        let g = figure1_graph();
        let topics = figure1_topics();
        for (target, expected_best) in [(user(7), 2usize), (user(14), 1usize)] {
            let scores: Vec<f64> = topics
                .iter()
                .map(|nodes| {
                    nodes
                        .iter()
                        .map(|&s| sum_simple_path_probs(&g, s, target))
                        .sum::<f64>()
                        / nodes.len() as f64
                })
                .collect();
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(best, expected_best, "target {target}: {scores:?}");
        }
    }

    #[test]
    fn figure3_shape() {
        let g = figure3_graph();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_prob(user(7), user(8)), Some(0.5));
        assert_eq!(g.in_degree(user(8)), 3);
    }

    /// Exhaustive sum of simple-path probabilities from `src` to `dst`
    /// (practical only on tiny fixtures).
    fn sum_simple_path_probs(g: &CsrGraph, src: NodeId, dst: NodeId) -> f64 {
        fn dfs(
            g: &CsrGraph,
            cur: NodeId,
            dst: NodeId,
            prob: f64,
            on_path: &mut Vec<bool>,
            acc: &mut f64,
        ) {
            if cur == dst {
                *acc += prob;
                return;
            }
            on_path[cur.index()] = true;
            for (nxt, p) in g.out_edges(cur).iter() {
                if !on_path[nxt.index()] {
                    dfs(g, nxt, dst, prob * p, on_path, acc);
                }
            }
            on_path[cur.index()] = false;
        }
        if src == dst {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut on_path = vec![false; g.node_count()];
        dfs(g, src, dst, 1.0, &mut on_path, &mut acc);
        acc
    }
}
