//! Property-based tests for the CSR graph substrate.

use pit_graph::{snapshot, GraphBuilder, NodeId};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

/// Strategy: a random edge list over `n` nodes with valid probabilities and
/// no self-loops or duplicates.
fn edge_list(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f64..=1.0f64)
            .prop_filter("no self-loops", |(a, b, _)| a != b);
        proptest::collection::vec(edge, 0..=max_edges).prop_map(move |mut es| {
            // Deduplicate on (src, dst) keeping the first occurrence so the
            // builder never sees conflicting duplicates.
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b, _)| seen.insert((a, b)));
            (n, es)
        })
    })
}

proptest! {
    /// Every edge added is observable via out_edges, in_edges and edge_prob,
    /// and counts agree.
    #[test]
    fn csr_faithful_to_edge_list((n, edges) in edge_list(40, 200)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, p) in &edges {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
        let g = b.build().unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), edges.len());
        for &(u, v, p) in &edges {
            prop_assert_eq!(g.edge_prob(NodeId(u), NodeId(v)), Some(p));
            prop_assert!(g.out_neighbors(NodeId(u)).contains(&NodeId(v)));
            prop_assert!(g.in_neighbors(NodeId(v)).contains(&NodeId(u)));
        }
        // Degree sums both equal the edge count.
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    /// Adjacency slices are sorted (binary-search invariant).
    #[test]
    fn adjacency_sorted((n, edges) in edge_list(30, 150)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, p) in &edges {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
        let g = b.build().unwrap();
        for u in g.nodes() {
            let outs = g.out_neighbors(u);
            prop_assert!(outs.windows(2).all(|w| w[0] < w[1]));
            let ins = g.in_neighbors(u);
            prop_assert!(ins.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Snapshot encode/decode is the identity on edge sets.
    #[test]
    fn snapshot_roundtrip((n, edges) in edge_list(30, 150)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, p) in &edges {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
        let g = b.build().unwrap();
        let g2 = snapshot::decode(&snapshot::encode(&g)).unwrap();
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(g.node_count(), g2.node_count());
    }

    /// edge_prob is None exactly for absent pairs.
    #[test]
    fn edge_prob_absent((n, edges) in edge_list(15, 40)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, p) in &edges {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
        let g = b.build().unwrap();
        let present: FxHashSet<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let expect = present.contains(&(u, v));
                prop_assert_eq!(g.has_edge(NodeId(u), NodeId(v)), expect);
            }
        }
    }
}
