//! Clock-free tracing hooks for the searcher.
//!
//! The engine crates are deterministic by contract (pit-lint rule L4: no
//! `Instant::now` here), so the searcher cannot timestamp its own stages.
//! Instead it emits `phase_begin`/`phase_end` callbacks through a
//! [`SearchTracer`], and the *server* layer — which owns the clock and the
//! trace ring — implements the trait and captures timestamps on its side of
//! the boundary. The default [`NoTracer`] makes every hook a no-op that the
//! optimizer deletes, so untraced searches pay nothing.

/// The searcher's traceable phases, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchPhase {
    /// Representative-set loading plus the query user's own `Γ(v)` probe
    /// (Algorithm 10 lines 1–16).
    Gather,
    /// One EXPAND round over the marked-node frontier (Algorithm 11). The
    /// `detail` on `phase_end` is the number of tables probed this round.
    ExpandRound,
    /// Final sort/truncate of the candidate scores; `detail` is the
    /// candidate count.
    Rank,
}

/// Receiver for the searcher's phase callbacks.
///
/// Implementations may read clocks and record spans; the searcher itself
/// never does. A phase that begins may not end (cancellation) —
/// implementations must tolerate an unmatched `phase_begin`.
pub trait SearchTracer {
    /// A phase is starting now.
    fn phase_begin(&mut self, phase: SearchPhase);
    /// The matching phase finished; `detail` is phase-specific (see
    /// [`SearchPhase`]).
    fn phase_end(&mut self, phase: SearchPhase, detail: u64);
}

/// The no-op tracer used by untraced searches.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTracer;

impl SearchTracer for NoTracer {
    #[inline]
    fn phase_begin(&mut self, _phase: SearchPhase) {}
    #[inline]
    fn phase_end(&mut self, _phase: SearchPhase, _detail: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tracer_is_inert() {
        let mut t = NoTracer;
        t.phase_begin(SearchPhase::Gather);
        t.phase_end(SearchPhase::Gather, 1);
    }
}
