//! The topic-to-representative-user index (offline stage output).

use pit_graph::TopicId;
use pit_summarize::{RepresentativeSet, SummarizeContext, Summarizer};

/// Materialized representative sets for every topic — the paper's
/// "topic-to-representative user index", built once offline (Algorithm 5
/// line 2 / Algorithm 9 lines 2–3) and probed by every query.
#[derive(Clone, Debug)]
pub struct TopicRepIndex {
    sets: Vec<RepresentativeSet>,
}

impl TopicRepIndex {
    /// Build the index by summarizing every topic in the space, fanning the
    /// topics out over worker threads.
    pub fn build<S: Summarizer + Sync>(ctx: &SummarizeContext<'_>, summarizer: &S) -> Self {
        let topics: Vec<TopicId> = ctx.space.topics().collect();
        Self::build_for_topics(ctx, summarizer, &topics)
    }

    /// Build the index for a subset of topics only (other topics get empty
    /// sets). Useful when benchmarking a single query's topic universe.
    pub fn build_for_topics<S: Summarizer + Sync>(
        ctx: &SummarizeContext<'_>,
        summarizer: &S,
        topics: &[TopicId],
    ) -> Self {
        let n_topics = ctx.space.topic_count();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(topics.len().max(1));
        let chunk = topics.len().div_ceil(threads);

        let mut computed: Vec<(TopicId, RepresentativeSet)> = Vec::with_capacity(topics.len());
        crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for part in topics.chunks(chunk.max(1)) {
                handles.push(s.spawn(move |_| {
                    part.iter()
                        .map(|&t| (t, summarizer.summarize(ctx, t)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                computed.extend(h.join().expect("summarization worker panicked"));
            }
        })
        .expect("crossbeam scope failed");

        let mut sets: Vec<RepresentativeSet> = (0..n_topics)
            .map(|t| RepresentativeSet::new(TopicId::from_index(t), Vec::new()))
            .collect();
        for (t, set) in computed {
            sets[t.index()] = set;
        }
        TopicRepIndex { sets }
    }

    /// Wrap pre-computed sets (tests, or loading a persisted index).
    ///
    /// # Panics
    /// Panics if `sets[i].topic() != i` for some `i`.
    pub fn from_sets(sets: Vec<RepresentativeSet>) -> Self {
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(
                s.topic().index(),
                i,
                "set at position {i} belongs to topic {}",
                s.topic()
            );
        }
        TopicRepIndex { sets }
    }

    /// The representative set of `topic`.
    #[inline]
    pub fn get(&self, topic: TopicId) -> &RepresentativeSet {
        &self.sets[topic.index()]
    }

    /// Number of topics covered (= topic count of the space).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Replace every set with its `k` heaviest representatives — the
    /// experiment knob of Figures 7 and 12 ("vary the materialized sizes of
    /// representative nodes for each topic").
    pub fn truncated(&self, k: usize) -> TopicRepIndex {
        TopicRepIndex {
            sets: self.sets.iter().map(|s| s.truncate_to_top(k)).collect(),
        }
    }

    /// Replace one topic's representative set (used by incremental
    /// maintenance when a topic is re-summarized).
    ///
    /// # Panics
    /// Panics if the set's topic id is out of range or does not match its
    /// slot.
    pub fn replace(&mut self, set: RepresentativeSet) {
        let i = set.topic().index();
        assert!(i < self.sets.len(), "topic {} out of range", set.topic());
        self.sets[i] = set;
    }

    /// Total representatives across all topics.
    pub fn total_reps(&self) -> usize {
        self.sets.iter().map(RepresentativeSet::len).sum()
    }

    /// Estimated resident heap size in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        self.sets
            .iter()
            .map(RepresentativeSet::heap_size_bytes)
            .sum::<usize>()
            + self.sets.capacity() * std::mem::size_of::<RepresentativeSet>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::{fixtures, NodeId, TermId};
    use pit_summarize::{LrwConfig, LrwSummarizer};
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::{WalkConfig, WalkIndex};

    fn setup() -> (pit_graph::CsrGraph, pit_topics::TopicSpace, WalkIndex) {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        let space = b.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(4, 16).with_seed(11));
        (g, space, walks)
    }

    #[test]
    fn builds_one_set_per_topic() {
        let (g, space, walks) = setup();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let idx = TopicRepIndex::build(&ctx, &LrwSummarizer::new(LrwConfig::default()));
        assert_eq!(idx.len(), 3);
        for t in space.topics() {
            assert_eq!(idx.get(t).topic(), t);
            assert!(!idx.get(t).is_empty());
        }
        assert!(idx.total_reps() >= 3);
    }

    #[test]
    fn subset_build_leaves_others_empty() {
        let (g, space, walks) = setup();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let idx = TopicRepIndex::build_for_topics(
            &ctx,
            &LrwSummarizer::new(LrwConfig::default()),
            &[pit_graph::TopicId(1)],
        );
        assert!(idx.get(pit_graph::TopicId(0)).is_empty());
        assert!(!idx.get(pit_graph::TopicId(1)).is_empty());
    }

    #[test]
    fn truncated_caps_every_set() {
        let (g, space, walks) = setup();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let idx = TopicRepIndex::build(
            &ctx,
            &LrwSummarizer::new(LrwConfig {
                mu: 1.0,
                ..LrwConfig::default()
            }),
        );
        let cut = idx.truncated(1);
        for t in space.topics() {
            assert!(cut.get(t).len() <= 1);
        }
    }

    #[test]
    #[should_panic]
    fn from_sets_validates_alignment() {
        let s =
            pit_summarize::RepresentativeSet::new(pit_graph::TopicId(5), vec![(NodeId(0), 1.0)]);
        let _ = TopicRepIndex::from_sets(vec![s]);
    }
}
