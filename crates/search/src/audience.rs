//! Inverse PIT-Search: find the users a topic is influential *for*.
//!
//! The paper motivates PIT-Search with "target advertising, or personal
//! product promotion" (Section 1). Those applications invert the query:
//! instead of ranking topics for one user, rank users by how prominently a
//! given campaign topic appears in *their* personal top-k. Because the
//! offline artifacts are shared, each candidate check is one ordinary
//! Algorithm-10 probe.

use crate::searcher::{PersonalizedSearcher, SearchConfig};
use crate::TopicRepIndex;
use pit_graph::{NodeId, TopicId};
use pit_index::PropagationIndex;
use pit_topics::{KeywordQuery, TopicSpace};

/// One audience member: the campaign topic made their personal top-k.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AudienceHit {
    /// The user.
    pub user: NodeId,
    /// 1-based rank of the campaign topic in the user's personal top-k.
    pub rank: usize,
    /// The topic's influence score for this user.
    pub score: f64,
}

/// Scan `candidates` and return the users for whom `topic` ranks within
/// their personal top-k for the given query terms, strongest influence
/// first (ties broken by user id).
///
/// `query_terms` defines the competing topic set `T_q` exactly as in a
/// forward search; `topic` must be one of its q-related topics for a hit to
/// be possible.
pub fn find_audience(
    space: &TopicSpace,
    prop: &PropagationIndex,
    reps: &TopicRepIndex,
    topic: TopicId,
    query_terms: &[pit_graph::TermId],
    candidates: impl IntoIterator<Item = NodeId>,
    k: usize,
) -> Vec<AudienceHit> {
    let searcher = PersonalizedSearcher::new(space, prop, reps, SearchConfig::top(k));
    let mut hits: Vec<AudienceHit> = candidates
        .into_iter()
        .filter_map(|user| {
            let out = searcher.search(&KeywordQuery::new(user, query_terms.to_vec()));
            out.top_k
                .iter()
                .position(|s| s.topic == topic)
                .map(|pos| AudienceHit {
                    user,
                    rank: pos + 1,
                    score: out.top_k[pos].score,
                })
        })
        .collect();
    hits.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.user.cmp(&b.user)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{figure1_graph, figure1_topics, user, FIGURE3_THETA};
    use pit_graph::TermId;
    use pit_index::PropIndexConfig;
    use pit_summarize::{LrwConfig, LrwSummarizer, SummarizeContext};
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::{WalkConfig, WalkIndex};

    fn setup() -> (
        pit_graph::CsrGraph,
        pit_topics::TopicSpace,
        PropagationIndex,
        TopicRepIndex,
    ) {
        let g = figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for members in &figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &m in members {
                b.assign(m, t);
            }
        }
        let space = b.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(4, 32).with_seed(2));
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA / 10.0));
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let reps = TopicRepIndex::build(
            &ctx,
            &LrwSummarizer::new(LrwConfig {
                lambda: 0.2,
                mu: 1.0,
                ..LrwConfig::default()
            }),
        );
        (g, space, prop, reps)
    }

    #[test]
    fn finds_the_example1_audience() {
        let (g, space, prop, reps) = setup();
        // Campaign: Samsung (t2). Example 1: it is top-1 for users 3 and 14,
        // but not for user 7 (HTC wins there).
        let all_users: Vec<NodeId> = g.nodes().collect();
        let hits = find_audience(
            &space,
            &prop,
            &reps,
            pit_graph::TopicId(1),
            &[TermId(0)],
            all_users,
            1,
        );
        let audience: Vec<NodeId> = hits.iter().map(|h| h.user).collect();
        assert!(audience.contains(&user(3)), "{hits:?}");
        assert!(audience.contains(&user(14)), "{hits:?}");
        assert!(!audience.contains(&user(7)), "{hits:?}");
        // Sorted by descending score.
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        // Every hit is rank 1 at k = 1.
        assert!(hits.iter().all(|h| h.rank == 1));
    }

    #[test]
    fn larger_k_widens_the_audience() {
        let (g, space, prop, reps) = setup();
        let users: Vec<NodeId> = g.nodes().collect();
        let narrow = find_audience(
            &space,
            &prop,
            &reps,
            pit_graph::TopicId(2),
            &[TermId(0)],
            users.clone(),
            1,
        );
        let wide = find_audience(
            &space,
            &prop,
            &reps,
            pit_graph::TopicId(2),
            &[TermId(0)],
            users,
            3,
        );
        assert!(wide.len() >= narrow.len());
        // Narrow hits survive widening.
        for h in &narrow {
            assert!(wide.iter().any(|w| w.user == h.user));
        }
    }

    #[test]
    fn empty_candidates_empty_audience() {
        let (_g, space, prop, reps) = setup();
        let hits = find_audience(
            &space,
            &prop,
            &reps,
            pit_graph::TopicId(0),
            &[TermId(0)],
            std::iter::empty(),
            3,
        );
        assert!(hits.is_empty());
    }
}
