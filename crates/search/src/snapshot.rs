//! Binary snapshots of the topic-to-representative index.
//!
//! The representative sets are the third offline artifact (Algorithm 5 line
//! 2 / Algorithm 9 lines 2–3); the paper refreshes them "after a period of
//! time when the social network and topics have changed", so persistence
//! between refreshes is the expected deployment mode.

use crate::repindex::TopicRepIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pit_graph::{NodeId, TopicId};
use pit_summarize::RepresentativeSet;

const MAGIC: &[u8; 4] = b"PITR";
const VERSION: u8 = 1;

/// Snapshot decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt representative-index snapshot: {}", self.0)
    }
}
impl std::error::Error for SnapshotError {}

fn err(msg: &str) -> SnapshotError {
    SnapshotError(msg.to_string())
}

/// Serialize the index into a self-describing buffer.
pub fn encode(idx: &TopicRepIndex) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + idx.total_reps() * 12 + idx.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(idx.len() as u64);
    for t in 0..idx.len() {
        let set = idx.get(TopicId::from_index(t));
        buf.put_u32_le(set.len() as u32);
        for (node, w) in set.iter() {
            buf.put_u32_le(node.0);
            buf.put_f64_le(w);
        }
    }
    buf.freeze()
}

/// Deserialize an index previously produced by [`encode`].
pub fn decode(mut data: &[u8]) -> Result<TopicRepIndex, SnapshotError> {
    if data.len() < 4 + 1 + 8 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let n = data.get_u64_le() as usize;
    // Each set costs at least 4 bytes (its length field); bound n before
    // allocating.
    if n.saturating_mul(4) > data.remaining() {
        return Err(err("topic count exceeds payload"));
    }
    let mut sets = Vec::with_capacity(n);
    for t in 0..n {
        if data.remaining() < 4 {
            return Err(err("truncated set length"));
        }
        let k = data.get_u32_le() as usize;
        if data.remaining() < k * 12 {
            return Err(err("truncated set payload"));
        }
        let mut pairs = Vec::with_capacity(k);
        for _ in 0..k {
            let node = NodeId(data.get_u32_le());
            let w = data.get_f64_le();
            if !(w.is_finite() && w >= 0.0) {
                return Err(err("invalid representative weight"));
            }
            pairs.push((node, w));
        }
        sets.push(RepresentativeSet::new(TopicId::from_index(t), pairs));
    }
    if data.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(TopicRepIndex::from_sets(sets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TopicRepIndex {
        TopicRepIndex::from_sets(vec![
            RepresentativeSet::new(TopicId(0), vec![(NodeId(3), 0.5), (NodeId(1), 0.25)]),
            RepresentativeSet::new(TopicId(1), vec![]),
            RepresentativeSet::new(TopicId(2), vec![(NodeId(7), 1.0)]),
        ])
    }

    #[test]
    fn roundtrip() {
        let idx = sample();
        let restored = decode(&encode(&idx)).unwrap();
        assert_eq!(restored.len(), idx.len());
        for t in 0..idx.len() {
            let t = TopicId::from_index(t);
            assert_eq!(restored.get(t), idx.get(t));
        }
    }

    #[test]
    fn rejects_corruption() {
        let bytes = encode(&sample());
        let mut b = bytes.to_vec();
        b[0] = b'Q';
        assert!(decode(&b).is_err());
        assert!(decode(&bytes[..6]).is_err());
        let mut b = bytes.to_vec();
        b.push(1);
        assert!(decode(&b).is_err());
        // NaN weight.
        let mut b = bytes.to_vec();
        let n = b.len();
        b[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode(&b).is_err());
    }
}
