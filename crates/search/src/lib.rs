//! # pit-search-core
//!
//! The online stage of PIT-Search (Section 5.2): given a keyword query `q`
//! issued by user `v`, return the top-k q-related topics ranked by the
//! influence of their representative nodes on `v`.
//!
//! * [`TopicRepIndex`] — the offline *topic-to-representative-user index*:
//!   one weighted [`pit_summarize::RepresentativeSet`] per topic, built with
//!   either summarizer (RCL-A or LRW-A).
//! * [`PersonalizedSearcher`] — Algorithm 10 (`PERSONALIZED_SEARCH`) with the
//!   iterative EXPAND of Algorithm 11: probe the query user's materialized
//!   `Γ(v)` table against each topic's representative set, maintain a score
//!   heap, prune topics whose upper bound `W_r·maxEP + heap[t]` cannot enter
//!   the current top-k, and expand through marked nodes only while undecided
//!   topics remain.

#![forbid(unsafe_code)]

pub mod audience;
pub mod cancel;
pub mod driver;
pub mod repindex;
pub mod searcher;
pub mod snapshot;
pub mod trace;

pub use audience::{find_audience, AudienceHit};
pub use cancel::{CancelToken, SearchError};
pub use driver::{
    probe_gamma, probe_gamma_into, DriverStep, RepUniverse, SearchDriver, SearchScratch, StopCause,
    TableProbe,
};
pub use repindex::TopicRepIndex;
pub use searcher::{PersonalizedSearcher, SearchConfig, SearchOutcome, SearchStats, TopicScore};
pub use trace::{NoTracer, SearchPhase, SearchTracer};
