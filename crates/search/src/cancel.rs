//! Cooperative cancellation for online search.
//!
//! A [`CancelToken`] carries an optional shared flag and an optional
//! deadline. The searcher polls it at cheap, bounded intervals (between
//! EXPAND rounds and every [`CancelToken::check_every`] probed propagation
//! tables), so a query whose waiter gave up stops burning its worker
//! mid-flight instead of running to completion. A token is deliberately
//! cheap to clone — the flag is an `Arc<AtomicBool>` shared between the
//! waiter (which sets it on budget expiry) and the worker (which polls it).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a search stopped without producing a ranking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// The token's flag was set or its deadline passed; the work counters
    /// record the propagation tables absorbed and EXPAND rounds entered
    /// before the search yielded, so callers (and query traces) can see how
    /// much work the cancellation saved.
    Cancelled {
        /// Tables probed before the search noticed the cancellation.
        probed_tables: usize,
        /// EXPAND rounds entered before the search noticed the cancellation.
        expand_rounds: usize,
    },
    /// The query user is outside the indexed graph (the propagation index
    /// has exactly one table per node).
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// Node count of the indexed graph.
        nodes: usize,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Cancelled {
                probed_tables,
                expand_rounds,
            } => {
                write!(
                    f,
                    "search cancelled after probing {probed_tables} tables \
                     ({expand_rounds} expand rounds)"
                )
            }
            SearchError::UserOutOfRange { user, nodes } => {
                write!(f, "user {user} out of range (graph has {nodes} users)")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// A cancellation/deadline token polled cooperatively by the searcher.
///
/// The default token ([`CancelToken::none`]) never cancels and adds one
/// branch per probed table to the hot path.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    check_every: Option<u32>,
    check_delay: Duration,
}

impl CancelToken {
    /// Probed tables between cancellation checks when not overridden with
    /// [`CancelToken::with_check_every`]. Small enough that a worker is
    /// released within microseconds of a table probe, large enough that
    /// `Instant::now` stays off the per-table path.
    pub const DEFAULT_CHECK_EVERY: u32 = 16;

    /// A token that never cancels.
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// A token observing (and able to set) a shared flag.
    pub fn with_flag(flag: Arc<AtomicBool>) -> Self {
        CancelToken {
            flag: Some(flag),
            ..CancelToken::default()
        }
    }

    /// Also cancel once `deadline` passes, even if nobody sets the flag.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Override the number of probed tables between checks (min 1).
    #[must_use]
    pub fn with_check_every(mut self, tables: u32) -> Self {
        self.check_every = Some(tables.max(1));
        self
    }

    /// Fault injection: sleep this long at every cancellation check. Used
    /// by the serve tests to make a search deliberately slow and verify it
    /// is abandoned mid-flight; never set on production paths.
    #[must_use]
    pub fn with_check_delay(mut self, delay: Duration) -> Self {
        self.check_delay = delay;
        self
    }

    /// The absolute deadline, when one was set. A scatter-gather caller
    /// derives per-RPC read timeouts from this so a slow shard cannot hold
    /// a reply past the query budget.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Probed tables between cancellation checks.
    pub fn check_every(&self) -> u32 {
        self.check_every.unwrap_or(Self::DEFAULT_CHECK_EVERY)
    }

    /// Set the shared flag (no-op for flagless tokens).
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether the flag is set or the deadline has passed. Cheap when the
    /// token has no deadline; one `Instant::now` otherwise.
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Acquire) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// One cancellation checkpoint: applies the injected delay (if any),
    /// then reports whether the search should stop.
    pub fn checkpoint(&self) -> bool {
        if !self.check_delay.is_zero() {
            std::thread::sleep(self.check_delay);
        }
        self.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        assert!(!t.checkpoint());
        t.cancel(); // no flag: a no-op, not a panic
        assert!(!t.is_cancelled());
    }

    #[test]
    fn flag_is_shared_between_clones() {
        let t = CancelToken::with_flag(Arc::new(AtomicBool::new(false)));
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn past_deadline_cancels_without_flag() {
        let t = CancelToken::none().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let live = CancelToken::none().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!live.is_cancelled());
    }

    #[test]
    fn check_every_is_clamped_positive() {
        assert_eq!(CancelToken::none().with_check_every(0).check_every(), 1);
        assert_eq!(
            CancelToken::none().check_every(),
            CancelToken::DEFAULT_CHECK_EVERY
        );
    }
}
