//! The per-query search state machine, factored out of
//! [`crate::searcher::PersonalizedSearcher`] so that table probes can come
//! from anywhere.
//!
//! Algorithm 10/11 reads exactly one kind of index data at query time: the
//! propagation tables `Γ(u)` of the query user and the expanded marked
//! nodes. Everything else — representative bookkeeping, score accumulation,
//! upper-bound pruning, round control, ranking — is pure arithmetic over
//! those probes. [`SearchDriver`] owns that arithmetic and asks its caller
//! to perform the probes:
//!
//! ```text
//! loop {
//!     match driver.next_step(...)? {
//!         DriverStep::Probe(list) => for each (u, ep_u):
//!             feed back TableProbe { Γ(u) ∩ reps, marked candidates },
//!         DriverStep::Done(cause) => break,
//!     }
//! }
//! driver.finish(...)
//! ```
//!
//! The single-node searcher drives it with local [`probe_gamma`] calls; the
//! sharded router (`pit-router`) drives the *same* state machine with
//! batched remote probes, one scatter per round. Because every score
//! mutation happens here, in probe order, a sharded search is bit-identical
//! to a single-node one by construction — there is no second ranking code
//! path to diverge.
//!
//! Probe replies must be fed back **in the order the probe list was
//! issued**; that order is the absorption order of Algorithm 10/11, and
//! first-cover representative absorption makes it semantically load-bearing.
//! A caller that cannot obtain a table (failed shard) calls
//! [`SearchDriver::skip_probe`] instead, explicitly accepting a degraded
//! (non-bit-identical) answer.

use crate::cancel::{CancelToken, SearchError};
use crate::repindex::TopicRepIndex;
use crate::searcher::{SearchConfig, SearchOutcome, TopicScore};
use crate::trace::{SearchPhase, SearchTracer};
use pit_graph::{NodeId, TopicId};
use pit_index::NodePropagation;
use pit_topics::{KeywordQuery, TopicSpace};
use rustc_hash::{FxHashMap, FxHashSet};

/// Per-topic working state during one query.
struct TopicState {
    topic: TopicId,
    /// `W_r[t]` — total weight still outstanding (representatives of this
    /// topic not yet absorbed).
    remaining_weight: f64,
    /// `heap[t]` — influence accumulated so far.
    score: f64,
    /// False once pruned or exhausted; no further refinement.
    alive: bool,
    /// True when eliminated by the upper-bound rule specifically.
    pruned: bool,
}

/// Inverted per-query view of the loaded representative sets: representative
/// node → the `(topic index, weight)` entries it carries. A representative is
/// *absorbed* (removed) the first time a probed table contains it, which is
/// exactly Algorithm 10/11's `S_i ← S_i \ vInner` bookkeeping — but allows a
/// probed table to be intersected in one pass instead of rescanning every
/// topic's remaining list.
///
/// Entries live in one flat arena (a node's entries are a contiguous slice)
/// so loading a query's representative sets costs two allocations, not one
/// per shared representative.
struct RepMap {
    /// node → (start, len) into `entries`.
    index: FxHashMap<NodeId, (u32, u32)>,
    /// Flat `(topic index, weight)` entries grouped by node.
    entries: Vec<(u32, f64)>,
}

impl RepMap {
    /// Build from `(node, topic index, weight)` triples.
    fn build(mut triples: Vec<(NodeId, u32, f64)>) -> Self {
        triples.sort_unstable_by_key(|&(n, _, _)| n);
        let mut index = FxHashMap::with_capacity_and_hasher(triples.len(), Default::default());
        let mut entries = Vec::with_capacity(triples.len());
        let mut i = 0;
        while i < triples.len() {
            let node = triples[i].0;
            let start = entries.len() as u32;
            while i < triples.len() && triples[i].0 == node {
                entries.push((triples[i].1, triples[i].2));
                i += 1;
            }
            index.insert(node, (start, entries.len() as u32 - start));
        }
        RepMap { index, entries }
    }

    fn contains(&self, node: NodeId) -> bool {
        self.index.contains_key(&node)
    }

    /// Remove and return the entry slice bounds for `node`, if present.
    fn take(&mut self, node: NodeId) -> Option<(u32, u32)> {
        self.index.remove(&node)
    }
}

/// One probed table's contribution, ready to feed into the driver.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableProbe {
    /// `Γ(u)` restricted to (a superset of) the query's still-outstanding
    /// representative nodes, with each probability pre-chained through the
    /// probing entry point: `(x, ep_u · Γ(u)[x])`, **ascending by node id**
    /// — the canonical credit order. Entries whose representative was
    /// already absorbed are ignored at feed time, so a producer may
    /// intersect against the query's initial representative universe
    /// without tracking absorption.
    pub hits: Vec<(NodeId, f64)>,
    /// Marked nodes `w` of `Γ(u)` with their chained entry probability
    /// `ep_w = ep_u · Γ(u)[w]`, already filtered to `ep_w ≥ θ`, in the
    /// table's marked order (ascending by node id).
    pub cands: Vec<(NodeId, f64)>,
}

impl TableProbe {
    /// The residual upper bound this table adds to the frontier: the largest
    /// chained entry probability among its candidates. This is the §5.2
    /// bound a shard reports alongside its probe replies; a shard whose
    /// outstanding bound falls below the global k-th score is never probed
    /// again (see `pit-router`).
    pub fn bound(&self) -> f64 {
        self.cands.iter().map(|&(_, ep)| ep).fold(0.0, f64::max)
    }
}

/// Compute one table's [`TableProbe`]: intersect `Γ(u)` with the
/// representative universe (membership via `is_rep`) and chain its marked
/// nodes through `ep_u`. Iterates `Γ(u)` in storage order (ascending node
/// id), so both output lists come out canonically ordered.
pub fn probe_gamma(
    gamma: &NodePropagation,
    ep_u: f64,
    min_ep: f64,
    is_rep: &dyn Fn(NodeId) -> bool,
) -> TableProbe {
    let mut hits = Vec::new();
    for (x, p) in gamma.iter() {
        if is_rep(x) {
            hits.push((x, ep_u * p));
        }
    }
    let mut cands = Vec::new();
    for &w in gamma.marked() {
        let ep_w = ep_u * gamma.get(w).unwrap_or(0.0);
        if ep_w >= min_ep {
            cands.push((w, ep_w));
        }
    }
    TableProbe { hits, cands }
}

/// The set of representative nodes a query can ever credit — the union of
/// the related topics' representative sets at query start. A shard answering
/// probe requests rebuilds this from the query's terms (its topic space and
/// representative index are replicated) and intersects tables against it.
pub struct RepUniverse {
    nodes: FxHashSet<NodeId>,
}

impl RepUniverse {
    /// Collect the representative universe for `query`.
    pub fn for_query(space: &TopicSpace, reps: &TopicRepIndex, query: &KeywordQuery) -> Self {
        let mut nodes = FxHashSet::default();
        for t in query.related_topics(space) {
            for (node, _w) in reps.get(t).iter() {
                nodes.insert(node);
            }
        }
        RepUniverse { nodes }
    }

    /// Is `node` a representative of any related topic?
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Number of distinct representative nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the query relates to no representatives at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Why the driver stopped asking for probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// The top-k is decided: no alive topic outside it can still climb in
    /// (`T' \ T^k = ∅` after pruning). Frontier nodes may remain unprobed —
    /// the upper bound proved them irrelevant.
    Settled,
    /// The frontier ran dry: every reachable marked node above θ was probed.
    FrontierExhausted,
    /// The EXPAND round cap was reached with the frontier still live.
    RoundCap,
}

/// What the caller must do next.
#[derive(Clone, Debug)]
pub enum DriverStep {
    /// Probe `Γ(u)` for each `(u, ep_u)` and feed each reply back **in this
    /// order** via [`SearchDriver::feed`] (or [`SearchDriver::skip_probe`]).
    Probe(Vec<(NodeId, f64)>),
    /// The search is complete; call [`SearchDriver::finish`].
    Done(StopCause),
}

enum RoundState {
    /// Round 0 — the query user's own `Γ(v)` — has not been issued yet.
    Seed,
    /// A probe list is outstanding; `fed` of `pending` replies arrived.
    Probing,
    /// Between rounds: evaluate stop conditions, maybe start another.
    Idle,
    /// Stop conditions fired.
    Finished(StopCause),
}

/// The externally-probed Algorithm 10/11 state machine. See the module docs
/// for the driving loop; [`crate::searcher::PersonalizedSearcher`] is the
/// reference caller.
pub struct SearchDriver {
    config: SearchConfig,
    min_ep: f64,
    topics: Vec<TopicState>,
    rep_map: RepMap,
    visited: FxHashSet<NodeId>,
    /// The current ring, as produced by the previous round (may contain
    /// duplicates and already-visited nodes; filtered when a round starts).
    frontier: Vec<(NodeId, f64)>,
    /// The ring being collected by the in-flight round.
    next_frontier: Vec<(NodeId, f64)>,
    /// Probe list of the in-flight round, in issue order.
    pending: Vec<(NodeId, f64)>,
    fed: usize,
    /// This round's `maxEP` at the time it started (the pruning bound).
    round_bound: f64,
    tables_at_round_start: usize,
    state: RoundState,
    /// False until the round-0 probe of `Γ(v)` has been fed.
    seed_done: bool,
    probed_tables: usize,
    expand_rounds: usize,
    candidate_topics: usize,
    loaded_reps: usize,
    check_every: u32,
    until_check: u32,
}

impl SearchDriver {
    /// Gather phase (Algorithm 10 lines 1–3): validate the user, load the
    /// related topics' representative sets, and stage the seed probe of the
    /// query user's own `Γ(v)`.
    ///
    /// `node_count` is the size of the indexed node universe (the
    /// propagation index has one table per node); `min_ep` is the expansion
    /// resolution θ — see [`crate::searcher::PersonalizedSearcher`].
    ///
    /// # Errors
    /// [`SearchError::UserOutOfRange`] when `query.user` is not indexed.
    ///
    /// # Panics
    /// Panics if `config.k` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        space: &TopicSpace,
        reps: &TopicRepIndex,
        config: SearchConfig,
        query: &KeywordQuery,
        node_count: usize,
        min_ep: f64,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<SearchDriver, SearchError> {
        assert!(config.k >= 1, "k must be positive");
        let v = query.user;
        if v.index() >= node_count {
            return Err(SearchError::UserOutOfRange {
                user: v.0,
                nodes: node_count,
            });
        }
        let check_every = cancel.check_every();
        let topic_ids = query.related_topics(space);
        let candidate_topics = topic_ids.len();
        tracer.phase_begin(SearchPhase::Gather);

        // Load the representative sets. This copy is the transient query
        // footprint the paper's space figures measure.
        let mut topics: Vec<TopicState> = Vec::with_capacity(topic_ids.len());
        let mut triples: Vec<(NodeId, u32, f64)> = Vec::new();
        for (ti, &t) in topic_ids.iter().enumerate() {
            let set = reps.get(t);
            for (node, w) in set.iter() {
                triples.push((node, ti as u32, w));
            }
            topics.push(TopicState {
                topic: t,
                remaining_weight: set.total_weight(),
                score: 0.0,
                alive: true,
                pruned: false,
            });
        }
        let loaded_reps = triples.len();
        let rep_map = RepMap::build(triples);
        let mut visited = FxHashSet::default();
        visited.insert(v);

        Ok(SearchDriver {
            config,
            min_ep,
            topics,
            rep_map,
            visited,
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            pending: vec![(v, 1.0)],
            fed: 0,
            round_bound: 0.0,
            tables_at_round_start: 0,
            state: RoundState::Seed,
            seed_done: false,
            probed_tables: 0,
            expand_rounds: 0,
            candidate_topics,
            loaded_reps,
            check_every,
            until_check: check_every,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The expansion resolution θ this driver filters candidates with.
    pub fn min_ep(&self) -> f64 {
        self.min_ep
    }

    /// Tables fed (and counted) so far.
    pub fn probed_tables(&self) -> usize {
        self.probed_tables
    }

    /// EXPAND rounds started so far.
    pub fn expand_rounds(&self) -> usize {
        self.expand_rounds
    }

    /// Advance to the next step: either a probe list the caller must
    /// resolve, or the stop verdict. Loop-top cancellation and upper-bound
    /// pruning (Algorithm 10 lines 17–21) happen here.
    ///
    /// # Errors
    /// [`SearchError::Cancelled`] when `cancel` has fired.
    pub fn next_step(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<DriverStep, SearchError> {
        loop {
            match self.state {
                RoundState::Seed => {
                    self.state = RoundState::Probing;
                    return Ok(DriverStep::Probe(self.pending.clone()));
                }
                RoundState::Probing => {
                    // Re-issue the outstanding tail (idempotent for callers
                    // that interleave next_step with feeds).
                    return Ok(DriverStep::Probe(self.pending[self.fed..].to_vec()));
                }
                RoundState::Finished(cause) => return Ok(DriverStep::Done(cause)),
                RoundState::Idle => {
                    if cancel.is_cancelled() {
                        return Err(SearchError::Cancelled {
                            probed_tables: self.probed_tables,
                            expand_rounds: self.expand_rounds,
                        });
                    }
                    let max_ep = self.frontier.iter().map(|&(_, ep)| ep).fold(0.0, f64::max);
                    if self.config.prune {
                        self.prune_hopeless(max_ep);
                    }
                    let needs = self.needs_expansion();
                    if !needs || self.frontier.is_empty() {
                        let cause = if !needs {
                            StopCause::Settled
                        } else {
                            StopCause::FrontierExhausted
                        };
                        self.state = RoundState::Finished(cause);
                        continue;
                    }
                    if self.expand_rounds >= self.config.max_expand_rounds {
                        self.state = RoundState::Finished(StopCause::RoundCap);
                        continue;
                    }
                    self.expand_rounds += 1;
                    tracer.phase_begin(SearchPhase::ExpandRound);
                    self.round_bound = max_ep;
                    self.tables_at_round_start = self.probed_tables;
                    self.next_frontier.clear();

                    // The round's probe list: frontier order, first
                    // occurrence only, already-visited and dead entries
                    // dropped (Algorithm 11's per-node visited check, hoisted
                    // so the whole round can be scattered at once).
                    let mut chosen = FxHashSet::default();
                    let mut pending = Vec::new();
                    for &(u, ep_u) in &self.frontier {
                        if ep_u <= 0.0 || self.visited.contains(&u) || !chosen.insert(u) {
                            continue;
                        }
                        pending.push((u, ep_u));
                    }
                    if pending.is_empty() {
                        // The round ran with nothing probeable — close it
                        // out exactly as a probed round would.
                        tracer.phase_end(SearchPhase::ExpandRound, 0);
                        if self.config.prune {
                            self.prune_hopeless(self.round_bound);
                        }
                        self.frontier = std::mem::take(&mut self.next_frontier);
                        continue;
                    }
                    self.pending = pending;
                    self.fed = 0;
                    self.state = RoundState::Probing;
                    return Ok(DriverStep::Probe(self.pending.clone()));
                }
            }
        }
    }

    /// Feed the reply for the next outstanding probe. Replies must arrive in
    /// the order the probe list was issued; the driver absorbs the table's
    /// representative hits (first cover wins) and extends the next ring with
    /// its candidates.
    ///
    /// # Errors
    /// [`SearchError::Cancelled`] at the per-table checkpoint cadence (same
    /// as the single-node searcher).
    pub fn feed(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        probe: &TableProbe,
    ) -> Result<(), SearchError> {
        debug_assert!(
            matches!(self.state, RoundState::Probing) && self.fed < self.pending.len(),
            "feed without an outstanding probe"
        );
        let (u, _ep_u) = self.pending[self.fed];
        self.visited.insert(u);
        self.probed_tables += 1;
        for &(x, p) in &probe.hits {
            if let Some(slice) = self.rep_map.take(x) {
                let (start, len) = (slice.0 as usize, slice.1 as usize);
                for &(ti, w) in &self.rep_map.entries[start..start + len] {
                    let state = &mut self.topics[ti as usize];
                    state.score += p * w;
                    state.remaining_weight = (state.remaining_weight - w).max(0.0);
                    if state.remaining_weight <= f64::EPSILON {
                        state.alive = false; // S_i exhausted
                    }
                }
            }
        }
        let checkpoint = self.table_checkpoint(cancel);
        // Candidates extend the ring only after a clean checkpoint, matching
        // the single-node order (absorb, checkpoint, collect marked).
        if checkpoint.is_ok() {
            for &(w, ep_w) in &probe.cands {
                if ep_w >= self.min_ep && !self.visited.contains(&w) {
                    self.next_frontier.push((w, ep_w));
                }
            }
            self.advance(tracer);
        }
        checkpoint
    }

    /// Skip the next outstanding probe: its table could not be obtained
    /// (failed or timed-out shard) and the caller accepts a degraded answer.
    /// The node is marked visited and contributes nothing; work counters do
    /// not move.
    pub fn skip_probe(&mut self, tracer: &mut dyn SearchTracer) {
        debug_assert!(
            matches!(self.state, RoundState::Probing) && self.fed < self.pending.len(),
            "skip without an outstanding probe"
        );
        let (u, _ep_u) = self.pending[self.fed];
        self.visited.insert(u);
        self.advance(tracer);
    }

    /// Book one resolved probe; when the round's list is exhausted, close
    /// the round (end-of-round pruning, ring swap).
    fn advance(&mut self, tracer: &mut dyn SearchTracer) {
        self.fed += 1;
        if self.fed < self.pending.len() {
            return;
        }
        if !self.seed_done {
            // Round 0 (the query user's own table): the ring it produced IS
            // the initial frontier; no pruning until the loop top sees it.
            self.seed_done = true;
            tracer.phase_end(SearchPhase::Gather, self.loaded_reps as u64);
        } else {
            tracer.phase_end(
                SearchPhase::ExpandRound,
                (self.probed_tables - self.tables_at_round_start) as u64,
            );
            if self.config.prune {
                // Aggregated Γ values may exceed 1 on multi-path graphs, so
                // the next ring's entry points can be *larger* than this
                // round's; the bound must cover both rings we know about.
                let next_max = self
                    .next_frontier
                    .iter()
                    .map(|&(_, ep)| ep)
                    .fold(0.0, f64::max);
                self.prune_hopeless(self.round_bound.max(next_max));
            }
        }
        self.frontier = std::mem::take(&mut self.next_frontier);
        self.pending.clear();
        self.fed = 0;
        self.state = RoundState::Idle;
    }

    /// Probe a locally-available table against the driver's own outstanding
    /// representative map (the single-node fast path).
    pub fn probe_local(&self, gamma: &NodePropagation, ep_u: f64) -> TableProbe {
        probe_gamma(gamma, ep_u, self.min_ep, &|x| self.rep_map.contains(x))
    }

    /// The probes a bound-driven stop left unexplored: the remaining
    /// frontier after the same dedup/visited filtering a round would apply,
    /// in frontier order. Empty unless the driver stopped with frontier
    /// still live ([`StopCause::Settled`] or [`StopCause::RoundCap`]).
    pub fn unexplored(&self) -> Vec<(NodeId, f64)> {
        let mut chosen = FxHashSet::default();
        let mut out = Vec::new();
        for &(u, ep_u) in &self.frontier {
            if ep_u <= 0.0 || self.visited.contains(&u) || !chosen.insert(u) {
                continue;
            }
            out.push((u, ep_u));
        }
        out
    }

    /// Rank and return the outcome (Algorithm 10's final sort). Call after
    /// [`DriverStep::Done`].
    pub fn finish(self, tracer: &mut dyn SearchTracer) -> SearchOutcome {
        tracer.phase_begin(SearchPhase::Rank);
        let mut ranked: Vec<TopicScore> = self
            .topics
            .iter()
            .map(|t| TopicScore {
                topic: t.topic,
                score: t.score,
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.topic.cmp(&b.topic)));
        ranked.truncate(self.config.k);
        tracer.phase_end(SearchPhase::Rank, self.candidate_topics as u64);
        SearchOutcome {
            top_k: ranked,
            candidate_topics: self.candidate_topics,
            pruned_topics: self.topics.iter().filter(|t| t.pruned).count(),
            expand_rounds: self.expand_rounds,
            probed_tables: self.probed_tables,
            loaded_reps: self.loaded_reps,
        }
    }

    /// The current `min(T^k)`: the k-th largest score, or `None` when fewer
    /// than `k` candidates exist (then nothing can be pruned by score).
    fn topk_threshold(&self) -> Option<f64> {
        if self.topics.len() <= self.config.k {
            return None;
        }
        let mut scores: Vec<f64> = self.topics.iter().map(|t| t.score).collect();
        let idx = self.config.k - 1;
        scores.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
        Some(scores[idx])
    }

    /// Lines 17–20 / Algorithm 11 lines 10–12: stop refining topics whose
    /// upper bound cannot reach the current top-k.
    fn prune_hopeless(&mut self, max_ep: f64) {
        let Some(threshold) = self.topk_threshold() else {
            return;
        };
        for state in self.topics.iter_mut() {
            if !state.alive {
                continue;
            }
            let upper = state.remaining_weight * max_ep + state.score;
            if threshold >= upper && state.score < threshold {
                state.alive = false;
                state.pruned = true;
            }
        }
    }

    /// Algorithm 10 line 21: expansion continues only while some topic
    /// outside the current top-k is still alive (`T' \ T^k ≠ ∅`).
    fn needs_expansion(&self) -> bool {
        let Some(threshold) = self.topk_threshold() else {
            // Everything fits in the top-k: refining cannot change the set.
            return false;
        };
        self.topics.iter().any(|t| t.alive && t.score < threshold)
    }

    /// One per-probed-table cancellation checkpoint: fires every
    /// `check_every` tables and stops the search with the work done so far.
    fn table_checkpoint(&mut self, cancel: &CancelToken) -> Result<(), SearchError> {
        self.until_check -= 1;
        if self.until_check == 0 {
            self.until_check = self.check_every;
            if cancel.checkpoint() {
                return Err(SearchError::Cancelled {
                    probed_tables: self.probed_tables,
                    expand_rounds: self.expand_rounds,
                });
            }
        }
        Ok(())
    }
}
