//! The per-query search state machine, factored out of
//! [`crate::searcher::PersonalizedSearcher`] so that table probes can come
//! from anywhere.
//!
//! Algorithm 10/11 reads exactly one kind of index data at query time: the
//! propagation tables `Γ(u)` of the query user and the expanded marked
//! nodes. Everything else — representative bookkeeping, score accumulation,
//! upper-bound pruning, round control, ranking — is pure arithmetic over
//! those probes. [`SearchDriver`] owns that arithmetic and asks its caller
//! to perform the probes. Two driving patterns exist:
//!
//! ```text
//! // Allocation-free (the single-node hot path):
//! while driver.round_begin(...)? {
//!     while let Some((u, ep_u)) = driver.round_probe(i) {
//!         driver.feed_gamma(..., Γ(u), ep_u)?; i += 1;
//!     }
//! }
//!
//! // Batched (the sharded router's scatter path):
//! loop {
//!     match driver.next_step(...)? {
//!         DriverStep::Probe(list) => for each (u, ep_u):
//!             feed back TableProbe { Γ(u) ∩ reps, marked candidates },
//!         DriverStep::Done(cause) => break,
//!     }
//! }
//! driver.finish(...)
//! ```
//!
//! The single-node searcher drives it with local [`Gamma`] views through
//! [`SearchDriver::feed_gamma`]; the sharded router (`pit-router`) drives
//! the *same* state machine with batched remote probes, one scatter per
//! round. Because every score mutation happens here, in probe order, a
//! sharded search is bit-identical to a single-node one by construction —
//! there is no second ranking code path to diverge.
//!
//! All per-query buffers live in a caller-owned [`SearchScratch`] arena, so
//! a serving worker that reuses one scratch across queries performs no
//! steady-state heap allocation inside the probe/feed loop: frontiers,
//! visited sets, probe buffers and score scratch all retain their capacity
//! between queries.
//!
//! Probe replies must be fed back **in the order the probe list was
//! issued**; that order is the absorption order of Algorithm 10/11, and
//! first-cover representative absorption makes it semantically load-bearing.
//! A caller that cannot obtain a table (failed shard) calls
//! [`SearchDriver::skip_probe`] instead, explicitly accepting a degraded
//! (non-bit-identical) answer.

use crate::cancel::{CancelToken, SearchError};
use crate::repindex::TopicRepIndex;
use crate::searcher::{SearchConfig, SearchOutcome, TopicScore};
use crate::trace::{SearchPhase, SearchTracer};
use pit_graph::{NodeId, TopicId};
use pit_index::Gamma;
use pit_topics::{KeywordQuery, TopicSpace};
use rustc_hash::{FxHashMap, FxHashSet};

/// Per-topic working state during one query.
struct TopicState {
    topic: TopicId,
    /// `W_r[t]` — total weight still outstanding (representatives of this
    /// topic not yet absorbed).
    remaining_weight: f64,
    /// `heap[t]` — influence accumulated so far.
    score: f64,
    /// False once pruned or exhausted; no further refinement.
    alive: bool,
    /// True when eliminated by the upper-bound rule specifically.
    pruned: bool,
}

/// Reusable per-query buffers: every growable structure a query touches,
/// owned by the caller (one per serving worker) so repeated queries reuse
/// capacity instead of re-allocating. [`SearchDriver::begin`] clears the
/// contents but keeps the capacity; a scratch is plain data with no query
/// state of its own, so reusing one across arbitrary queries is always
/// correct (and [`Default`] gives a fresh empty one).
///
/// The representative map lives here too, as the paper's per-query inverted
/// view: `rep_index` maps a representative node to its `(start, len)` slice
/// of `rep_entries`, a flat `(topic index, weight)` arena grouped by node. A
/// representative is *absorbed* (removed from `rep_index`) the first time a
/// probed table contains it — exactly Algorithm 10/11's `S_i ← S_i \ vInner`
/// bookkeeping, but one hash probe per table entry instead of rescanning
/// every topic's remaining list.
#[derive(Default)]
pub struct SearchScratch {
    topics: Vec<TopicState>,
    /// Gather-phase staging: `(node, topic index, weight)` triples.
    triples: Vec<(NodeId, u32, f64)>,
    /// Representative node → (start, len) into `rep_entries`.
    rep_index: FxHashMap<NodeId, (u32, u32)>,
    /// Flat `(topic index, weight)` entries grouped by node.
    rep_entries: Vec<(u32, f64)>,
    visited: FxHashSet<NodeId>,
    /// The current ring, as produced by the previous round (may contain
    /// duplicates and already-visited nodes; filtered when a round starts).
    frontier: Vec<(NodeId, f64)>,
    /// The ring being collected by the in-flight round.
    next_frontier: Vec<(NodeId, f64)>,
    /// Probe list of the in-flight round, in issue order.
    pending: Vec<(NodeId, f64)>,
    /// Round-start dedup set (first occurrence wins).
    chosen: FxHashSet<NodeId>,
    /// Probe buffer for [`SearchDriver::feed_gamma`].
    probe: TableProbe,
    /// Score buffer for the k-th-threshold selection.
    scores: Vec<f64>,
}

impl SearchScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all buffers, retaining capacity.
    fn reset(&mut self) {
        self.topics.clear();
        self.triples.clear();
        self.rep_index.clear();
        self.rep_entries.clear();
        self.visited.clear();
        self.frontier.clear();
        self.next_frontier.clear();
        self.pending.clear();
        self.chosen.clear();
        self.probe.hits.clear();
        self.probe.cands.clear();
        self.scores.clear();
    }
}

/// Group sorted `(node, topic, weight)` triples into the flat representative
/// map (`rep_index` + `rep_entries`), reusing both containers' capacity.
fn build_rep_map(
    triples: &mut [(NodeId, u32, f64)],
    index: &mut FxHashMap<NodeId, (u32, u32)>,
    entries: &mut Vec<(u32, f64)>,
) {
    triples.sort_unstable_by_key(|&(n, _, _)| n);
    index.reserve(triples.len());
    let mut i = 0;
    while i < triples.len() {
        let node = triples[i].0;
        let start = entries.len() as u32;
        while i < triples.len() && triples[i].0 == node {
            entries.push((triples[i].1, triples[i].2));
            i += 1;
        }
        index.insert(node, (start, entries.len() as u32 - start));
    }
}

/// One probed table's contribution, ready to feed into the driver.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableProbe {
    /// `Γ(u)` restricted to (a superset of) the query's still-outstanding
    /// representative nodes, with each probability pre-chained through the
    /// probing entry point: `(x, ep_u · Γ(u)[x])`, **ascending by node id**
    /// — the canonical credit order. Entries whose representative was
    /// already absorbed are ignored at feed time, so a producer may
    /// intersect against the query's initial representative universe
    /// without tracking absorption.
    pub hits: Vec<(NodeId, f64)>,
    /// Marked nodes `w` of `Γ(u)` with their chained entry probability
    /// `ep_w = ep_u · Γ(u)[w]`, already filtered to `ep_w ≥ θ`, in the
    /// table's marked order (ascending by node id).
    pub cands: Vec<(NodeId, f64)>,
}

impl TableProbe {
    /// The residual upper bound this table adds to the frontier: the largest
    /// chained entry probability among its candidates. This is the §5.2
    /// bound a shard reports alongside its probe replies; a shard whose
    /// outstanding bound falls below the global k-th score is never probed
    /// again (see `pit-router`).
    pub fn bound(&self) -> f64 {
        self.cands.iter().map(|&(_, ep)| ep).fold(0.0, f64::max)
    }
}

/// Compute one table's [`TableProbe`] into a caller-owned buffer (cleared
/// first): intersect `Γ(u)` with the representative universe (membership via
/// `is_rep`) and chain its marked nodes through `ep_u`. Iterates `Γ(u)` in
/// storage order (ascending node id), so both output lists come out
/// canonically ordered. Allocation-free once `out`'s vectors are warm.
pub fn probe_gamma_into(
    gamma: Gamma<'_>,
    ep_u: f64,
    min_ep: f64,
    is_rep: &dyn Fn(NodeId) -> bool,
    out: &mut TableProbe,
) {
    out.hits.clear();
    out.cands.clear();
    for (x, p) in gamma.iter() {
        if is_rep(x) {
            out.hits.push((x, ep_u * p));
        }
    }
    for &w in gamma.marked() {
        let ep_w = ep_u * gamma.get(w).unwrap_or(0.0);
        if ep_w >= min_ep {
            out.cands.push((w, ep_w));
        }
    }
}

/// [`probe_gamma_into`] returning a freshly-allocated probe (the batching
/// paths, where the probe outlives the table view anyway).
pub fn probe_gamma(
    gamma: Gamma<'_>,
    ep_u: f64,
    min_ep: f64,
    is_rep: &dyn Fn(NodeId) -> bool,
) -> TableProbe {
    let mut out = TableProbe::default();
    probe_gamma_into(gamma, ep_u, min_ep, is_rep, &mut out);
    out
}

/// The set of representative nodes a query can ever credit — the union of
/// the related topics' representative sets at query start. A shard answering
/// probe requests rebuilds this from the query's terms (its topic space and
/// representative index are replicated) and intersects tables against it.
pub struct RepUniverse {
    nodes: FxHashSet<NodeId>,
}

impl RepUniverse {
    /// Collect the representative universe for `query`.
    pub fn for_query(space: &TopicSpace, reps: &TopicRepIndex, query: &KeywordQuery) -> Self {
        let mut nodes = FxHashSet::default();
        for t in query.related_topics(space) {
            for (node, _w) in reps.get(t).iter() {
                nodes.insert(node);
            }
        }
        RepUniverse { nodes }
    }

    /// Is `node` a representative of any related topic?
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Number of distinct representative nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the query relates to no representatives at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Why the driver stopped asking for probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// The top-k is decided: no alive topic outside it can still climb in
    /// (`T' \ T^k = ∅` after pruning). Frontier nodes may remain unprobed —
    /// the upper bound proved them irrelevant.
    Settled,
    /// The frontier ran dry: every reachable marked node above θ was probed.
    FrontierExhausted,
    /// The EXPAND round cap was reached with the frontier still live.
    RoundCap,
}

/// What the caller must do next.
#[derive(Clone, Debug)]
pub enum DriverStep {
    /// Probe `Γ(u)` for each `(u, ep_u)` and feed each reply back **in this
    /// order** via [`SearchDriver::feed`] (or [`SearchDriver::skip_probe`]).
    Probe(Vec<(NodeId, f64)>),
    /// The search is complete; call [`SearchDriver::finish`].
    Done(StopCause),
}

enum RoundState {
    /// Round 0 — the query user's own `Γ(v)` — has not been issued yet.
    Seed,
    /// A probe list is outstanding; `fed` of `pending` replies arrived.
    Probing,
    /// Between rounds: evaluate stop conditions, maybe start another.
    Idle,
    /// Stop conditions fired.
    Finished(StopCause),
}

/// The externally-probed Algorithm 10/11 state machine. See the module docs
/// for the driving loops; [`crate::searcher::PersonalizedSearcher`] is the
/// reference caller. Borrows its [`SearchScratch`] for the query's duration.
pub struct SearchDriver<'a> {
    scratch: &'a mut SearchScratch,
    config: SearchConfig,
    min_ep: f64,
    fed: usize,
    /// This round's `maxEP` at the time it started (the pruning bound).
    round_bound: f64,
    tables_at_round_start: usize,
    state: RoundState,
    /// False until the round-0 probe of `Γ(v)` has been fed.
    seed_done: bool,
    probed_tables: usize,
    expand_rounds: usize,
    candidate_topics: usize,
    loaded_reps: usize,
    check_every: u32,
    until_check: u32,
}

impl<'a> SearchDriver<'a> {
    /// Gather phase (Algorithm 10 lines 1–3): validate the user, load the
    /// related topics' representative sets into `scratch`, and stage the
    /// seed probe of the query user's own `Γ(v)`.
    ///
    /// `node_count` is the size of the indexed node universe (the
    /// propagation index has one table per node); `min_ep` is the expansion
    /// resolution θ — see [`crate::searcher::PersonalizedSearcher`].
    /// `scratch` is cleared (capacity kept) and owned for the driver's
    /// lifetime.
    ///
    /// # Errors
    /// [`SearchError::UserOutOfRange`] when `query.user` is not indexed.
    ///
    /// # Panics
    /// Panics if `config.k` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        space: &TopicSpace,
        reps: &TopicRepIndex,
        config: SearchConfig,
        query: &KeywordQuery,
        node_count: usize,
        min_ep: f64,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        scratch: &'a mut SearchScratch,
    ) -> Result<SearchDriver<'a>, SearchError> {
        assert!(config.k >= 1, "k must be positive");
        let v = query.user;
        if v.index() >= node_count {
            return Err(SearchError::UserOutOfRange {
                user: v.0,
                nodes: node_count,
            });
        }
        let check_every = cancel.check_every();
        let topic_ids = query.related_topics(space);
        let candidate_topics = topic_ids.len();
        tracer.phase_begin(SearchPhase::Gather);

        // Load the representative sets. This copy is the transient query
        // footprint the paper's space figures measure.
        scratch.reset();
        for (ti, &t) in topic_ids.iter().enumerate() {
            let set = reps.get(t);
            for (node, w) in set.iter() {
                scratch.triples.push((node, ti as u32, w));
            }
            scratch.topics.push(TopicState {
                topic: t,
                remaining_weight: set.total_weight(),
                score: 0.0,
                alive: true,
                pruned: false,
            });
        }
        let loaded_reps = scratch.triples.len();
        build_rep_map(
            &mut scratch.triples,
            &mut scratch.rep_index,
            &mut scratch.rep_entries,
        );
        scratch.visited.insert(v);
        scratch.pending.push((v, 1.0));

        Ok(SearchDriver {
            scratch,
            config,
            min_ep,
            fed: 0,
            round_bound: 0.0,
            tables_at_round_start: 0,
            state: RoundState::Seed,
            seed_done: false,
            probed_tables: 0,
            expand_rounds: 0,
            candidate_topics,
            loaded_reps,
            check_every,
            until_check: check_every,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The expansion resolution θ this driver filters candidates with.
    pub fn min_ep(&self) -> f64 {
        self.min_ep
    }

    /// Tables fed (and counted) so far.
    pub fn probed_tables(&self) -> usize {
        self.probed_tables
    }

    /// EXPAND rounds started so far.
    pub fn expand_rounds(&self) -> usize {
        self.expand_rounds
    }

    /// Run the between-rounds state machine until either a probe list is
    /// outstanding (`Ok(None)`) or the search has stopped (`Ok(Some)`).
    fn ensure_round(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<Option<StopCause>, SearchError> {
        loop {
            match self.state {
                RoundState::Seed => {
                    self.state = RoundState::Probing;
                    return Ok(None);
                }
                RoundState::Probing => return Ok(None),
                RoundState::Finished(cause) => return Ok(Some(cause)),
                RoundState::Idle => {
                    if cancel.is_cancelled() {
                        return Err(SearchError::Cancelled {
                            probed_tables: self.probed_tables,
                            expand_rounds: self.expand_rounds,
                        });
                    }
                    let max_ep = self
                        .scratch
                        .frontier
                        .iter()
                        .map(|&(_, ep)| ep)
                        .fold(0.0, f64::max);
                    if self.config.prune {
                        self.prune_hopeless(max_ep);
                    }
                    let needs = self.needs_expansion();
                    if !needs || self.scratch.frontier.is_empty() {
                        let cause = if !needs {
                            StopCause::Settled
                        } else {
                            StopCause::FrontierExhausted
                        };
                        self.state = RoundState::Finished(cause);
                        continue;
                    }
                    if self.expand_rounds >= self.config.max_expand_rounds {
                        self.state = RoundState::Finished(StopCause::RoundCap);
                        continue;
                    }
                    self.expand_rounds += 1;
                    tracer.phase_begin(SearchPhase::ExpandRound);
                    self.round_bound = max_ep;
                    self.tables_at_round_start = self.probed_tables;

                    // The round's probe list: frontier order, first
                    // occurrence only, already-visited and dead entries
                    // dropped (Algorithm 11's per-node visited check, hoisted
                    // so the whole round can be scattered at once).
                    let SearchScratch {
                        visited,
                        frontier,
                        next_frontier,
                        pending,
                        chosen,
                        ..
                    } = &mut *self.scratch;
                    next_frontier.clear();
                    chosen.clear();
                    pending.clear();
                    for &(u, ep_u) in frontier.iter() {
                        if ep_u <= 0.0 || visited.contains(&u) || !chosen.insert(u) {
                            continue;
                        }
                        pending.push((u, ep_u));
                    }
                    if pending.is_empty() {
                        // The round ran with nothing probeable — close it
                        // out exactly as a probed round would.
                        tracer.phase_end(SearchPhase::ExpandRound, 0);
                        if self.config.prune {
                            self.prune_hopeless(self.round_bound);
                        }
                        self.swap_rings();
                        continue;
                    }
                    self.fed = 0;
                    self.state = RoundState::Probing;
                    return Ok(None);
                }
            }
        }
    }

    /// Make the ring collected by the finished round the current frontier,
    /// keeping both buffers' capacity.
    fn swap_rings(&mut self) {
        std::mem::swap(&mut self.scratch.frontier, &mut self.scratch.next_frontier);
        self.scratch.next_frontier.clear();
    }

    /// Advance to the next step: either a probe list the caller must
    /// resolve, or the stop verdict. Loop-top cancellation and upper-bound
    /// pruning (Algorithm 10 lines 17–21) happen here. This is the batching
    /// API (it clones the probe list); the single-node hot path uses
    /// [`SearchDriver::round_begin`] / [`SearchDriver::round_probe`] /
    /// [`SearchDriver::feed_gamma`] instead, which allocate nothing.
    ///
    /// # Errors
    /// [`SearchError::Cancelled`] when `cancel` has fired.
    pub fn next_step(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<DriverStep, SearchError> {
        match self.ensure_round(cancel, tracer)? {
            Some(cause) => Ok(DriverStep::Done(cause)),
            // Issue the outstanding tail (idempotent for callers that
            // interleave next_step with feeds; the full list right after a
            // round opens, since `fed` is 0 then).
            None => Ok(DriverStep::Probe(self.scratch.pending[self.fed..].to_vec())),
        }
    }

    /// Open the next round if the search is still live. `Ok(true)` means a
    /// probe list is outstanding: resolve it index by index with
    /// [`SearchDriver::round_probe`] + [`SearchDriver::feed_gamma`].
    /// `Ok(false)` means the search stopped; call [`SearchDriver::finish`].
    ///
    /// # Errors
    /// [`SearchError::Cancelled`] when `cancel` has fired.
    pub fn round_begin(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<bool, SearchError> {
        Ok(self.ensure_round(cancel, tracer)?.is_none())
    }

    /// The `i`-th probe of the current round, or `None` once the round's
    /// list is exhausted (the feed of the last probe closes the round and
    /// clears the list, so a `0..` scan terminates by itself).
    pub fn round_probe(&self, i: usize) -> Option<(NodeId, f64)> {
        self.scratch.pending.get(i).copied()
    }

    /// Probe a local table view and feed it in one step, using the scratch
    /// probe buffer — the allocation-free equivalent of
    /// [`SearchDriver::probe_local`] + [`SearchDriver::feed`].
    ///
    /// # Errors
    /// Same as [`SearchDriver::feed`].
    pub fn feed_gamma(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        gamma: Gamma<'_>,
        ep_u: f64,
    ) -> Result<(), SearchError> {
        // Take the probe buffer out of the scratch so `feed` can borrow the
        // scratch mutably alongside it; an empty TableProbe is two dangling
        // Vec headers, so the take/put-back pair never allocates.
        let mut probe = std::mem::take(&mut self.scratch.probe);
        {
            let SearchScratch { rep_index, .. } = &*self.scratch;
            probe_gamma_into(
                gamma,
                ep_u,
                self.min_ep,
                &|x| rep_index.contains_key(&x),
                &mut probe,
            );
        }
        let fed = self.feed(cancel, tracer, &probe);
        self.scratch.probe = probe;
        fed
    }

    /// Feed the reply for the next outstanding probe. Replies must arrive in
    /// the order the probe list was issued; the driver absorbs the table's
    /// representative hits (first cover wins) and extends the next ring with
    /// its candidates.
    ///
    /// # Errors
    /// [`SearchError::Cancelled`] at the per-table checkpoint cadence (same
    /// as the single-node searcher).
    pub fn feed(
        &mut self,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        probe: &TableProbe,
    ) -> Result<(), SearchError> {
        debug_assert!(
            matches!(self.state, RoundState::Probing) && self.fed < self.scratch.pending.len(),
            "feed without an outstanding probe"
        );
        let (u, _ep_u) = self.scratch.pending[self.fed];
        self.probed_tables += 1;
        {
            let SearchScratch {
                topics,
                rep_index,
                rep_entries,
                visited,
                ..
            } = &mut *self.scratch;
            visited.insert(u);
            for &(x, p) in &probe.hits {
                if let Some((start, len)) = rep_index.remove(&x) {
                    let (start, len) = (start as usize, len as usize);
                    for &(ti, w) in &rep_entries[start..start + len] {
                        let state = &mut topics[ti as usize];
                        state.score += p * w;
                        state.remaining_weight = (state.remaining_weight - w).max(0.0);
                        if state.remaining_weight <= f64::EPSILON {
                            state.alive = false; // S_i exhausted
                        }
                    }
                }
            }
        }
        let checkpoint = self.table_checkpoint(cancel);
        // Candidates extend the ring only after a clean checkpoint, matching
        // the single-node order (absorb, checkpoint, collect marked).
        if checkpoint.is_ok() {
            let SearchScratch {
                visited,
                next_frontier,
                ..
            } = &mut *self.scratch;
            for &(w, ep_w) in &probe.cands {
                if ep_w >= self.min_ep && !visited.contains(&w) {
                    next_frontier.push((w, ep_w));
                }
            }
            self.advance(tracer);
        }
        checkpoint
    }

    /// Skip the next outstanding probe: its table could not be obtained
    /// (failed or timed-out shard) and the caller accepts a degraded answer.
    /// The node is marked visited and contributes nothing; work counters do
    /// not move.
    pub fn skip_probe(&mut self, tracer: &mut dyn SearchTracer) {
        debug_assert!(
            matches!(self.state, RoundState::Probing) && self.fed < self.scratch.pending.len(),
            "skip without an outstanding probe"
        );
        let (u, _ep_u) = self.scratch.pending[self.fed];
        self.scratch.visited.insert(u);
        self.advance(tracer);
    }

    /// Book one resolved probe; when the round's list is exhausted, close
    /// the round (end-of-round pruning, ring swap).
    fn advance(&mut self, tracer: &mut dyn SearchTracer) {
        self.fed += 1;
        if self.fed < self.scratch.pending.len() {
            return;
        }
        if !self.seed_done {
            // Round 0 (the query user's own table): the ring it produced IS
            // the initial frontier; no pruning until the loop top sees it.
            self.seed_done = true;
            tracer.phase_end(SearchPhase::Gather, self.loaded_reps as u64);
        } else {
            tracer.phase_end(
                SearchPhase::ExpandRound,
                (self.probed_tables - self.tables_at_round_start) as u64,
            );
            if self.config.prune {
                // Aggregated Γ values may exceed 1 on multi-path graphs, so
                // the next ring's entry points can be *larger* than this
                // round's; the bound must cover both rings we know about.
                let next_max = self
                    .scratch
                    .next_frontier
                    .iter()
                    .map(|&(_, ep)| ep)
                    .fold(0.0, f64::max);
                self.prune_hopeless(self.round_bound.max(next_max));
            }
        }
        self.swap_rings();
        self.scratch.pending.clear();
        self.fed = 0;
        self.state = RoundState::Idle;
    }

    /// Probe a locally-available table against the driver's own outstanding
    /// representative map, into a fresh probe (the compatibility path; the
    /// hot path is [`SearchDriver::feed_gamma`]).
    pub fn probe_local(&self, gamma: Gamma<'_>, ep_u: f64) -> TableProbe {
        probe_gamma(gamma, ep_u, self.min_ep, &|x| {
            self.scratch.rep_index.contains_key(&x)
        })
    }

    /// The probes a bound-driven stop left unexplored: the remaining
    /// frontier after the same dedup/visited filtering a round would apply,
    /// in frontier order. Empty unless the driver stopped with frontier
    /// still live ([`StopCause::Settled`] or [`StopCause::RoundCap`]).
    pub fn unexplored(&self) -> Vec<(NodeId, f64)> {
        let mut chosen = FxHashSet::default();
        let mut out = Vec::new();
        for &(u, ep_u) in &self.scratch.frontier {
            if ep_u <= 0.0 || self.scratch.visited.contains(&u) || !chosen.insert(u) {
                continue;
            }
            out.push((u, ep_u));
        }
        out
    }

    /// Rank and return the outcome (Algorithm 10's final sort). Call after
    /// [`DriverStep::Done`]. Releases the scratch borrow.
    pub fn finish(self, tracer: &mut dyn SearchTracer) -> SearchOutcome {
        tracer.phase_begin(SearchPhase::Rank);
        let mut ranked: Vec<TopicScore> = self
            .scratch
            .topics
            .iter()
            .map(|t| TopicScore {
                topic: t.topic,
                score: t.score,
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.topic.cmp(&b.topic)));
        ranked.truncate(self.config.k);
        tracer.phase_end(SearchPhase::Rank, self.candidate_topics as u64);
        SearchOutcome {
            top_k: ranked,
            candidate_topics: self.candidate_topics,
            pruned_topics: self.scratch.topics.iter().filter(|t| t.pruned).count(),
            expand_rounds: self.expand_rounds,
            probed_tables: self.probed_tables,
            loaded_reps: self.loaded_reps,
        }
    }

    /// Lines 17–20 / Algorithm 11 lines 10–12: stop refining topics whose
    /// upper bound cannot reach the current top-k.
    fn prune_hopeless(&mut self, max_ep: f64) {
        let SearchScratch { topics, scores, .. } = &mut *self.scratch;
        let Some(threshold) = topk_threshold(topics, self.config.k, scores) else {
            return;
        };
        for state in topics.iter_mut() {
            if !state.alive {
                continue;
            }
            let upper = state.remaining_weight * max_ep + state.score;
            if threshold >= upper && state.score < threshold {
                state.alive = false;
                state.pruned = true;
            }
        }
    }

    /// Algorithm 10 line 21: expansion continues only while some topic
    /// outside the current top-k is still alive (`T' \ T^k ≠ ∅`).
    fn needs_expansion(&mut self) -> bool {
        let SearchScratch { topics, scores, .. } = &mut *self.scratch;
        let Some(threshold) = topk_threshold(topics, self.config.k, scores) else {
            // Everything fits in the top-k: refining cannot change the set.
            return false;
        };
        topics.iter().any(|t| t.alive && t.score < threshold)
    }

    /// One per-probed-table cancellation checkpoint: fires every
    /// `check_every` tables and stops the search with the work done so far.
    fn table_checkpoint(&mut self, cancel: &CancelToken) -> Result<(), SearchError> {
        self.until_check -= 1;
        if self.until_check == 0 {
            self.until_check = self.check_every;
            if cancel.checkpoint() {
                return Err(SearchError::Cancelled {
                    probed_tables: self.probed_tables,
                    expand_rounds: self.expand_rounds,
                });
            }
        }
        Ok(())
    }
}

/// The current `min(T^k)`: the k-th largest score, or `None` when fewer
/// than `k` candidates exist (then nothing can be pruned by score). Uses a
/// caller-owned score buffer so repeated calls allocate nothing.
fn topk_threshold(topics: &[TopicState], k: usize, scores: &mut Vec<f64>) -> Option<f64> {
    if topics.len() <= k {
        return None;
    }
    scores.clear();
    scores.extend(topics.iter().map(|t| t.score));
    let idx = k - 1;
    scores.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
    scores.get(idx).copied()
}
