//! Top-k personalized influential topic search (Algorithms 10 and 11).

use crate::cancel::{CancelToken, SearchError};
use crate::repindex::TopicRepIndex;
use crate::trace::{NoTracer, SearchPhase, SearchTracer};
use pit_graph::{NodeId, TopicId};
use pit_index::PropagationIndex;
use pit_topics::{KeywordQuery, TopicSpace};
use rustc_hash::{FxHashMap, FxHashSet};

/// Online search parameters.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Result size `k`.
    pub k: usize,
    /// Cap on EXPAND rounds (Algorithm 11 recursion depth). Each round walks
    /// one ring of marked nodes outward; the propagation threshold `θ` makes
    /// deep rings negligible, and the paper's trace never needs more than a
    /// couple.
    pub max_expand_rounds: usize,
    /// Enable the upper-bound pruning rule. Disabled only by the pruning
    /// safety tests — with pruning off, every topic is refined to exhaustion.
    pub prune: bool,
}

impl SearchConfig {
    /// Standard configuration for a given `k`.
    pub fn top(k: usize) -> Self {
        SearchConfig {
            k,
            max_expand_rounds: 4,
            prune: true,
        }
    }
}

/// One ranked result entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopicScore {
    /// The topic.
    pub topic: TopicId,
    /// Its aggregated influence `I*(t, v)` on the query user.
    pub score: f64,
}

/// The result of one PIT-Search, with the work counters the paper's
/// efficiency experiments report.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Top-k topics, sorted by descending score (ties by topic id).
    pub top_k: Vec<TopicScore>,
    /// `|T_q|` — number of query-related topics considered.
    pub candidate_topics: usize,
    /// Topics eliminated by the upper-bound rule before exhaustion.
    pub pruned_topics: usize,
    /// EXPAND rounds actually executed.
    pub expand_rounds: usize,
    /// Propagation tables `Γ(·)` probed (1 + expanded marked nodes).
    pub probed_tables: usize,
    /// Representative entries loaded at query start (the transient space the
    /// paper measures in Figures 13/14).
    pub loaded_reps: usize,
}

/// The work counters of a [`SearchOutcome`] alone — the copyable part the
/// serving stack records into traces and per-stage histograms without
/// holding on to the ranking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// `|T_q|` — number of query-related topics considered.
    pub candidate_topics: usize,
    /// Topics eliminated by the upper-bound rule before exhaustion.
    pub pruned_topics: usize,
    /// EXPAND rounds actually executed.
    pub expand_rounds: usize,
    /// Propagation tables `Γ(·)` probed (1 + expanded marked nodes).
    pub probed_tables: usize,
    /// Representative entries loaded at query start.
    pub loaded_reps: usize,
}

impl SearchOutcome {
    /// The outcome's work counters.
    pub fn stats(&self) -> SearchStats {
        SearchStats {
            candidate_topics: self.candidate_topics,
            pruned_topics: self.pruned_topics,
            expand_rounds: self.expand_rounds,
            probed_tables: self.probed_tables,
            loaded_reps: self.loaded_reps,
        }
    }
}

/// Per-topic working state during one query.
struct TopicState {
    topic: TopicId,
    /// `W_r[t]` — total weight still outstanding (representatives of this
    /// topic not yet absorbed).
    remaining_weight: f64,
    /// `heap[t]` — influence accumulated so far.
    score: f64,
    /// False once pruned or exhausted; no further refinement.
    alive: bool,
    /// True when eliminated by the upper-bound rule specifically.
    pruned: bool,
}

/// Inverted per-query view of the loaded representative sets: representative
/// node → the `(topic index, weight)` entries it carries. A representative is
/// *absorbed* (removed) the first time a probed table contains it, which is
/// exactly Algorithm 10/11's `S_i ← S_i \ vInner` bookkeeping — but allows a
/// probed table to be intersected in `O(min(|Γ|, remaining))` instead of
/// rescanning every topic's remaining list.
///
/// Entries live in one flat arena (a node's entries are a contiguous slice)
/// so loading a query's representative sets costs two allocations, not one
/// per shared representative.
struct RepMap {
    /// node → (start, len) into `entries`.
    index: FxHashMap<NodeId, (u32, u32)>,
    /// Flat `(topic index, weight)` entries grouped by node.
    entries: Vec<(u32, f64)>,
}

impl RepMap {
    /// Build from `(node, topic index, weight)` triples.
    fn build(mut triples: Vec<(NodeId, u32, f64)>) -> Self {
        triples.sort_unstable_by_key(|&(n, _, _)| n);
        let mut index = FxHashMap::with_capacity_and_hasher(triples.len(), Default::default());
        let mut entries = Vec::with_capacity(triples.len());
        let mut i = 0;
        while i < triples.len() {
            let node = triples[i].0;
            let start = entries.len() as u32;
            while i < triples.len() && triples[i].0 == node {
                entries.push((triples[i].1, triples[i].2));
                i += 1;
            }
            index.insert(node, (start, entries.len() as u32 - start));
        }
        RepMap { index, entries }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Remove and return the entry slice bounds for `node`, if present.
    fn take(&mut self, node: NodeId) -> Option<(u32, u32)> {
        self.index.remove(&node)
    }
}

/// Algorithm 10 (`PERSONALIZED_SEARCH`) with the iterative EXPAND loop of
/// Algorithm 11.
///
/// Two deliberate divergences from the pseudo-code as printed, both noted in
/// DESIGN.md:
/// * expansion contributions are weighted by the marked node's own
///   propagation to the query user (`Γ(v)[u] · Γ(u)[x] · S_t[x]`); the
///   printed line 5 omits the first factor, which would make a far node
///   count as if adjacent;
/// * `W_r[t]` is maintained as the *total* outstanding representative weight
///   rather than `1 − S_i[u]` of the last probed node, which is what the
///   upper bound `W_r·maxEP + heap[t]` needs to be valid.
pub struct PersonalizedSearcher<'a> {
    space: &'a TopicSpace,
    prop: &'a PropagationIndex,
    reps: &'a TopicRepIndex,
    config: SearchConfig,
}

impl<'a> PersonalizedSearcher<'a> {
    /// Assemble a searcher over the materialized indexes.
    pub fn new(
        space: &'a TopicSpace,
        prop: &'a PropagationIndex,
        reps: &'a TopicRepIndex,
        config: SearchConfig,
    ) -> Self {
        assert!(config.k >= 1, "k must be positive");
        PersonalizedSearcher {
            space,
            prop,
            reps,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Run one query (Algorithm 10).
    ///
    /// # Panics
    /// Panics if `query.user` is outside the indexed graph (the propagation
    /// index has one table per node); callers exposing user-supplied ids
    /// should validate against the graph's node count first, or use
    /// [`PersonalizedSearcher::try_search`] for a typed error instead.
    pub fn search(&self, query: &KeywordQuery) -> SearchOutcome {
        match self.try_search(query, &CancelToken::none()) {
            Ok(outcome) => outcome,
            // A no-op token never cancels, so the only reachable error is
            // the out-of-range user this method documents as a panic.
            Err(e) => panic!("{e}"),
        }
    }

    /// Run one query under a [`CancelToken`], without panicking.
    ///
    /// The token is polled between EXPAND rounds and every
    /// [`CancelToken::check_every`] probed propagation tables, so a
    /// cancelled (or deadline-expired) query releases its thread after a
    /// bounded amount of further work instead of running to completion.
    ///
    /// # Errors
    /// [`SearchError::UserOutOfRange`] for a user outside the indexed
    /// graph; [`SearchError::Cancelled`] when the token fires mid-search.
    pub fn try_search(
        &self,
        query: &KeywordQuery,
        cancel: &CancelToken,
    ) -> Result<SearchOutcome, SearchError> {
        self.try_search_traced(query, cancel, &mut NoTracer)
    }

    /// [`PersonalizedSearcher::try_search`] with stage callbacks.
    ///
    /// The `tracer` hears each phase begin/end (gather, every EXPAND round
    /// with its probed-table count, ranking). This crate stays clock-free:
    /// timestamps, if any, are captured by the tracer's implementation on
    /// the caller's side (see the server layer's trace context). With
    /// [`NoTracer`] this is exactly `try_search`.
    ///
    /// # Errors
    /// Same as [`PersonalizedSearcher::try_search`].
    pub fn try_search_traced(
        &self,
        query: &KeywordQuery,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<SearchOutcome, SearchError> {
        let v = query.user;
        if v.index() >= self.prop.len() {
            return Err(SearchError::UserOutOfRange {
                user: v.0,
                nodes: self.prop.len(),
            });
        }
        let check_every = cancel.check_every();
        let mut until_check = check_every;
        let topic_ids = query.related_topics(self.space);
        let candidate_topics = topic_ids.len();
        tracer.phase_begin(SearchPhase::Gather);

        // Load the representative sets (lines 1–3). This copy is the
        // transient query footprint the paper's space figures measure.
        let mut topics: Vec<TopicState> = Vec::with_capacity(topic_ids.len());
        let mut triples: Vec<(NodeId, u32, f64)> = Vec::new();
        for (ti, &t) in topic_ids.iter().enumerate() {
            let set = self.reps.get(t);
            for (node, w) in set.iter() {
                triples.push((node, ti as u32, w));
            }
            topics.push(TopicState {
                topic: t,
                remaining_weight: set.total_weight(),
                score: 0.0,
                alive: true,
                pruned: false,
            });
        }
        let loaded_reps = triples.len();
        let mut rep_map = RepMap::build(triples);

        let mut probed_tables = 0usize;
        let mut visited: FxHashSet<NodeId> = FxHashSet::default();
        visited.insert(v);

        // Lines 4–13: absorb the directly indexed influence from Γ(v).
        let gamma_v = self.prop.gamma(v);
        probed_tables += 1;
        absorb_table(gamma_v, 1.0, &mut rep_map, &mut topics);
        table_checkpoint(cancel, &mut until_check, check_every, probed_tables, 0)?;

        // Expansion resolution: the propagation index itself drops paths
        // below θ, so a frontier node whose *chained* propagation to the
        // query user falls below θ carries signal finer than the index can
        // justify — following it only multiplies probe work. The cutoff also
        // keeps the frontier from growing exponentially ring by ring.
        let min_ep = self.prop.config().theta;

        // Lines 14–16: initial frontier and maxEP.
        let mut frontier: Vec<(NodeId, f64)> = gamma_v
            .marked()
            .iter()
            .map(|&u| (u, gamma_v.get(u).unwrap_or(0.0)))
            .filter(|&(_, ep)| ep >= min_ep)
            .collect();
        tracer.phase_end(SearchPhase::Gather, loaded_reps as u64);

        let mut expand_rounds = 0usize;
        loop {
            if cancel.is_cancelled() {
                return Err(SearchError::Cancelled {
                    probed_tables,
                    expand_rounds,
                });
            }
            let max_ep = frontier.iter().map(|&(_, ep)| ep).fold(0.0, f64::max);
            if self.config.prune {
                self.prune_hopeless(&mut topics, max_ep);
            }
            if !self.needs_expansion(&topics) || frontier.is_empty() {
                break;
            }
            if expand_rounds >= self.config.max_expand_rounds {
                break;
            }
            expand_rounds += 1;
            tracer.phase_begin(SearchPhase::ExpandRound);
            let tables_before_round = probed_tables;

            // One EXPAND round (Algorithm 11): process each marked node and
            // collect the next ring. (Algorithm 11 re-prunes after every
            // expanded node; we prune once per round — pruning frequency
            // affects only how much work is skipped, never the result.)
            let round_bound = max_ep;
            let mut next_frontier: Vec<(NodeId, f64)> = Vec::new();
            for &(u, ep_u) in &frontier {
                if ep_u <= 0.0 || !visited.insert(u) {
                    continue;
                }
                let gamma_u = self.prop.gamma(u);
                probed_tables += 1;
                absorb_table(gamma_u, ep_u, &mut rep_map, &mut topics);
                table_checkpoint(
                    cancel,
                    &mut until_check,
                    check_every,
                    probed_tables,
                    expand_rounds,
                )?;
                for &w in gamma_u.marked() {
                    if !visited.contains(&w) {
                        let ep_w = ep_u * gamma_u.get(w).unwrap_or(0.0);
                        if ep_w >= min_ep {
                            next_frontier.push((w, ep_w));
                        }
                    }
                }
            }
            if self.config.prune {
                // Aggregated Γ values may exceed 1 on multi-path graphs, so
                // the next ring's entry points can be *larger* than this
                // round's; the bound must cover both rings we know about.
                let next_max = next_frontier.iter().map(|&(_, ep)| ep).fold(0.0, f64::max);
                self.prune_hopeless(&mut topics, round_bound.max(next_max));
            }
            tracer.phase_end(
                SearchPhase::ExpandRound,
                (probed_tables - tables_before_round) as u64,
            );
            frontier = next_frontier;
        }

        // Final ranking over every candidate's accumulated score.
        tracer.phase_begin(SearchPhase::Rank);
        let mut ranked: Vec<TopicScore> = topics
            .iter()
            .map(|t| TopicScore {
                topic: t.topic,
                score: t.score,
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.topic.cmp(&b.topic)));
        ranked.truncate(self.config.k);
        tracer.phase_end(SearchPhase::Rank, candidate_topics as u64);

        Ok(SearchOutcome {
            top_k: ranked,
            candidate_topics,
            pruned_topics: topics.iter().filter(|t| t.pruned).count(),
            expand_rounds,
            probed_tables,
            loaded_reps,
        })
    }

    /// The current `min(T^k)`: the k-th largest score, or 0 when fewer than
    /// `k` candidates exist (then nothing can be pruned by score).
    fn topk_threshold(&self, topics: &[TopicState]) -> Option<f64> {
        if topics.len() <= self.config.k {
            return None;
        }
        let mut scores: Vec<f64> = topics.iter().map(|t| t.score).collect();
        let idx = self.config.k - 1;
        scores.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
        Some(scores[idx])
    }

    /// Lines 17–20 / Algorithm 11 lines 10–12: stop refining topics whose
    /// upper bound cannot reach the current top-k.
    fn prune_hopeless(&self, topics: &mut [TopicState], max_ep: f64) {
        let Some(threshold) = self.topk_threshold(topics) else {
            return;
        };
        for state in topics.iter_mut() {
            if !state.alive {
                continue;
            }
            let upper = state.remaining_weight * max_ep + state.score;
            if threshold >= upper && state.score < threshold {
                state.alive = false;
                state.pruned = true;
            }
        }
    }

    /// Algorithm 10 line 21: expansion continues only while some topic
    /// outside the current top-k is still alive (`T' \ T^k ≠ ∅`).
    fn needs_expansion(&self, topics: &[TopicState]) -> bool {
        let Some(threshold) = self.topk_threshold(topics) else {
            // Everything fits in the top-k: refining cannot change the set.
            return false;
        };
        topics.iter().any(|t| t.alive && t.score < threshold)
    }
}

/// One per-probed-table cancellation checkpoint: fires every `check_every`
/// tables and stops the search with the work done so far.
fn table_checkpoint(
    cancel: &CancelToken,
    until_check: &mut u32,
    check_every: u32,
    probed_tables: usize,
    expand_rounds: usize,
) -> Result<(), SearchError> {
    *until_check -= 1;
    if *until_check == 0 {
        *until_check = check_every;
        if cancel.checkpoint() {
            return Err(SearchError::Cancelled {
                probed_tables,
                expand_rounds,
            });
        }
    }
    Ok(())
}

/// Absorb the influence of every remaining representative present in
/// `gamma`, scaled by `scale` (1 for the query user's own table, the chained
/// propagation for expanded tables). Absorbed representatives are removed
/// from the map (Algorithm 10 line 13 / Algorithm 11 line 8: `S_i ← S_i \
/// vInner`), so each representative is counted through the first table that
/// covers it. Iterates the smaller of the two sides.
fn absorb_table(
    gamma: &pit_index::NodePropagation,
    scale: f64,
    rep_map: &mut RepMap,
    topics: &mut [TopicState],
) {
    fn credit(
        topics: &mut [TopicState],
        entries: &[(u32, f64)],
        slice: (u32, u32),
        scale: f64,
        p: f64,
    ) {
        let (start, len) = (slice.0 as usize, slice.1 as usize);
        for &(ti, w) in &entries[start..start + len] {
            let state = &mut topics[ti as usize];
            state.score += scale * p * w;
            state.remaining_weight = (state.remaining_weight - w).max(0.0);
            if state.remaining_weight <= f64::EPSILON {
                state.alive = false; // S_i exhausted
            }
        }
    }
    if gamma.len() <= rep_map.len() {
        for (x, p) in gamma.iter() {
            if let Some(slice) = rep_map.take(x) {
                credit(topics, &rep_map.entries, slice, scale, p);
            }
        }
    } else {
        let hits: Vec<(NodeId, f64)> = rep_map
            .index
            .keys()
            .filter_map(|&x| gamma.get(x).map(|p| (x, p)))
            .collect();
        for (x, p) in hits {
            let slice = rep_map.take(x).expect("key just seen");
            credit(topics, &rep_map.entries, slice, scale, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{self, user, FIGURE3_THETA};
    use pit_graph::TermId;
    use pit_index::PropIndexConfig;
    use pit_summarize::RepresentativeSet;
    use pit_topics::TopicSpaceBuilder;

    /// Recreate the Section 5.2 worked trace: Figure-3 graph, rep sets
    /// S1 = {1,3,5,12} (w=0.25 each), S2 = {7,9,10} (w=0.33), S3 = {2,4,6}
    /// (w=0.33), query from node 8, k = 1 → t2 wins, t1 and t3 pruned.
    fn fig3_setup() -> (
        pit_graph::CsrGraph,
        pit_topics::TopicSpace,
        PropagationIndex,
        TopicRepIndex,
    ) {
        let g = fixtures::figure3_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let rep_sets = fixtures::figure3_rep_sets();
        for _ in 0..3 {
            let t = b.add_topic(vec![TermId(0)]);
            // Topic nodes are irrelevant here (the rep sets are given), but
            // each topic needs at least one node; use node 1.
            b.assign(user(1), t);
        }
        let space = b.build();
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA));
        let weights = [0.25, 1.0 / 3.0, 1.0 / 3.0];
        let sets = rep_sets
            .iter()
            .enumerate()
            .map(|(i, nodes)| {
                RepresentativeSet::new(
                    TopicId::from_index(i),
                    nodes.iter().map(|&n| (n, weights[i])).collect(),
                )
            })
            .collect();
        let reps = TopicRepIndex::from_sets(sets);
        (g, space, prop, reps)
    }

    #[test]
    fn paper_section52_trace_top1_is_t2() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        assert_eq!(out.candidate_topics, 3);
        assert_eq!(out.top_k.len(), 1);
        assert_eq!(out.top_k[0].topic, TopicId(1), "t2 must win: {out:?}");
        // Both losers are prunable in this instance.
        assert_eq!(out.pruned_topics, 2, "{out:?}");
    }

    #[test]
    fn paper_trace_direct_influences() {
        // Check the round-0 heap values against hand computation on our
        // Figure-3 weights: t1 gets Γ(8)[1]·.25 + Γ(8)[5]·.25 + Γ(8)[12]·.25,
        // t2 gets Γ(8)[7]·⅓ + Γ(8)[9]·⅓, t3 gets Γ(8)[4]·⅓.
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 3,
                max_expand_rounds: 0,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        let score = |t: u32| {
            out.top_k
                .iter()
                .find(|s| s.topic == TopicId(t))
                .unwrap()
                .score
        };
        let g8 = prop.gamma(user(8));
        let t1 = 0.25
            * (g8.get(user(1)).unwrap() + g8.get(user(5)).unwrap() + g8.get(user(12)).unwrap());
        let t2 = (g8.get(user(7)).unwrap() + g8.get(user(9)).unwrap()) / 3.0;
        let t3 = g8.get(user(4)).unwrap() / 3.0;
        assert!((score(0) - t1).abs() < 1e-12);
        assert!((score(1) - t2).abs() < 1e-12);
        assert!((score(2) - t3).abs() < 1e-12);
        assert!(score(1) > score(0), "t2 > t1");
    }

    #[test]
    fn pruning_never_changes_the_result() {
        let (_g, space, prop, reps) = fig3_setup();
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        for k in 1..=3 {
            let pruned = PersonalizedSearcher::new(
                &space,
                &prop,
                &reps,
                SearchConfig {
                    k,
                    max_expand_rounds: 8,
                    prune: true,
                },
            )
            .search(&q);
            let full = PersonalizedSearcher::new(
                &space,
                &prop,
                &reps,
                SearchConfig {
                    k,
                    max_expand_rounds: 8,
                    prune: false,
                },
            )
            .search(&q);
            let p: Vec<TopicId> = pruned.top_k.iter().map(|s| s.topic).collect();
            let f: Vec<TopicId> = full.top_k.iter().map(|s| s.topic).collect();
            assert_eq!(p, f, "k={k}: pruning changed the top-k");
        }
    }

    #[test]
    fn expansion_reaches_influence_behind_marked_nodes() {
        // Topic 0's only representative is node 10, which is NOT in Γ(8)
        // (its path arrives below θ) but IS in Γ(11) of the marked node 11.
        // Topic 1 is a low-scoring competitor — without a competitor the
        // candidate set fits inside the top-k and Algorithm 10 terminates
        // without expanding at all (`T' \ T^k = ∅`). Without expansion topic
        // 0 scores 0; with expansion it gains node 10's chained influence.
        let g = fixtures::figure3_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let t = b.add_topic(vec![TermId(0)]);
        b.assign(user(10), t);
        let t2 = b.add_topic(vec![TermId(0)]);
        b.assign(user(12), t2);
        let space = b.build();
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA));
        let reps = TopicRepIndex::from_sets(vec![
            RepresentativeSet::new(TopicId(0), vec![(user(10), 1.0)]),
            RepresentativeSet::new(TopicId(1), vec![(user(12), 0.05)]),
        ]);
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);

        let without = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 0,
                prune: false,
            },
        )
        .search(&q);
        let score_of = |out: &SearchOutcome, t: u32| {
            out.top_k
                .iter()
                .find(|s| s.topic == TopicId(t))
                .map(|s| s.score)
        };
        assert_eq!(score_of(&without, 0).unwrap_or(0.0), 0.0);

        let with = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 2,
                prune: false,
            },
        )
        .search(&q);
        // Node 10 reaches 11 with 0.3; 11 reaches 8 with 0.1 → ≈ 0.03,
        // overtaking the competitor (0.05 · 0.3 = 0.015) for the top-1 slot.
        let expanded = score_of(&with, 0).expect("topic 0 in result");
        assert!(
            (expanded - 0.03).abs() < 1e-9,
            "expanded score = {expanded}"
        );
        assert!(with.expand_rounds >= 1);
        assert!(with.probed_tables > without.probed_tables);
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(10));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        assert_eq!(out.top_k.len(), 3);
        // Sorted by descending score.
        assert!(out.top_k.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn no_related_topics_gives_empty_result() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(3));
        // Term 99 doesn't exist in any topic's bag — craft a query with an
        // unused term id by extending the vocabulary range artificially.
        let q = KeywordQuery::new(user(8), vec![]);
        let out = searcher.search(&q);
        assert!(out.top_k.is_empty());
        assert_eq!(out.candidate_topics, 0);
    }

    #[test]
    fn loaded_reps_counts_materialized_entries() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        assert_eq!(out.loaded_reps, 4 + 3 + 3);
    }

    #[test]
    fn try_search_matches_search_with_inert_token() {
        // A never-firing token must leave the ranking AND every work
        // counter identical — trace numbers are only trustworthy if the
        // cancellable path does exactly the same work.
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(2));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let plain = searcher.search(&q);
        let tried = searcher.try_search(&q, &CancelToken::none()).unwrap();
        let ids = |o: &SearchOutcome| {
            o.top_k
                .iter()
                .map(|s| (s.topic, s.score))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&plain), ids(&tried));
        assert_eq!(plain.stats(), tried.stats());
    }

    #[test]
    fn stats_are_exact_for_a_single_marked_node_expansion() {
        // Hand-counted work on the Section 5.2 trace: Γ(8) holds exactly
        // one marked node (node 11, entry probability 0.10 ≥ θ — pinned by
        // pit-index's figure3 tests), so an unpruned exhaustive search from
        // node 8 probes Γ(8), expands node 11, probes Γ(11), and stops.
        let (_g, space, prop, reps) = fig3_setup();
        let gamma8 = prop.gamma(user(8));
        assert_eq!(gamma8.marked(), &[user(11)], "fixture contract");
        assert!(gamma8.get(user(11)).unwrap() >= FIGURE3_THETA);
        // The hand count requires the expansion to terminate after node 11:
        // every marked node of Γ(11) must be already-visited or arrive
        // below θ through the 0.10 hop.
        let gamma11 = prop.gamma(user(11));
        for &w in gamma11.marked() {
            let chained = gamma8.get(user(11)).unwrap() * gamma11.get(w).unwrap_or(0.0);
            assert!(
                w == user(8) || w == user(11) || chained < FIGURE3_THETA,
                "marked node {w} of Γ(11) would extend the frontier"
            );
        }

        // Pruning off and k = 1 < 3 candidates, so `T' \ T^k ≠ ∅` forces
        // the expansion to actually run (nothing is decided early).
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 8,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let stats = searcher.search(&q).stats();
        assert_eq!(stats.probed_tables, 2, "Γ(8) + Γ(11), nothing else");
        assert_eq!(stats.expand_rounds, 1, "one round expands node 11");
        assert_eq!(stats.candidate_topics, 3);
        assert_eq!(stats.pruned_topics, 0, "pruning was disabled");
        assert_eq!(stats.loaded_reps, 4 + 3 + 3);
    }

    /// A tracer that records callbacks; pit-search may not read clocks
    /// (pit-lint L4), so only order and details are checked here.
    #[derive(Default)]
    struct EchoTracer {
        events: Vec<(bool, SearchPhase, u64)>,
    }

    impl SearchTracer for EchoTracer {
        fn phase_begin(&mut self, phase: SearchPhase) {
            self.events.push((true, phase, 0));
        }
        fn phase_end(&mut self, phase: SearchPhase, detail: u64) {
            self.events.push((false, phase, detail));
        }
    }

    #[test]
    fn traced_search_reports_phases_matching_the_outcome() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 8,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let mut tracer = EchoTracer::default();
        let outcome = searcher
            .try_search_traced(&q, &CancelToken::none(), &mut tracer)
            .unwrap();

        let ends: Vec<(SearchPhase, u64)> = tracer
            .events
            .iter()
            .filter(|(begin, _, _)| !begin)
            .map(|&(_, p, d)| (p, d))
            .collect();
        // One gather (detail = loaded reps), one end per executed round
        // (details sum to the expanded tables), one rank.
        assert_eq!(ends[0], (SearchPhase::Gather, outcome.loaded_reps as u64));
        let round_tables: u64 = ends
            .iter()
            .filter(|(p, _)| *p == SearchPhase::ExpandRound)
            .map(|&(_, d)| d)
            .sum();
        assert_eq!(
            ends.iter()
                .filter(|(p, _)| *p == SearchPhase::ExpandRound)
                .count(),
            outcome.expand_rounds
        );
        assert_eq!(round_tables, outcome.probed_tables as u64 - 1);
        assert_eq!(
            ends.last().copied(),
            Some((SearchPhase::Rank, outcome.candidate_topics as u64))
        );

        // The traced path is the plain path: identical outcome.
        let plain = searcher.search(&q);
        assert_eq!(plain.stats(), outcome.stats());
    }

    #[test]
    fn out_of_range_user_is_a_typed_error() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(NodeId(9_999), vec![TermId(0)]);
        let err = searcher.try_search(&q, &CancelToken::none()).unwrap_err();
        assert_eq!(
            err,
            SearchError::UserOutOfRange {
                user: 9_999,
                nodes: prop.len()
            }
        );
    }

    #[test]
    fn cancelled_token_stops_the_search_mid_flight() {
        let (_g, space, prop, reps) = fig3_setup();
        // Pruning disabled so the search must expand and probe many tables.
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 8,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let full = searcher.search(&q);
        assert!(full.probed_tables > 1, "fixture must require expansion");

        // A pre-cancelled token stops at the very first checkpoint: only
        // the query user's own table gets probed.
        let token = CancelToken::with_flag(std::sync::Arc::new(
            std::sync::atomic::AtomicBool::new(true),
        ))
        .with_check_every(1);
        let err = searcher.try_search(&q, &token).unwrap_err();
        let SearchError::Cancelled {
            probed_tables,
            expand_rounds,
        } = err
        else {
            panic!("expected cancellation, got {err:?}");
        };
        assert_eq!(probed_tables, 1, "must stop before any expansion");
        assert_eq!(expand_rounds, 0, "cancelled before the first round");
        assert!(probed_tables < full.probed_tables);
    }

    #[test]
    fn expired_deadline_cancels_the_search() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let token = CancelToken::none()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1))
            .with_check_every(1);
        assert!(matches!(
            searcher.try_search(&q, &token),
            Err(SearchError::Cancelled { .. })
        ));
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let (_g, space, prop, reps) = fig3_setup();
        let _ = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 0,
                max_expand_rounds: 1,
                prune: true,
            },
        );
    }
}
