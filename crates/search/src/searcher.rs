//! Top-k personalized influential topic search (Algorithms 10 and 11).

use crate::cancel::{CancelToken, SearchError};
use crate::driver::{SearchDriver, SearchScratch};
use crate::repindex::TopicRepIndex;
use crate::trace::{NoTracer, SearchTracer};
use pit_graph::TopicId;
use pit_index::PropagationIndex;
use pit_topics::{KeywordQuery, TopicSpace};

/// Online search parameters.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Result size `k`.
    pub k: usize,
    /// Cap on EXPAND rounds (Algorithm 11 recursion depth). Each round walks
    /// one ring of marked nodes outward; the propagation threshold `θ` makes
    /// deep rings negligible, and the paper's trace never needs more than a
    /// couple.
    pub max_expand_rounds: usize,
    /// Enable the upper-bound pruning rule. Disabled only by the pruning
    /// safety tests — with pruning off, every topic is refined to exhaustion.
    pub prune: bool,
}

impl SearchConfig {
    /// Standard configuration for a given `k`.
    pub fn top(k: usize) -> Self {
        SearchConfig {
            k,
            max_expand_rounds: 4,
            prune: true,
        }
    }
}

/// One ranked result entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopicScore {
    /// The topic.
    pub topic: TopicId,
    /// Its aggregated influence `I*(t, v)` on the query user.
    pub score: f64,
}

/// The result of one PIT-Search, with the work counters the paper's
/// efficiency experiments report.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Top-k topics, sorted by descending score (ties by topic id).
    pub top_k: Vec<TopicScore>,
    /// `|T_q|` — number of query-related topics considered.
    pub candidate_topics: usize,
    /// Topics eliminated by the upper-bound rule before exhaustion.
    pub pruned_topics: usize,
    /// EXPAND rounds actually executed.
    pub expand_rounds: usize,
    /// Propagation tables `Γ(·)` probed (1 + expanded marked nodes).
    pub probed_tables: usize,
    /// Representative entries loaded at query start (the transient space the
    /// paper measures in Figures 13/14).
    pub loaded_reps: usize,
}

/// The work counters of a [`SearchOutcome`] alone — the copyable part the
/// serving stack records into traces and per-stage histograms without
/// holding on to the ranking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// `|T_q|` — number of query-related topics considered.
    pub candidate_topics: usize,
    /// Topics eliminated by the upper-bound rule before exhaustion.
    pub pruned_topics: usize,
    /// EXPAND rounds actually executed.
    pub expand_rounds: usize,
    /// Propagation tables `Γ(·)` probed (1 + expanded marked nodes).
    pub probed_tables: usize,
    /// Representative entries loaded at query start.
    pub loaded_reps: usize,
}

impl SearchOutcome {
    /// The outcome's work counters.
    pub fn stats(&self) -> SearchStats {
        SearchStats {
            candidate_topics: self.candidate_topics,
            pruned_topics: self.pruned_topics,
            expand_rounds: self.expand_rounds,
            probed_tables: self.probed_tables,
            loaded_reps: self.loaded_reps,
        }
    }
}

/// Algorithm 10 (`PERSONALIZED_SEARCH`) with the iterative EXPAND loop of
/// Algorithm 11, driving the shared [`SearchDriver`] state machine with
/// local propagation-table probes. The sharded router (`pit-router`) drives
/// the same state machine with remote probes, which is what makes sharded
/// rankings bit-identical to this searcher's.
///
/// Two deliberate divergences from the pseudo-code as printed, both noted in
/// DESIGN.md:
/// * expansion contributions are weighted by the marked node's own
///   propagation to the query user (`Γ(v)[u] · Γ(u)[x] · S_t[x]`); the
///   printed line 5 omits the first factor, which would make a far node
///   count as if adjacent;
/// * `W_r[t]` is maintained as the *total* outstanding representative weight
///   rather than `1 − S_i[u]` of the last probed node, which is what the
///   upper bound `W_r·maxEP + heap[t]` needs to be valid.
pub struct PersonalizedSearcher<'a> {
    space: &'a TopicSpace,
    prop: &'a PropagationIndex,
    reps: &'a TopicRepIndex,
    config: SearchConfig,
}

impl<'a> PersonalizedSearcher<'a> {
    /// Assemble a searcher over the materialized indexes.
    pub fn new(
        space: &'a TopicSpace,
        prop: &'a PropagationIndex,
        reps: &'a TopicRepIndex,
        config: SearchConfig,
    ) -> Self {
        assert!(config.k >= 1, "k must be positive");
        PersonalizedSearcher {
            space,
            prop,
            reps,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Run one query (Algorithm 10).
    ///
    /// # Panics
    /// Panics if `query.user` is outside the indexed graph (the propagation
    /// index has one table per node); callers exposing user-supplied ids
    /// should validate against the graph's node count first, or use
    /// [`PersonalizedSearcher::try_search`] for a typed error instead.
    pub fn search(&self, query: &KeywordQuery) -> SearchOutcome {
        match self.try_search(query, &CancelToken::none()) {
            Ok(outcome) => outcome,
            // A no-op token never cancels, so the only reachable error is
            // the out-of-range user this method documents as a panic.
            Err(e) => panic!("{e}"),
        }
    }

    /// Run one query under a [`CancelToken`], without panicking.
    ///
    /// The token is polled between EXPAND rounds and every
    /// [`CancelToken::check_every`] probed propagation tables, so a
    /// cancelled (or deadline-expired) query releases its thread after a
    /// bounded amount of further work instead of running to completion.
    ///
    /// # Errors
    /// [`SearchError::UserOutOfRange`] for a user outside the indexed
    /// graph; [`SearchError::Cancelled`] when the token fires mid-search.
    pub fn try_search(
        &self,
        query: &KeywordQuery,
        cancel: &CancelToken,
    ) -> Result<SearchOutcome, SearchError> {
        self.try_search_traced(query, cancel, &mut NoTracer)
    }

    /// [`PersonalizedSearcher::try_search`] with stage callbacks.
    ///
    /// The `tracer` hears each phase begin/end (gather, every EXPAND round
    /// with its probed-table count, ranking). This crate stays clock-free:
    /// timestamps, if any, are captured by the tracer's implementation on
    /// the caller's side (see the server layer's trace context). With
    /// [`NoTracer`] this is exactly `try_search`.
    ///
    /// # Errors
    /// Same as [`PersonalizedSearcher::try_search`].
    pub fn try_search_traced(
        &self,
        query: &KeywordQuery,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
    ) -> Result<SearchOutcome, SearchError> {
        let mut scratch = SearchScratch::new();
        self.try_search_traced_with(query, cancel, tracer, &mut scratch)
    }

    /// [`PersonalizedSearcher::try_search_traced`] with a caller-owned
    /// [`SearchScratch`]. A serving worker that keeps one scratch and
    /// passes it to every query makes the whole probe/feed loop
    /// allocation-free once the buffers are warm — the arena keeps its
    /// capacity across queries (pit-eval's counting allocator pins this).
    ///
    /// # Errors
    /// Same as [`PersonalizedSearcher::try_search`].
    pub fn try_search_traced_with(
        &self,
        query: &KeywordQuery,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutcome, SearchError> {
        let mut driver = SearchDriver::begin(
            self.space,
            self.reps,
            self.config,
            query,
            self.prop.len(),
            self.prop.config().theta,
            cancel,
            tracer,
            scratch,
        )?;
        while driver.round_begin(cancel, tracer)? {
            let mut i = 0;
            while let Some((u, ep_u)) = driver.round_probe(i) {
                driver.feed_gamma(cancel, tracer, self.prop.gamma(u), ep_u)?;
                i += 1;
            }
        }
        Ok(driver.finish(tracer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SearchPhase;
    use pit_graph::fixtures::{self, user, FIGURE3_THETA};
    use pit_graph::{NodeId, TermId};
    use pit_index::PropIndexConfig;
    use pit_summarize::RepresentativeSet;
    use pit_topics::TopicSpaceBuilder;

    /// Recreate the Section 5.2 worked trace: Figure-3 graph, rep sets
    /// S1 = {1,3,5,12} (w=0.25 each), S2 = {7,9,10} (w=0.33), S3 = {2,4,6}
    /// (w=0.33), query from node 8, k = 1 → t2 wins, t1 and t3 pruned.
    fn fig3_setup() -> (
        pit_graph::CsrGraph,
        pit_topics::TopicSpace,
        PropagationIndex,
        TopicRepIndex,
    ) {
        let g = fixtures::figure3_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let rep_sets = fixtures::figure3_rep_sets();
        for _ in 0..3 {
            let t = b.add_topic(vec![TermId(0)]);
            // Topic nodes are irrelevant here (the rep sets are given), but
            // each topic needs at least one node; use node 1.
            b.assign(user(1), t);
        }
        let space = b.build();
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA));
        let weights = [0.25, 1.0 / 3.0, 1.0 / 3.0];
        let sets = rep_sets
            .iter()
            .enumerate()
            .map(|(i, nodes)| {
                RepresentativeSet::new(
                    TopicId::from_index(i),
                    nodes.iter().map(|&n| (n, weights[i])).collect(),
                )
            })
            .collect();
        let reps = TopicRepIndex::from_sets(sets);
        (g, space, prop, reps)
    }

    #[test]
    fn paper_section52_trace_top1_is_t2() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        assert_eq!(out.candidate_topics, 3);
        assert_eq!(out.top_k.len(), 1);
        assert_eq!(out.top_k[0].topic, TopicId(1), "t2 must win: {out:?}");
        // Both losers are prunable in this instance.
        assert_eq!(out.pruned_topics, 2, "{out:?}");
    }

    #[test]
    fn paper_trace_direct_influences() {
        // Check the round-0 heap values against hand computation on our
        // Figure-3 weights: t1 gets Γ(8)[1]·.25 + Γ(8)[5]·.25 + Γ(8)[12]·.25,
        // t2 gets Γ(8)[7]·⅓ + Γ(8)[9]·⅓, t3 gets Γ(8)[4]·⅓.
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 3,
                max_expand_rounds: 0,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        let score = |t: u32| {
            out.top_k
                .iter()
                .find(|s| s.topic == TopicId(t))
                .unwrap()
                .score
        };
        let g8 = prop.gamma(user(8));
        let t1 = 0.25
            * (g8.get(user(1)).unwrap() + g8.get(user(5)).unwrap() + g8.get(user(12)).unwrap());
        let t2 = (g8.get(user(7)).unwrap() + g8.get(user(9)).unwrap()) / 3.0;
        let t3 = g8.get(user(4)).unwrap() / 3.0;
        assert!((score(0) - t1).abs() < 1e-12);
        assert!((score(1) - t2).abs() < 1e-12);
        assert!((score(2) - t3).abs() < 1e-12);
        assert!(score(1) > score(0), "t2 > t1");
    }

    #[test]
    fn pruning_never_changes_the_result() {
        let (_g, space, prop, reps) = fig3_setup();
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        for k in 1..=3 {
            let pruned = PersonalizedSearcher::new(
                &space,
                &prop,
                &reps,
                SearchConfig {
                    k,
                    max_expand_rounds: 8,
                    prune: true,
                },
            )
            .search(&q);
            let full = PersonalizedSearcher::new(
                &space,
                &prop,
                &reps,
                SearchConfig {
                    k,
                    max_expand_rounds: 8,
                    prune: false,
                },
            )
            .search(&q);
            let p: Vec<TopicId> = pruned.top_k.iter().map(|s| s.topic).collect();
            let f: Vec<TopicId> = full.top_k.iter().map(|s| s.topic).collect();
            assert_eq!(p, f, "k={k}: pruning changed the top-k");
        }
    }

    #[test]
    fn expansion_reaches_influence_behind_marked_nodes() {
        // Topic 0's only representative is node 10, which is NOT in Γ(8)
        // (its path arrives below θ) but IS in Γ(11) of the marked node 11.
        // Topic 1 is a low-scoring competitor — without a competitor the
        // candidate set fits inside the top-k and Algorithm 10 terminates
        // without expanding at all (`T' \ T^k = ∅`). Without expansion topic
        // 0 scores 0; with expansion it gains node 10's chained influence.
        let g = fixtures::figure3_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let t = b.add_topic(vec![TermId(0)]);
        b.assign(user(10), t);
        let t2 = b.add_topic(vec![TermId(0)]);
        b.assign(user(12), t2);
        let space = b.build();
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA));
        let reps = TopicRepIndex::from_sets(vec![
            RepresentativeSet::new(TopicId(0), vec![(user(10), 1.0)]),
            RepresentativeSet::new(TopicId(1), vec![(user(12), 0.05)]),
        ]);
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);

        let without = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 0,
                prune: false,
            },
        )
        .search(&q);
        let score_of = |out: &SearchOutcome, t: u32| {
            out.top_k
                .iter()
                .find(|s| s.topic == TopicId(t))
                .map(|s| s.score)
        };
        assert_eq!(score_of(&without, 0).unwrap_or(0.0), 0.0);

        let with = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 2,
                prune: false,
            },
        )
        .search(&q);
        // Node 10 reaches 11 with 0.3; 11 reaches 8 with 0.1 → ≈ 0.03,
        // overtaking the competitor (0.05 · 0.3 = 0.015) for the top-1 slot.
        let expanded = score_of(&with, 0).expect("topic 0 in result");
        assert!(
            (expanded - 0.03).abs() < 1e-9,
            "expanded score = {expanded}"
        );
        assert!(with.expand_rounds >= 1);
        assert!(with.probed_tables > without.probed_tables);
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(10));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        assert_eq!(out.top_k.len(), 3);
        // Sorted by descending score.
        assert!(out.top_k.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn no_related_topics_gives_empty_result() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(3));
        // Term 99 doesn't exist in any topic's bag — craft a query with an
        // unused term id by extending the vocabulary range artificially.
        let q = KeywordQuery::new(user(8), vec![]);
        let out = searcher.search(&q);
        assert!(out.top_k.is_empty());
        assert_eq!(out.candidate_topics, 0);
    }

    #[test]
    fn loaded_reps_counts_materialized_entries() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let out = searcher.search(&q);
        assert_eq!(out.loaded_reps, 4 + 3 + 3);
    }

    #[test]
    fn try_search_matches_search_with_inert_token() {
        // A never-firing token must leave the ranking AND every work
        // counter identical — trace numbers are only trustworthy if the
        // cancellable path does exactly the same work.
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(2));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let plain = searcher.search(&q);
        let tried = searcher.try_search(&q, &CancelToken::none()).unwrap();
        let ids = |o: &SearchOutcome| {
            o.top_k
                .iter()
                .map(|s| (s.topic, s.score))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&plain), ids(&tried));
        assert_eq!(plain.stats(), tried.stats());
    }

    #[test]
    fn stats_are_exact_for_a_single_marked_node_expansion() {
        // Hand-counted work on the Section 5.2 trace: Γ(8) holds exactly
        // one marked node (node 11, entry probability 0.10 ≥ θ — pinned by
        // pit-index's figure3 tests), so an unpruned exhaustive search from
        // node 8 probes Γ(8), expands node 11, probes Γ(11), and stops.
        let (_g, space, prop, reps) = fig3_setup();
        let gamma8 = prop.gamma(user(8));
        assert_eq!(gamma8.marked(), &[user(11)], "fixture contract");
        assert!(gamma8.get(user(11)).unwrap() >= FIGURE3_THETA);
        // The hand count requires the expansion to terminate after node 11:
        // every marked node of Γ(11) must be already-visited or arrive
        // below θ through the 0.10 hop.
        let gamma11 = prop.gamma(user(11));
        for &w in gamma11.marked() {
            let chained = gamma8.get(user(11)).unwrap() * gamma11.get(w).unwrap_or(0.0);
            assert!(
                w == user(8) || w == user(11) || chained < FIGURE3_THETA,
                "marked node {w} of Γ(11) would extend the frontier"
            );
        }

        // Pruning off and k = 1 < 3 candidates, so `T' \ T^k ≠ ∅` forces
        // the expansion to actually run (nothing is decided early).
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 8,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let stats = searcher.search(&q).stats();
        assert_eq!(stats.probed_tables, 2, "Γ(8) + Γ(11), nothing else");
        assert_eq!(stats.expand_rounds, 1, "one round expands node 11");
        assert_eq!(stats.candidate_topics, 3);
        assert_eq!(stats.pruned_topics, 0, "pruning was disabled");
        assert_eq!(stats.loaded_reps, 4 + 3 + 3);
    }

    /// A tracer that records callbacks; pit-search may not read clocks
    /// (pit-lint L4), so only order and details are checked here.
    #[derive(Default)]
    struct EchoTracer {
        events: Vec<(bool, SearchPhase, u64)>,
    }

    impl SearchTracer for EchoTracer {
        fn phase_begin(&mut self, phase: SearchPhase) {
            self.events.push((true, phase, 0));
        }
        fn phase_end(&mut self, phase: SearchPhase, detail: u64) {
            self.events.push((false, phase, detail));
        }
    }

    #[test]
    fn traced_search_reports_phases_matching_the_outcome() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 8,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let mut tracer = EchoTracer::default();
        let outcome = searcher
            .try_search_traced(&q, &CancelToken::none(), &mut tracer)
            .unwrap();

        let ends: Vec<(SearchPhase, u64)> = tracer
            .events
            .iter()
            .filter(|(begin, _, _)| !begin)
            .map(|&(_, p, d)| (p, d))
            .collect();
        // One gather (detail = loaded reps), one end per executed round
        // (details sum to the expanded tables), one rank.
        assert_eq!(ends[0], (SearchPhase::Gather, outcome.loaded_reps as u64));
        let round_tables: u64 = ends
            .iter()
            .filter(|(p, _)| *p == SearchPhase::ExpandRound)
            .map(|&(_, d)| d)
            .sum();
        assert_eq!(
            ends.iter()
                .filter(|(p, _)| *p == SearchPhase::ExpandRound)
                .count(),
            outcome.expand_rounds
        );
        assert_eq!(round_tables, outcome.probed_tables as u64 - 1);
        assert_eq!(
            ends.last().copied(),
            Some((SearchPhase::Rank, outcome.candidate_topics as u64))
        );

        // The traced path is the plain path: identical outcome.
        let plain = searcher.search(&q);
        assert_eq!(plain.stats(), outcome.stats());
    }

    #[test]
    fn out_of_range_user_is_a_typed_error() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(NodeId(9_999), vec![TermId(0)]);
        let err = searcher.try_search(&q, &CancelToken::none()).unwrap_err();
        assert_eq!(
            err,
            SearchError::UserOutOfRange {
                user: 9_999,
                nodes: prop.len()
            }
        );
    }

    #[test]
    fn cancelled_token_stops_the_search_mid_flight() {
        let (_g, space, prop, reps) = fig3_setup();
        // Pruning disabled so the search must expand and probe many tables.
        let searcher = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 1,
                max_expand_rounds: 8,
                prune: false,
            },
        );
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let full = searcher.search(&q);
        assert!(full.probed_tables > 1, "fixture must require expansion");

        // A pre-cancelled token stops at the very first checkpoint: only
        // the query user's own table gets probed.
        let token = CancelToken::with_flag(std::sync::Arc::new(
            std::sync::atomic::AtomicBool::new(true),
        ))
        .with_check_every(1);
        let err = searcher.try_search(&q, &token).unwrap_err();
        let SearchError::Cancelled {
            probed_tables,
            expand_rounds,
        } = err
        else {
            panic!("expected cancellation, got {err:?}");
        };
        assert_eq!(probed_tables, 1, "must stop before any expansion");
        assert_eq!(expand_rounds, 0, "cancelled before the first round");
        assert!(probed_tables < full.probed_tables);
    }

    #[test]
    fn expired_deadline_cancels_the_search() {
        let (_g, space, prop, reps) = fig3_setup();
        let searcher = PersonalizedSearcher::new(&space, &prop, &reps, SearchConfig::top(1));
        let q = KeywordQuery::new(user(8), vec![TermId(0)]);
        let token = CancelToken::none()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1))
            .with_check_every(1);
        assert!(matches!(
            searcher.try_search(&q, &token),
            Err(SearchError::Cancelled { .. })
        ));
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let (_g, space, prop, reps) = fig3_setup();
        let _ = PersonalizedSearcher::new(
            &space,
            &prop,
            &reps,
            SearchConfig {
                k: 0,
                max_expand_rounds: 1,
                prune: true,
            },
        );
    }
}
