//! Snapshot codec robustness for the topic-to-representative index: exact
//! roundtrip on valid input, `SnapshotError` — never a panic — on truncated
//! or corrupted input.

use pit_graph::{NodeId, TopicId};
use pit_search_core::{snapshot, TopicRepIndex};
use pit_summarize::RepresentativeSet;
use proptest::prelude::*;

/// Random representative sets: up to 8 topics, each with up to 6 weighted
/// nodes (duplicates allowed — `RepresentativeSet::new` merges them).
fn index_strategy() -> impl Strategy<Value = TopicRepIndex> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..50, 0.0f64..2.0), 0..6),
        1..8,
    )
    .prop_map(|topics| {
        TopicRepIndex::from_sets(
            topics
                .into_iter()
                .enumerate()
                .map(|(t, pairs)| {
                    RepresentativeSet::new(
                        TopicId::from_index(t),
                        pairs.into_iter().map(|(n, w)| (NodeId(n), w)).collect(),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode ∘ decode ∘ encode is the identity on bytes.
    #[test]
    fn roundtrip_is_byte_exact(idx in index_strategy()) {
        let bytes = snapshot::encode(&idx);
        let restored = snapshot::decode(&bytes).expect("valid snapshot decodes");
        prop_assert_eq!(snapshot::encode(&restored).as_ref(), bytes.as_ref());
    }

    /// Every strict prefix of a snapshot is rejected with an error.
    #[test]
    fn truncation_always_errors(idx in index_strategy(), cut in 0usize..10_000) {
        let bytes = snapshot::encode(&idx);
        let cut = cut % bytes.len();
        prop_assert!(snapshot::decode(&bytes[..cut]).is_err());
    }

    /// Single-byte corruption anywhere never panics.
    #[test]
    fn corruption_never_panics(
        idx in index_strategy(),
        pos in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let bytes = snapshot::encode(&idx);
        let mut corrupt = bytes.to_vec();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= xor;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            snapshot::decode(&corrupt).map(|_| ())
        }));
        prop_assert!(outcome.is_ok(), "decode panicked on byte {} ^ {}", pos, xor);
    }
}
