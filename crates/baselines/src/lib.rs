//! # pit-baselines
//!
//! The three comparison systems of the paper's evaluation (Section 6.1),
//! implemented from scratch, plus an exhaustive simple-path oracle for tiny
//! graphs:
//!
//! * [`BaseMatrix`] — iterated sparse matrix-vector influence propagation
//!   (6 iterations in the paper); the *ground truth* on the small dataset.
//! * [`BaseDijkstra`] — max-probability paths from every topic node to the
//!   query user via a single reverse Dijkstra, widened with first-hop
//!   deviations (the paper's "replace a sub-path with an alternative path"
//!   heuristic).
//! * [`BasePropagation`] — exact-by-index: sums the personalized propagation
//!   index entries of *all* topic nodes (no summarization), which is why it
//!   must load every topic node per query — the cost the paper contrasts
//!   against RCL-A/LRW-A.
//! * [`exact`] — brute-force enumeration of all simple paths; practical only
//!   on fixture-sized graphs, used to validate everything else.
//!
//! All engines expose [`TopicInfluence`] and share the [`rank_top_k`] search
//! wrapper, so the evaluation harness can swap them freely.

#![forbid(unsafe_code)]

pub mod dijkstra;
pub mod exact;
pub mod matrix;
pub mod propagation;

pub use dijkstra::BaseDijkstra;
pub use matrix::BaseMatrix;
pub use propagation::BasePropagation;

use pit_graph::{NodeId, TopicId};
use pit_topics::{KeywordQuery, TopicSpace};

/// A (topic, score) result entry shared by all baseline engines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedTopic {
    /// The topic.
    pub topic: TopicId,
    /// Aggregated influence of the topic on the query user.
    pub score: f64,
}

/// Anything that can score a topic's influence on a user.
pub trait TopicInfluence {
    /// `I(t, v)` under this engine's model.
    fn topic_influence(&self, topic: TopicId, user: NodeId) -> f64;

    /// Engine name for reports.
    fn name(&self) -> &'static str;
}

/// Shared top-k search driver: score every q-related topic with `engine`,
/// rank descending (ties by topic id), return the first `k`.
pub fn rank_top_k<E: TopicInfluence + ?Sized>(
    engine: &E,
    space: &TopicSpace,
    query: &KeywordQuery,
    k: usize,
) -> Vec<RankedTopic> {
    let mut scored: Vec<RankedTopic> = query
        .related_topics(space)
        .into_iter()
        .map(|t| RankedTopic {
            topic: t,
            score: engine.topic_influence(t, query.user),
        })
        .collect();
    scored.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.topic.cmp(&b.topic)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::TermId;
    use pit_topics::TopicSpaceBuilder;

    struct Fixed;
    impl TopicInfluence for Fixed {
        fn topic_influence(&self, topic: TopicId, _user: NodeId) -> f64 {
            // topic 1 strongest, then 0, then 2.
            match topic.0 {
                0 => 0.5,
                1 => 0.9,
                _ => 0.1,
            }
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn rank_top_k_orders_and_truncates() {
        let mut b = TopicSpaceBuilder::new(2, 1);
        for _ in 0..3 {
            let t = b.add_topic(vec![TermId(0)]);
            b.assign(NodeId(0), t);
        }
        let space = b.build();
        let q = KeywordQuery::new(NodeId(1), vec![TermId(0)]);
        let top = rank_top_k(&Fixed, &space, &q, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].topic, TopicId(1));
        assert_eq!(top[1].topic, TopicId(0));
    }
}
