//! Exhaustive simple-path influence oracle.
//!
//! Sums the probabilities of **all simple paths** from every topic node to
//! the target — the literal `I(t,v)` of Definition 1 under a simple-path
//! semantics. Exponential; usable only on fixture-scale graphs, where it
//! validates the other engines (e.g. the Example-1 value 0.137).

use crate::TopicInfluence;
use pit_graph::{CsrGraph, NodeId, TopicId};
use pit_topics::TopicSpace;

/// Brute-force oracle over a graph + topic space.
pub struct ExactOracle<'a> {
    graph: &'a CsrGraph,
    space: &'a TopicSpace,
}

impl<'a> ExactOracle<'a> {
    /// Create the oracle. Intended for graphs of at most a few dozen nodes.
    pub fn new(graph: &'a CsrGraph, space: &'a TopicSpace) -> Self {
        ExactOracle { graph, space }
    }

    /// Sum of simple-path probabilities from `src` to `dst` (0 when equal).
    pub fn path_prob_sum(&self, src: NodeId, dst: NodeId) -> f64 {
        sum_simple_path_probs(self.graph, src, dst)
    }
}

impl TopicInfluence for ExactOracle<'_> {
    fn topic_influence(&self, topic: TopicId, user: NodeId) -> f64 {
        let vt = self.space.topic_nodes(topic);
        if vt.is_empty() {
            return 0.0;
        }
        let total: f64 = vt
            .iter()
            .map(|&u| sum_simple_path_probs(self.graph, u, user))
            .sum();
        total / vt.len() as f64
    }

    fn name(&self) -> &'static str {
        "Exact"
    }
}

/// DFS over all simple paths, accumulating products of edge probabilities.
pub fn sum_simple_path_probs(g: &CsrGraph, src: NodeId, dst: NodeId) -> f64 {
    if src == dst {
        return 0.0;
    }
    fn dfs(g: &CsrGraph, cur: NodeId, dst: NodeId, prob: f64, on_path: &mut [bool], acc: &mut f64) {
        if cur == dst {
            *acc += prob;
            return;
        }
        on_path[cur.index()] = true;
        for (nxt, p) in g.out_edges(cur).iter() {
            if !on_path[nxt.index()] {
                dfs(g, nxt, dst, prob * p, on_path, acc);
            }
        }
        on_path[cur.index()] = false;
    }
    let mut acc = 0.0;
    let mut on_path = vec![false; g.node_count()];
    dfs(g, src, dst, 1.0, &mut on_path, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::{fixtures, GraphBuilder, TermId};
    use pit_topics::TopicSpaceBuilder;

    #[test]
    fn example1_value() {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        let space = b.build();
        let oracle = ExactOracle::new(&g, &space);
        let t1 = oracle.topic_influence(TopicId(0), fixtures::user(3));
        assert!((t1 - 0.137).abs() < 1e-3, "t1 = {t1}");
    }

    #[test]
    fn diamond_counts_both_paths() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        let g = b.build().unwrap();
        assert!((sum_simple_path_probs(&g, NodeId(0), NodeId(3)) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn cycles_do_not_diverge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        let g = b.build().unwrap();
        // Only the simple path 0→1→2 counts.
        assert!((sum_simple_path_probs(&g, NodeId(0), NodeId(2)) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn self_influence_is_zero() {
        let g = fixtures::figure1_graph();
        assert_eq!(
            sum_simple_path_probs(&g, fixtures::user(3), fixtures::user(3)),
            0.0
        );
    }
}
