//! **BaseMatrix** — iterated sparse matrix-vector influence propagation.
//!
//! The paper's ground-truth method (adapted from Liu et al., CIKM 2010): the
//! topic's local weight vector (`1/|V_t|` on each topic node) is multiplied
//! through the transition matrix for a fixed number of iterations (6 in the
//! paper), and the per-iteration arrivals at the query user are aggregated.
//! Equivalently, the score is `Σ_{i=1..I} (x₀ Pⁱ)(v)` — every walk of length
//! ≤ I contributes its probability product.
//!
//! Memory: one dense `f64` vector pair per evaluation (the paper notes the
//! dense-ish propagation is what made BaseMatrix need 120 GB at 3 M nodes —
//! here the vectors are `O(|V|)` per topic and the cost shows up as time).

use crate::TopicInfluence;
use pit_graph::{CsrGraph, NodeId, TopicId};
use pit_topics::TopicSpace;

/// BaseMatrix engine.
pub struct BaseMatrix<'a> {
    graph: &'a CsrGraph,
    space: &'a TopicSpace,
    iterations: usize,
}

impl<'a> BaseMatrix<'a> {
    /// Create the engine with the paper's default of 6 iterations.
    pub fn new(graph: &'a CsrGraph, space: &'a TopicSpace) -> Self {
        Self::with_iterations(graph, space, 6)
    }

    /// Create the engine with an explicit iteration horizon.
    pub fn with_iterations(graph: &'a CsrGraph, space: &'a TopicSpace, iterations: usize) -> Self {
        assert!(iterations >= 1, "need at least one propagation iteration");
        BaseMatrix {
            graph,
            space,
            iterations,
        }
    }

    /// The full influence vector of `topic` over every node: entry `v` is
    /// the aggregated influence `I(t, v)`. One dense propagation pass.
    pub fn influence_vector(&self, topic: TopicId) -> Vec<f64> {
        let vt = self.space.topic_nodes(topic);
        if vt.is_empty() {
            return vec![0.0; self.graph.node_count()];
        }
        let mut x = vec![0.0f64; self.graph.node_count()];
        let w0 = 1.0 / vt.len() as f64;
        for &u in vt {
            x[u.index()] = w0;
        }
        self.propagate_vector(x)
    }

    /// Propagate an arbitrary initial weight vector through the transition
    /// matrix for the configured number of iterations, returning the
    /// per-node aggregated arrivals `Σ_{i=1..I} (x₀ Pⁱ)(v)`.
    ///
    /// This is also how the summarization error of Definition 1 is measured:
    /// seed the vector with the representative weights instead of the uniform
    /// topic-node weights and compare the two outputs (see `pit-eval`).
    ///
    /// # Panics
    /// Panics if `x0.len()` differs from the node count.
    pub fn propagate_vector(&self, mut x: Vec<f64>) -> Vec<f64> {
        let n = self.graph.node_count();
        assert_eq!(x.len(), n, "initial vector must cover every node");
        let mut acc = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        for _ in 0..self.iterations {
            y.iter_mut().for_each(|e| *e = 0.0);
            for u in self.graph.nodes() {
                let xu = x[u.index()];
                if xu == 0.0 {
                    continue;
                }
                for (v, p) in self.graph.out_edges(u).iter() {
                    y[v.index()] += xu * p;
                }
            }
            for (a, &b) in acc.iter_mut().zip(y.iter()) {
                *a += b;
            }
            std::mem::swap(&mut x, &mut y);
        }
        acc
    }

    /// Transient working-set estimate for one evaluation, in bytes
    /// (three dense vectors) — the space metric of Figures 13/14.
    pub fn working_set_bytes(&self) -> usize {
        3 * self.graph.node_count() * std::mem::size_of::<f64>()
    }
}

impl TopicInfluence for BaseMatrix<'_> {
    fn topic_influence(&self, topic: TopicId, user: NodeId) -> f64 {
        self.influence_vector(topic)[user.index()]
    }

    fn name(&self) -> &'static str {
        "BaseMatrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use pit_graph::{fixtures, GraphBuilder, TermId};
    use pit_topics::TopicSpaceBuilder;

    fn fig1() -> (pit_graph::CsrGraph, pit_topics::TopicSpace) {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        (g, b.build())
    }

    #[test]
    fn example1_matches_paper() {
        // Figure 1 is acyclic, so 6-iteration matrix propagation equals the
        // exact simple-path sum: t1 → user 3 is 0.137, and the ordering is
        // t2 > t1 > t3 as in Example 1.
        let (g, space) = fig1();
        let m = BaseMatrix::new(&g, &space);
        let u3 = fixtures::user(3);
        let t1 = m.topic_influence(TopicId(0), u3);
        let t2 = m.topic_influence(TopicId(1), u3);
        let t3 = m.topic_influence(TopicId(2), u3);
        assert!((t1 - 0.137).abs() < 1e-3, "t1 = {t1}");
        assert!(t2 > t1 && t1 > t3, "ordering violated: {t2} {t1} {t3}");
    }

    #[test]
    fn agrees_with_exact_oracle_on_dag() {
        let (g, space) = fig1();
        // Figure 1's longest simple path has 7 hops (15→9→8→13→12→10→6→3),
        // so equality with the path oracle needs a horizon ≥ 7; the default
        // 6 truncates that one path by 0.000192.
        let m = BaseMatrix::with_iterations(&g, &space, 8);
        let oracle = ExactOracle::new(&g, &space);
        for t in space.topics() {
            for v in g.nodes() {
                let a = m.topic_influence(t, v);
                let b = oracle.topic_influence(t, v);
                assert!(
                    (a - b).abs() < 1e-9,
                    "topic {t} user {v}: matrix {a} vs exact {b}"
                );
            }
        }
    }

    #[test]
    fn iterations_bound_path_length() {
        // Path 0→1→2→3 with prob 1.0 edges; topic at node 0.
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let mut tb = TopicSpaceBuilder::new(4, 1);
        let t = tb.add_topic(vec![TermId(0)]);
        tb.assign(NodeId(0), t);
        let space = tb.build();
        // With 2 iterations node 3 (3 hops away) is unreached.
        let short = BaseMatrix::with_iterations(&g, &space, 2);
        assert_eq!(short.topic_influence(t, NodeId(3)), 0.0);
        assert_eq!(short.topic_influence(t, NodeId(2)), 1.0);
        let long = BaseMatrix::with_iterations(&g, &space, 3);
        assert_eq!(long.topic_influence(t, NodeId(3)), 1.0);
    }

    #[test]
    fn cyclic_graphs_count_revisits() {
        // 0→1 (1.0), 1→0 (1.0): from topic {0}, node 1 is reached at
        // iterations 1, 3, 5 → influence 3.0 after 6 iterations. This is the
        // walk semantics of matrix propagation (vs. simple-path semantics).
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 1.0).unwrap();
        let g = b.build().unwrap();
        let mut tb = TopicSpaceBuilder::new(2, 1);
        let t = tb.add_topic(vec![TermId(0)]);
        tb.assign(NodeId(0), t);
        let space = tb.build();
        let m = BaseMatrix::new(&g, &space);
        assert!((m.topic_influence(t, NodeId(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_topic_zero_influence() {
        let g = fixtures::figure1_graph();
        let mut tb = TopicSpaceBuilder::new(g.node_count(), 1);
        let t = tb.add_topic(vec![TermId(0)]);
        let space = tb.build();
        let m = BaseMatrix::new(&g, &space);
        assert_eq!(m.topic_influence(t, fixtures::user(3)), 0.0);
    }
}
