//! **BasePropagation** — exact influence via the personalized propagation
//! index, without summarization.
//!
//! "The basic idea of BasePropagation is to calculate the propagation
//! influence of each topic node for a given user using only the personalized
//! influence propagation index" (Section 6.1). Per topic, the engine sums
//! the indexed propagation values of **all** topic nodes — no representative
//! selection — which makes it nearly as accurate as BaseMatrix (Figure 10)
//! but forces it to touch `|V_t|` entries per topic per query, the cost that
//! RCL-A/LRW-A's summaries avoid.

use crate::TopicInfluence;
use pit_graph::{NodeId, TopicId};
use pit_index::PropagationIndex;
use pit_topics::TopicSpace;

/// BasePropagation engine.
pub struct BasePropagation<'a> {
    space: &'a TopicSpace,
    prop: &'a PropagationIndex,
}

impl<'a> BasePropagation<'a> {
    /// Create the engine over a materialized propagation index.
    pub fn new(space: &'a TopicSpace, prop: &'a PropagationIndex) -> Self {
        BasePropagation { space, prop }
    }

    /// Number of topic-node entries this query would have to load for the
    /// given topics — the space metric the paper attributes to
    /// BasePropagation ("needs to retrieve all topic nodes into the memory
    /// at the beginning of each query evaluation").
    pub fn loaded_topic_nodes(&self, topics: &[TopicId]) -> usize {
        topics
            .iter()
            .map(|&t| self.space.topic_nodes(t).len())
            .sum()
    }
}

impl TopicInfluence for BasePropagation<'_> {
    fn topic_influence(&self, topic: TopicId, user: NodeId) -> f64 {
        let vt = self.space.topic_nodes(topic);
        if vt.is_empty() {
            return 0.0;
        }
        let gamma = self.prop.gamma(user);
        let sum: f64 = vt.iter().filter_map(|&u| gamma.get(u)).sum();
        sum / vt.len() as f64
    }

    fn name(&self) -> &'static str {
        "BasePropagation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use pit_graph::{fixtures, TermId};
    use pit_index::PropIndexConfig;
    use pit_topics::TopicSpaceBuilder;

    fn fig1() -> (pit_graph::CsrGraph, pit_topics::TopicSpace) {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        (g, b.build())
    }

    #[test]
    fn tracks_exact_within_theta_truncation() {
        let (g, space) = fig1();
        // A small theta keeps nearly all influence paths.
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.0005));
        let bp = BasePropagation::new(&space, &prop);
        let oracle = ExactOracle::new(&g, &space);
        let u3 = fixtures::user(3);
        for t in space.topics() {
            let approx = bp.topic_influence(t, u3);
            let exact = oracle.topic_influence(t, u3);
            assert!(
                approx <= exact + 1e-9,
                "topic {t}: index influence {approx} exceeds exact {exact}"
            );
            assert!(
                exact - approx < 0.01,
                "topic {t}: truncation error too large ({exact} vs {approx})"
            );
        }
    }

    #[test]
    fn preserves_example1_ordering() {
        let (g, space) = fig1();
        let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.005));
        let bp = BasePropagation::new(&space, &prop);
        let u3 = fixtures::user(3);
        let t1 = bp.topic_influence(TopicId(0), u3);
        let t2 = bp.topic_influence(TopicId(1), u3);
        let t3 = bp.topic_influence(TopicId(2), u3);
        assert!(t2 > t1 && t1 > t3, "ordering violated: {t2} {t1} {t3}");
    }

    #[test]
    fn higher_theta_never_increases_score() {
        let (g, space) = fig1();
        let loose = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.001));
        let tight = PropagationIndex::build(&g, PropIndexConfig::with_theta(0.2));
        let u3 = fixtures::user(3);
        for t in space.topics() {
            let a = BasePropagation::new(&space, &loose).topic_influence(t, u3);
            let b = BasePropagation::new(&space, &tight).topic_influence(t, u3);
            assert!(b <= a + 1e-12, "topic {t}: tight {b} > loose {a}");
        }
    }

    #[test]
    fn loaded_topic_nodes_counts_vt() {
        let (_g, space) = fig1();
        let g = fixtures::figure1_graph();
        let prop = PropagationIndex::build(&g, PropIndexConfig::default());
        let bp = BasePropagation::new(&space, &prop);
        assert_eq!(
            bp.loaded_topic_nodes(&[TopicId(0), TopicId(1), TopicId(2)]),
            5 + 3 + 4
        );
    }
}
