//! Property-based tests for the summarization crate.

use pit_graph::{GraphBuilder, NodeId, TermId, TopicId};
use pit_summarize::rcl::grouping;
use pit_summarize::{
    LrwConfig, LrwSummarizer, RclConfig, RclSummarizer, RepresentativeSet, SummarizeContext,
    Summarizer,
};
use pit_topics::TopicSpaceBuilder;
use pit_walk::{WalkConfig, WalkIndex};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    edges: Vec<(u32, u32)>,
    topic_nodes: Vec<u32>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (5usize..=20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_filter("no self-loops", |(a, b)| a != b);
        let edges = proptest::collection::vec(edge, n..4 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b)| seen.insert((a, b)));
            es
        });
        let topic = proptest::collection::vec(0..n as u32, 1..=6).prop_map(|mut t| {
            t.sort_unstable();
            t.dedup();
            t
        });
        (edges, topic).prop_map(move |(edges, topic_nodes)| Instance {
            n,
            edges,
            topic_nodes,
        })
    })
}

struct Built {
    graph: pit_graph::CsrGraph,
    space: pit_topics::TopicSpace,
    walks: WalkIndex,
}

fn build(inst: &Instance) -> Built {
    let mut b = GraphBuilder::new(inst.n);
    for &(u, v) in &inst.edges {
        b.add_edge(NodeId(u), NodeId(v), 0.4).unwrap();
    }
    let graph = b.build().unwrap();
    let mut tb = TopicSpaceBuilder::new(inst.n, 1);
    let t = tb.add_topic(vec![TermId(0)]);
    for &m in &inst.topic_nodes {
        tb.assign(NodeId(m), t);
    }
    let space = tb.build();
    let walks = WalkIndex::build(&graph, WalkConfig::new(3, 6).with_seed(17));
    Built {
        graph,
        space,
        walks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both summarizers always produce well-formed sets: non-negative
    /// finite weights summing to ≤ 1, nodes within the graph.
    #[test]
    fn summaries_well_formed(inst in instance()) {
        let built = build(&inst);
        let ctx = SummarizeContext {
            graph: &built.graph,
            space: &built.space,
            walks: &built.walks,
        };
        let topic = TopicId(0);
        for set in [
            LrwSummarizer::new(LrwConfig::default()).summarize(&ctx, topic),
            RclSummarizer::new(RclConfig {
                sample_rate: 0.5,
                ..RclConfig::default()
            })
            .summarize(&ctx, topic),
        ] {
            prop_assert!(set.total_weight() <= 1.0 + 1e-9, "{}", set.total_weight());
            for (node, w) in set.iter() {
                prop_assert!(node.index() < inst.n);
                prop_assert!(w.is_finite() && w >= 0.0);
            }
            // Sorted by node id (the search relies on it).
            let nodes: Vec<NodeId> = set.iter().map(|(n, _)| n).collect();
            prop_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// RCL-A clustering always partitions the topic nodes.
    #[test]
    fn rcl_clusters_partition(inst in instance()) {
        let built = build(&inst);
        let ctx = SummarizeContext {
            graph: &built.graph,
            space: &built.space,
            walks: &built.walks,
        };
        let rcl = RclSummarizer::new(RclConfig {
            c_size: 3,
            sample_rate: 1.0,
            ..RclConfig::default()
        });
        let groups = rcl.cluster_topic_nodes(&ctx, TopicId(0));
        let mut all: Vec<NodeId> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expect: Vec<NodeId> = inst.topic_nodes.iter().map(|&m| NodeId(m)).collect();
        expect.sort_unstable();
        prop_assert_eq!(all, expect);
        prop_assert!(groups.iter().all(|g| !g.is_empty()));
    }

    /// Grouping probabilities are a valid sub-distribution: GP+ ≥ 0,
    /// GP− ≥ 0, GP+ + GP− ≤ 1, symmetric in the pair.
    #[test]
    fn grouping_probs_are_probabilities(
        ru in proptest::collection::btree_set(0u32..40, 0..20),
        rv in proptest::collection::btree_set(0u32..40, 0..20),
        extra in 0usize..10,
    ) {
        let ru: Vec<NodeId> = ru.into_iter().map(NodeId).collect();
        let rv: Vec<NodeId> = rv.into_iter().map(NodeId).collect();
        // In real usage both reach sets are pre-intersected with the probe
        // set V', so |ru ∪ rv| ≤ |V'| by construction; mirror that here.
        let union = {
            let mut u: Vec<NodeId> = ru.iter().chain(rv.iter()).copied().collect();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        let probe_size = union + extra + 1;
        let (gp, gm) = grouping::grouping_probs(&ru, &rv, probe_size);
        let (gp2, gm2) = grouping::grouping_probs(&rv, &ru, probe_size);
        prop_assert!((gp - gp2).abs() < 1e-12 && (gm - gm2).abs() < 1e-12, "asymmetric");
        prop_assert!(gp >= 0.0 && gm >= 0.0);
        prop_assert!(gp + gm <= 1.0 + 1e-12);
        // Identical sets never split.
        let (gps, gms) = grouping::grouping_probs(&ru, &ru, probe_size);
        prop_assert!(gms == 0.0 && gps >= 0.0);
    }

    /// truncate_to_top keeps exactly the heaviest representatives and never
    /// increases total weight.
    #[test]
    fn truncation_is_heaviest_prefix(
        pairs in proptest::collection::vec((0u32..100, 0.0f64..1.0), 1..30),
        k in 1usize..10,
    ) {
        let set = RepresentativeSet::new(TopicId(0), pairs.iter().map(|&(n, w)| (NodeId(n), w)).collect());
        let cut = set.truncate_to_top(k);
        prop_assert!(cut.len() <= k.min(set.len()));
        prop_assert!(cut.total_weight() <= set.total_weight() + 1e-12);
        // Every kept weight ≥ every dropped weight.
        if let Some(min_kept) = cut.iter().map(|(_, w)| w).fold(None::<f64>, |acc, w| {
            Some(acc.map_or(w, |a| a.min(w)))
        }) {
            for (node, w) in set.iter() {
                if !cut.contains(node) {
                    prop_assert!(w <= min_kept + 1e-12, "dropped {w} > kept {min_kept}");
                }
            }
        }
    }
}
