//! Central-node selection for a topic-node group (Algorithm 4).
//!
//! Candidates are the nodes most frequently "voted" for by the group: a node
//! `x` receives one vote per group member it can reach within `L` hops
//! (looked up in the walk reachability index `I_L`). The best candidate is
//! then chosen by closeness centrality (Definition 3), with distances
//! computed by a truncated BFS — the paper bounds intra-group distance by
//! `2L`, so the BFS stops there and unreachable members are charged `2L + 1`.

use pit_graph::{CsrGraph, NodeId};
use pit_walk::WalkIndex;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// Candidate-set cap for the centrality evaluation. Vote ties can put every
/// reach-set node in the candidate set (all votes = 1 for singleton groups);
/// the paper's own optimization list (Section 3.2) reduces the candidate set
/// before the centrality computation, which is the expensive step.
const MAX_CANDIDATES: usize = 8;

/// Node-visit budget of one truncated BFS. On heavy-tailed graphs a bounded-
/// depth BFS through a hub can still touch a large fraction of the graph;
/// members not found within the budget are charged the unreachable penalty,
/// exactly as if they were beyond the depth bound.
const MAX_BFS_VISITED: usize = 4_096;

/// Select the central node for `group` (Algorithm 4). Falls back to the
/// first group member when no node reaches any member in the samples.
///
/// # Panics
/// Panics if `group` is empty.
pub fn select_central(g: &CsrGraph, walks: &WalkIndex, group: &[NodeId]) -> NodeId {
    assert!(
        !group.is_empty(),
        "cannot select a centroid for an empty group"
    );
    let l = walks.l();

    // Lines 1–5: vote counting over the reach sets of the group members.
    let mut votes: FxHashMap<NodeId, u32> = FxHashMap::default();
    for &member in group {
        for &x in walks.reach_set(member) {
            *votes.entry(x).or_insert(0) += 1;
        }
    }
    if votes.is_empty() {
        return group[0];
    }

    // Lines 6–7: candidates are the nodes with the maximum vote count,
    // capped (ties broken toward smaller ids) per the Section-3.2
    // candidate-reduction optimization.
    let max_votes = *votes.values().max().expect("non-empty votes");
    let mut candidates: Vec<NodeId> = votes
        .iter()
        .filter(|&(_, &c)| c == max_votes)
        .map(|(&n, _)| n)
        .collect();
    candidates.sort_unstable(); // deterministic tie-breaking
    candidates.truncate(MAX_CANDIDATES);
    // The group members themselves are always candidates: a member is at
    // distance 0 from itself, so for tight groups it is the closeness-
    // centrality optimum. (Vote counting alone can never propose members —
    // the sampled reach sets exclude the walk's start node — which is what
    // the paper's "probe the nearest neighbor nodes" refinement corrects.)
    for &m in group.iter().take(MAX_CANDIDATES) {
        if !candidates.contains(&m) {
            candidates.push(m);
        }
    }

    // Lines 8–14: evaluate closeness centrality per candidate, keep the best.
    let mut best = group[0];
    let mut best_c = f64::NEG_INFINITY;
    for cand in candidates {
        let c = closeness_centrality(g, cand, group, 2 * l);
        if c > best_c {
            best_c = c;
            best = cand;
        }
    }
    best
}

/// The paper's optional centroid refinement (Section 3.2, optimization 2):
/// "the identified central node … can be further adjusted by probing the
/// nearest neighbor nodes until the new centroid cannot be increased."
/// Greedy hill-climbing over out- and in-neighbors on closeness centrality,
/// bounded by `max_steps` moves.
pub fn refine_by_hill_climb(
    g: &CsrGraph,
    walks: &WalkIndex,
    start: NodeId,
    group: &[NodeId],
    max_steps: usize,
) -> NodeId {
    let max_depth = 2 * walks.l();
    let mut current = start;
    let mut current_c = closeness_centrality(g, current, group, max_depth);
    for _ in 0..max_steps {
        let mut best_neighbor = None;
        let mut best_c = current_c;
        for &n in g
            .out_neighbors(current)
            .iter()
            .chain(g.in_neighbors(current).iter())
        {
            let c = closeness_centrality(g, n, group, max_depth);
            if c > best_c {
                best_c = c;
                best_neighbor = Some(n);
            }
        }
        match best_neighbor {
            Some(n) => {
                current = n;
                current_c = best_c;
            }
            None => break, // local optimum: "cannot be increased"
        }
    }
    current
}

/// Closeness centrality of `v` for the group (Definition 3):
/// `|V_g| / Σ_j distance(v, v_j)`, distances truncated at `max_depth`
/// (members beyond it are charged `max_depth + 1`). A candidate co-located
/// with a member contributes distance 0; if the total distance is 0 the
/// centrality is `+∞` (the perfect center of a singleton group).
pub fn closeness_centrality(g: &CsrGraph, v: NodeId, group: &[NodeId], max_depth: usize) -> f64 {
    let dist = bounded_bfs_distances(g, v, group, max_depth);
    let total: usize = group
        .iter()
        .map(|m| dist.get(m).copied().unwrap_or(max_depth + 1))
        .sum();
    if total == 0 {
        f64::INFINITY
    } else {
        group.len() as f64 / total as f64
    }
}

/// Forward BFS from `source` over out-edges, stopping at `max_depth` or
/// after a fixed node-visit budget, returning distances for the
/// requested `targets` only (early exit once all are found).
pub fn bounded_bfs_distances(
    g: &CsrGraph,
    source: NodeId,
    targets: &[NodeId],
    max_depth: usize,
) -> FxHashMap<NodeId, usize> {
    let mut wanted: FxHashMap<NodeId, bool> = targets.iter().map(|&t| (t, false)).collect();
    let mut found: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut remaining = wanted.len();

    let mut dist: FxHashMap<NodeId, usize> = FxHashMap::default();
    dist.insert(source, 0);
    if let Some(flag) = wanted.get_mut(&source) {
        if !*flag {
            *flag = true;
            found.insert(source, 0);
            remaining -= 1;
        }
    }
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        if remaining == 0 || dist.len() >= MAX_BFS_VISITED {
            break;
        }
        let du = dist[&u];
        if du == max_depth {
            continue;
        }
        for &w in g.out_neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(du + 1);
                if let Some(flag) = wanted.get_mut(&w) {
                    if !*flag {
                        *flag = true;
                        found.insert(w, du + 1);
                        remaining -= 1;
                    }
                }
                queue.push_back(w);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::GraphBuilder;
    use pit_walk::WalkConfig;

    /// Star-in / star-out hub: hub 0 points to members 1..=4, feeders 5..=8
    /// point at the members too (so feeders also get votes).
    fn hub_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(9);
        for m in 1..=4u32 {
            b.add_edge(NodeId(0), NodeId(m), 0.5).unwrap();
        }
        for (f, m) in [(5u32, 1u32), (6, 2), (7, 3), (8, 4)] {
            b.add_edge(NodeId(f), NodeId(m), 0.5).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn hub_wins_centroid_vote() {
        let g = hub_graph();
        let walks = WalkIndex::build(&g, WalkConfig::new(2, 8));
        let group: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let central = select_central(&g, &walks, &group);
        // Node 0 reaches all four members (4 votes); each feeder reaches one.
        assert_eq!(central, NodeId(0));
    }

    #[test]
    fn singleton_group_centroid_is_the_member() {
        let g = hub_graph();
        let walks = WalkIndex::build(&g, WalkConfig::new(2, 8));
        // The member itself is at distance 0 — infinite closeness
        // centrality — so it beats every voted candidate.
        let central = select_central(&g, &walks, &[NodeId(2)]);
        assert_eq!(central, NodeId(2));
    }

    #[test]
    fn fallback_when_nothing_reaches_group() {
        let g = GraphBuilder::new(3).build().unwrap();
        let walks = WalkIndex::build(&g, WalkConfig::new(2, 4));
        assert_eq!(select_central(&g, &walks, &[NodeId(2)]), NodeId(2));
    }

    #[test]
    fn bfs_distances_truncate() {
        // Path 0→1→2→3→4.
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let d = bounded_bfs_distances(&g, NodeId(0), &[NodeId(2), NodeId(4)], 2);
        assert_eq!(d.get(&NodeId(2)), Some(&2));
        assert_eq!(d.get(&NodeId(4)), None, "depth 4 exceeds bound 2");
    }

    #[test]
    fn closeness_centrality_values() {
        // Path 0→1→2. Centrality of 0 for group {1,2}: 2 / (1+2) = 2/3.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        let g = b.build().unwrap();
        let c = closeness_centrality(&g, NodeId(0), &[NodeId(1), NodeId(2)], 4);
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
        // Unreachable member charged max_depth + 1 = 5.
        let c = closeness_centrality(&g, NodeId(2), &[NodeId(0)], 4);
        assert!((c - 1.0 / 5.0).abs() < 1e-12);
        // Self-distance 0 → infinite centrality for its own singleton group.
        assert!(closeness_centrality(&g, NodeId(1), &[NodeId(1)], 4).is_infinite());
    }

    #[test]
    fn hill_climb_moves_toward_the_group() {
        // Path 0→1→2→3→4 with group {3, 4}: starting at 0, each hop toward
        // the group strictly improves closeness, so refinement should end at
        // node 3 (distance 0 to 3, 1 to 4).
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let walks = WalkIndex::build(&g, WalkConfig::new(3, 4));
        let refined = refine_by_hill_climb(&g, &walks, NodeId(0), &[NodeId(3), NodeId(4)], 10);
        assert_eq!(refined, NodeId(3));
    }

    #[test]
    fn hill_climb_respects_step_budget() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let walks = WalkIndex::build(&g, WalkConfig::new(3, 4));
        // One step only: from 0 it can reach at most node 1.
        let refined = refine_by_hill_climb(&g, &walks, NodeId(0), &[NodeId(5)], 1);
        assert_eq!(refined, NodeId(1));
        // Zero steps: unchanged.
        let refined = refine_by_hill_climb(&g, &walks, NodeId(0), &[NodeId(5)], 0);
        assert_eq!(refined, NodeId(0));
    }

    #[test]
    fn hill_climb_stops_at_local_optimum() {
        // Star: center 0 → leaves 1..4; group = all leaves. Center is
        // optimal; refinement from the center must stay put.
        let mut b = GraphBuilder::new(5);
        for m in 1..=4u32 {
            b.add_edge(NodeId(0), NodeId(m), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let walks = WalkIndex::build(&g, WalkConfig::new(2, 4));
        let group: Vec<NodeId> = (1..=4).map(NodeId).collect();
        assert_eq!(
            refine_by_hill_climb(&g, &walks, NodeId(0), &group, 10),
            NodeId(0)
        );
    }

    #[test]
    fn centrality_prefers_closer_candidates() {
        // 0→2, 1→0→2 … candidate 0 is closer to {2} than candidate 1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(1), NodeId(0), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        let g = b.build().unwrap();
        let c0 = closeness_centrality(&g, NodeId(0), &[NodeId(2)], 4);
        let c1 = closeness_centrality(&g, NodeId(1), &[NodeId(2)], 4);
        assert!(c0 > c1);
    }
}
