//! **RCL-A** — approximate random clustering (Section 3, Algorithm 5).
//!
//! Offline pipeline per topic:
//! 1. cluster the topic nodes `V_t` by common probe reachability
//!    ([`grouping`], [`setree`] — Algorithms 1–3);
//! 2. select one central node per cluster by vote + closeness centrality
//!    ([`centroid`] — Algorithm 4);
//! 3. weight each central node by the fraction of topic nodes its cluster
//!    holds (Algorithm 5 line 5).
//!
//! The limitations the paper lists in Section 3.3 (influence skew between
//! large and small clusters, hard single-assignment, cost of centroid
//! computation) are exactly what LRW-A addresses; keeping RCL-A faithful —
//! including its cost profile — is required to reproduce Figures 15 and 16.

pub mod centroid;
pub mod grouping;
pub mod setree;

use crate::repset::RepresentativeSet;
use crate::{SummarizeContext, Summarizer};
use pit_graph::{NodeId, TopicId};
use setree::SeTree;

/// RCL-A parameters.
#[derive(Clone, Copy, Debug)]
pub struct RclConfig {
    /// Target number of clusters `C_Size` (Algorithm 1 input). The group-size
    /// cap of Algorithm 3 is `⌈|V_t| / c_size⌉`.
    pub c_size: usize,
    /// Probe sample rate `|V'| / |V|` (the paper evaluates 1 %, 5 %, 10 %).
    pub sample_rate: f64,
    /// Budget on set-enumeration tree nodes (practical cap; see
    /// [`setree::SeTree::build`]).
    pub max_tree_nodes: usize,
    /// Refine each selected centroid by greedy hill-climbing on closeness
    /// centrality over its graph neighbors — the paper's optional
    /// optimization (2) in Section 3.2. Off by default (the literal
    /// Algorithm 4); the `centroid-refine` ablation measures its effect.
    pub refine_centroids: bool,
    /// Cap on the number of topic nodes entering the O(|V_t|²) pairwise
    /// grouping. Head topics on large graphs can have tens of thousands of
    /// topic nodes; when `|V_t|` exceeds this cap a uniform sample of `V_t`
    /// is clustered instead and cluster weights are normalized over the
    /// sample — one more sampling layer on an already "approximate random
    /// clustering" (the cost limitation is one the paper itself lists in
    /// Section 3.3). Documented in DESIGN.md §6.
    pub max_cluster_input: usize,
    /// Seed for probe sampling and Rule-3 randomization.
    pub seed: u64,
}

impl Default for RclConfig {
    fn default() -> Self {
        RclConfig {
            c_size: 16,
            sample_rate: 0.05,
            max_tree_nodes: 100_000,
            refine_centroids: false,
            max_cluster_input: 256,
            seed: 0x0C1A_55ED,
        }
    }
}

/// The RCL-A summarizer (Algorithm 5, offline part).
#[derive(Clone, Debug)]
pub struct RclSummarizer {
    config: RclConfig,
}

impl RclSummarizer {
    /// Create a summarizer with the given configuration.
    pub fn new(config: RclConfig) -> Self {
        assert!(config.c_size >= 1, "need at least one cluster");
        assert!(
            (0.0..=1.0).contains(&config.sample_rate),
            "sample rate must be in [0,1]"
        );
        RclSummarizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RclConfig {
        &self.config
    }

    /// Cluster the topic nodes of `topic` (Algorithms 1–3) and return the
    /// clusters as node groups. Exposed for the clustering-quality tests and
    /// the ablation benchmarks.
    pub fn cluster_topic_nodes(
        &self,
        ctx: &SummarizeContext<'_>,
        topic: TopicId,
    ) -> Vec<Vec<NodeId>> {
        let full_vt = ctx.space.topic_nodes(topic);
        if full_vt.is_empty() {
            return Vec::new();
        }
        // Cap the pairwise-clustering input (see `RclConfig::max_cluster_input`).
        let sampled: Vec<pit_graph::NodeId>;
        let vt: &[pit_graph::NodeId] = if full_vt.len() > self.config.max_cluster_input {
            let stride = full_vt.len() as f64 / self.config.max_cluster_input as f64;
            sampled = (0..self.config.max_cluster_input)
                .map(|i| full_vt[(i as f64 * stride) as usize])
                .collect();
            &sampled
        } else {
            full_vt
        };
        let probe =
            grouping::sample_probe_set(ctx.graph, self.config.sample_rate, self.config.seed);
        let reaches = grouping::probe_reach(ctx.walks, &probe, vt);
        let labels = grouping::compute_labels(&reaches, probe.len(), self.config.seed ^ 0xA5A5);
        let max_group = vt.len().div_ceil(self.config.c_size);
        let tree = SeTree::build(&labels, max_group, self.config.max_tree_nodes);
        tree.no_overlap_grouping(max_group)
            .into_iter()
            .map(|idxs| idxs.into_iter().map(|i| vt[i as usize]).collect())
            .collect()
    }
}

impl Summarizer for RclSummarizer {
    fn summarize(&self, ctx: &SummarizeContext<'_>, topic: TopicId) -> RepresentativeSet {
        let vt = ctx.space.topic_nodes(topic);
        if vt.is_empty() {
            return RepresentativeSet::new(topic, Vec::new());
        }
        let groups = self.cluster_topic_nodes(ctx, topic);
        // Normalize over the clustered node count (= |V_t| unless the
        // pairwise cap sampled it down), keeping weights summing to 1.
        let m = groups.iter().map(Vec::len).sum::<usize>().max(1) as f64;
        let pairs = groups
            .iter()
            .map(|group| {
                let mut central = centroid::select_central(ctx.graph, ctx.walks, group);
                if self.config.refine_centroids {
                    central =
                        centroid::refine_by_hill_climb(ctx.graph, ctx.walks, central, group, 4);
                }
                (central, group.len() as f64 / m)
            })
            .collect();
        RepresentativeSet::new(topic, pairs)
    }

    fn name(&self) -> &'static str {
        "RCL-A"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::{fixtures, GraphBuilder};
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::{WalkConfig, WalkIndex};

    fn fig1_context() -> (pit_graph::CsrGraph, pit_topics::TopicSpace, WalkIndex) {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let topics = fixtures::figure1_topics();
        for nodes in &topics {
            let t = b.add_topic(vec![pit_graph::TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        let space = b.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(4, 16).with_seed(77));
        (g, space, walks)
    }

    #[test]
    fn clusters_partition_topic_nodes() {
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let rcl = RclSummarizer::new(RclConfig {
            c_size: 2,
            sample_rate: 1.0,
            ..RclConfig::default()
        });
        for t in space.topics() {
            let groups = rcl.cluster_topic_nodes(&ctx, t);
            let mut all: Vec<NodeId> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            let mut expected = space.topic_nodes(t).to_vec();
            expected.sort_unstable();
            assert_eq!(all, expected, "topic {t} clusters must partition V_t");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let rcl = RclSummarizer::new(RclConfig {
            c_size: 2,
            sample_rate: 1.0,
            ..RclConfig::default()
        });
        for t in space.topics() {
            let reps = rcl.summarize(&ctx, t);
            assert!(
                (reps.total_weight() - 1.0).abs() < 1e-9,
                "topic {t}: weights sum to {}",
                reps.total_weight()
            );
            assert!(!reps.is_empty());
        }
    }

    #[test]
    fn rep_count_tracks_c_size() {
        // A long path with one topic spread along it: more clusters requested
        // → at least as many representatives (clusters can only split).
        let n = 60;
        let mut b = GraphBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.9).unwrap();
        }
        let g = b.build().unwrap();
        let mut tb = TopicSpaceBuilder::new(n, 1);
        let t = tb.add_topic(vec![pit_graph::TermId(0)]);
        for i in (0..n as u32).step_by(3) {
            tb.assign(NodeId(i), t);
        }
        let space = tb.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(4, 8));
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let few = RclSummarizer::new(RclConfig {
            c_size: 2,
            sample_rate: 1.0,
            ..RclConfig::default()
        })
        .cluster_topic_nodes(&ctx, t)
        .len();
        let many = RclSummarizer::new(RclConfig {
            c_size: 10,
            sample_rate: 1.0,
            ..RclConfig::default()
        })
        .cluster_topic_nodes(&ctx, t)
        .len();
        assert!(many >= few, "c_size 10 gave {many} < c_size 2's {few}");
        assert!(many >= 7, "expected ≥ 7 clusters for c_size 10, got {many}");
    }

    #[test]
    fn empty_topic_is_empty_summary() {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let t = b.add_topic(vec![pit_graph::TermId(0)]);
        let space = b.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(3, 4));
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let rcl = RclSummarizer::new(RclConfig::default());
        assert!(rcl.summarize(&ctx, t).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_clusters_rejected() {
        let _ = RclSummarizer::new(RclConfig {
            c_size: 0,
            ..RclConfig::default()
        });
    }
}
