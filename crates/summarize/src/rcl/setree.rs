//! Set-enumeration tree (Algorithm 2) and no-overlap grouping (Algorithm 3).
//!
//! The SE-tree enumerates candidate topic-node groups in best-first order:
//! the root holds the empty set, its children are singletons in index order,
//! and a node `S` (with maximum element `i`) is extended with `j > i` when
//! `j` is pairwise grouped (GPLabel) with every member of `S` — the
//! `CHECK_GROUPING` of the paper, which merges a tree node with a right
//! sibling differing in exactly one element.
//!
//! Exhaustive enumeration is exponential on dense label matrices, so the tree
//! honors two practical caps, both configurable through
//! [`crate::rcl::RclConfig`]: a maximum group size (Algorithm 3 computes
//! `⌈|V_t| / C_Size⌉` anyway and discards larger sets) and a total node
//! budget. Capping only trims the candidate pool; `no_overlap_grouping`
//! still always produces a full partition because every singleton is present.

use super::grouping::GpLabels;

/// A set-enumeration tree over topic-node indices `0..n`.
#[derive(Clone, Debug)]
pub struct SeTree {
    /// `sets[k]` = sorted member indices of tree node `k`. Node 0 is the
    /// (empty) root.
    sets: Vec<Vec<u32>>,
    /// Children indices per tree node, in creation (left-to-right) order.
    children: Vec<Vec<u32>>,
}

impl SeTree {
    /// Build the tree (Algorithm 2) with caps.
    ///
    /// `max_group` bounds the member count of any tree node; `max_nodes`
    /// bounds the total number of tree nodes.
    pub fn build(labels: &GpLabels, max_group: usize, max_nodes: usize) -> Self {
        let n = labels.len();
        let mut tree = SeTree {
            sets: vec![Vec::new()],
            children: vec![Vec::new()],
        };
        // Root's children: every singleton, in index order.
        for i in 0..n {
            tree.push_child(0, vec![i as u32]);
        }
        // FIFO expansion: a node set S with max element i is extended by each
        // j > i grouped with all of S.
        let mut cursor = 1; // skip root
        while cursor < tree.sets.len() && tree.sets.len() < max_nodes {
            let set = tree.sets[cursor].clone();
            if set.len() < max_group {
                let max_elem = *set.last().expect("non-root sets are non-empty") as usize;
                for j in (max_elem + 1)..n {
                    if tree.sets.len() >= max_nodes {
                        break;
                    }
                    if set.iter().all(|&s| labels.grouped(s as usize, j)) {
                        let mut merged = set.clone();
                        merged.push(j as u32);
                        tree.push_child(cursor, merged);
                    }
                }
            }
            cursor += 1;
        }
        tree
    }

    fn push_child(&mut self, parent: usize, members: Vec<u32>) {
        let id = self.sets.len() as u32;
        self.sets.push(members);
        self.children.push(Vec::new());
        self.children[parent].push(id);
    }

    /// Total tree nodes including the root.
    pub fn node_count(&self) -> usize {
        self.sets.len()
    }

    /// The member set of tree node `k`.
    pub fn set(&self, k: usize) -> &[u32] {
        &self.sets[k]
    }

    /// No-overlap grouping (Algorithm 3): repeatedly take the left-most
    /// deepest surviving set of size ≤ `max_group` as a group, then remove
    /// its members everywhere. Returns a partition of `0..n`.
    pub fn no_overlap_grouping(&self, max_group: usize) -> Vec<Vec<u32>> {
        let n_tree = self.sets.len();
        // Working copies we can shrink.
        let mut live: Vec<Option<Vec<u32>>> = self.sets.iter().cloned().map(Some).collect();
        live[0] = None; // root never selected
        let mut used = vec![false; self.universe_size()];
        let mut groups: Vec<Vec<u32>> = Vec::new();

        // Left-most deepest first: DFS following first live child.
        while let Some(leaf) = self.leftmost_deepest_live(&live) {
            let set = live[leaf].take().expect("leaf chosen live");
            if set.len() > max_group || set.is_empty() {
                continue; // Algorithm 3: discard over-sized / emptied sets.
            }
            for &v in &set {
                used[v as usize] = true;
            }
            // Remove members from every other surviving set.
            for slot in live.iter_mut().take(n_tree).skip(1) {
                if let Some(s) = slot {
                    s.retain(|&v| !used[v as usize]);
                    if s.is_empty() {
                        *slot = None;
                    }
                }
            }
            groups.push(set);
        }

        // Safety net: any index never covered becomes its own group. (Cannot
        // happen when every singleton is in the tree, but the caps make this
        // worth guaranteeing.)
        for (v, &u) in used.iter().enumerate() {
            if !u {
                groups.push(vec![v as u32]);
            }
        }
        groups
    }

    fn universe_size(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .map(|&v| v as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Deepest node on the left-most live spine; prefers deeper (larger)
    /// sets, which is what lets Algorithm 3 emit multi-node groups before
    /// falling back to singletons.
    fn leftmost_deepest_live(&self, live: &[Option<Vec<u32>>]) -> Option<usize> {
        // Find first live child of root, then descend first live children.
        let mut current: Option<usize> = None;
        for &c in &self.children[0] {
            if live[c as usize].is_some() {
                current = Some(c as usize);
                break;
            }
        }
        let mut cur = current?;
        loop {
            let mut descended = false;
            for &c in &self.children[cur] {
                if live[c as usize].is_some() {
                    cur = c as usize;
                    descended = true;
                    break;
                }
            }
            if !descended {
                return Some(cur);
            }
        }
    }
}

#[cfg(test)]
impl GpLabels {
    /// Test-only setter mirroring the private `set`.
    pub(crate) fn set_for_test(&mut self, i: usize, j: usize) {
        // Reuse the internal representation through compute path: we are in
        // the same crate, so reach into the private field via a helper.
        self.set(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rcl::grouping::GpLabels;

    /// Labels where the given pairs (and only those) are grouped.
    fn labels_with(n: usize, pairs: &[(usize, usize)]) -> GpLabels {
        // GpLabels has no public setter; rebuild through compute-free path.
        let mut l = GpLabels::new(n);
        for &(i, j) in pairs {
            l.set_for_test(i, j);
        }
        l
    }

    #[test]
    fn tree_enumerates_cliques() {
        // 0-1-2 fully grouped, 3 isolated.
        let labels = labels_with(4, &[(0, 1), (0, 2), (1, 2)]);
        let tree = SeTree::build(&labels, 4, 1000);
        let sets: Vec<&[u32]> = (0..tree.node_count()).map(|k| tree.set(k)).collect();
        assert!(sets.contains(&&[0u32, 1, 2][..]));
        assert!(sets.contains(&&[0u32, 1][..]));
        assert!(sets.contains(&&[3u32][..]));
        // {0,3} must not exist.
        assert!(!sets.contains(&&[0u32, 3][..]));
    }

    #[test]
    fn tree_respects_group_cap() {
        let labels = labels_with(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
        let tree = SeTree::build(&labels, 2, 1000);
        for k in 0..tree.node_count() {
            assert!(tree.set(k).len() <= 2);
        }
    }

    #[test]
    fn tree_respects_node_budget() {
        let n = 12;
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let labels = labels_with(n, &pairs);
        let tree = SeTree::build(&labels, n, 40);
        assert!(tree.node_count() <= 40);
    }

    #[test]
    fn no_overlap_is_a_partition() {
        let labels = labels_with(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let tree = SeTree::build(&labels, 3, 1000);
        let groups = tree.no_overlap_grouping(3);
        let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4], "groups must partition the nodes");
        // The clique should surface as one group.
        assert!(groups.iter().any(|g| g == &vec![0, 1, 2]));
        assert!(groups.iter().any(|g| g == &vec![3, 4]));
    }

    #[test]
    fn oversized_sets_are_discarded_not_grouped() {
        // Full clique of 4 but max_group 2 at grouping time: partition into
        // pairs/singletons, never a 3+-set.
        let labels = labels_with(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
        let tree = SeTree::build(&labels, 4, 1000);
        let groups = tree.no_overlap_grouping(2);
        assert!(groups.iter().all(|g| g.len() <= 2));
        let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let labels = labels_with(3, &[]);
        let tree = SeTree::build(&labels, 3, 1000);
        let groups = tree.no_overlap_grouping(3);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn empty_universe() {
        let labels = labels_with(0, &[]);
        let tree = SeTree::build(&labels, 3, 100);
        assert!(tree.no_overlap_grouping(3).is_empty());
    }
}
