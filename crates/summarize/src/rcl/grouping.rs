//! Grouping probabilities and the GPLabel matrix (Algorithm 1, lines 1–21).
//!
//! Two topic nodes are grouped when enough sampled probe nodes can reach both
//! of them within `L` hops. The three grouping variants of Section 3.1:
//!
//! * `GP+(u,v)` — fraction of probes reaching **both** `u` and `v`;
//! * `GP−(u,v)` — fraction reaching exactly one of them;
//! * `GP*(u,v) = 1 − GP+ − GP−` — fraction reaching neither ("don't know").
//!
//! Rules (Section 3.1):
//! 1. group if `GP+ ≥ GP−` and `GP+ ≥ GP*`;
//! 2. split if `GP− ≥ GP+` and `GP− ≥ GP*`;
//! 3. otherwise (when `GP* > GP+ ≥ GP−`) group with probability
//!    `GP+ / (GP+ + GP*) = GP+ / (1 − GP−)` (Property 1 guarantees this
//!    favors grouping whenever `GP+ ≥ GP−`);
//! 4. hard clustering — enforced later by `NO_OVERLAP_GROUPING`.

use pit_graph::{CsrGraph, NodeId};
use pit_walk::WalkIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample the probe set `V' ⊆ V` with per-node probability proportional to
/// degree (Section 6.1: "each node is sampled with a probability proportional
/// to the degree of the node"). Expected size ≈ `rate · |V|`. Sorted output.
pub fn sample_probe_set(g: &CsrGraph, rate: f64, seed: u64) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&rate), "sample rate must be in [0,1]");
    let n = g.node_count();
    let total_degree: usize = g.nodes().map(|u| g.out_degree(u) + g.in_degree(u)).sum();
    if total_degree == 0 || rate == 0.0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let scale = rate * n as f64 / total_degree as f64;
    let mut probe = Vec::with_capacity((rate * n as f64) as usize + 1);
    for u in g.nodes() {
        let d = (g.out_degree(u) + g.in_degree(u)) as f64;
        let p = (d * scale).min(1.0);
        if rng.gen::<f64>() < p {
            probe.push(u);
        }
    }
    probe
}

/// For each node in `nodes`, the sorted intersection of its reach set
/// `I_L[node]` (walk origins reaching it within `L` hops) with `probe`
/// (which must be sorted).
pub fn probe_reach(walks: &WalkIndex, probe: &[NodeId], nodes: &[NodeId]) -> Vec<Vec<NodeId>> {
    debug_assert!(
        probe.windows(2).all(|w| w[0] < w[1]),
        "probe must be sorted"
    );
    nodes
        .iter()
        .map(|&v| {
            let reach = walks.reach_set(v);
            intersect_sorted(reach, probe)
        })
        .collect()
}

/// `(GP+, GP−)` for two probe-restricted reach sets (both sorted).
/// `GP* = 1 − GP+ − GP−`.
pub fn grouping_probs(ru: &[NodeId], rv: &[NodeId], probe_size: usize) -> (f64, f64) {
    if probe_size == 0 {
        return (0.0, 0.0);
    }
    let common = count_intersection(ru, rv);
    let only_u = ru.len() - common;
    let only_v = rv.len() - common;
    let denom = probe_size as f64;
    (common as f64 / denom, (only_u + only_v) as f64 / denom)
}

/// Symmetric boolean matrix: `labels[u][v] == true` means the pair is grouped.
#[derive(Clone, Debug)]
pub struct GpLabels {
    n: usize,
    bits: Vec<bool>,
}

impl GpLabels {
    /// All-false matrix over `n` topic nodes.
    pub fn new(n: usize) -> Self {
        GpLabels {
            n,
            bits: vec![false; n * n],
        }
    }

    /// Number of topic nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether topic-node indices `i` and `j` are grouped. `(i, i)` is true
    /// by convention.
    #[inline]
    pub fn grouped(&self, i: usize, j: usize) -> bool {
        i == j || self.bits[i * self.n + j]
    }

    pub(crate) fn set(&mut self, i: usize, j: usize) {
        self.bits[i * self.n + j] = true;
        self.bits[j * self.n + i] = true;
    }
}

/// Compute the GPLabel matrix over the topic nodes whose probe-restricted
/// reach sets are given (Algorithm 1 lines 5–21).
pub fn compute_labels(reaches: &[Vec<NodeId>], probe_size: usize, seed: u64) -> GpLabels {
    let n = reaches.len();
    let mut labels = GpLabels::new(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n {
        for j in (i + 1)..n {
            let (gp, gm) = grouping_probs(&reaches[i], &reaches[j], probe_size);
            if apply_rules(gp, gm, &mut rng) {
                labels.set(i, j);
            }
        }
    }
    labels
}

/// Rules 1–3 on a single pair. Returns whether the pair is grouped.
pub(crate) fn apply_rules(gp: f64, gm: f64, rng: &mut SmallRng) -> bool {
    let gstar = (1.0 - gp - gm).max(0.0);
    if gp >= gm && gp >= gstar {
        true // Rule 1
    } else if gm >= gp && gm >= gstar {
        false // Rule 2
    } else if gp >= gm {
        // Rule 3: GP* dominates; group probabilistically.
        let pr = if 1.0 - gm > 0.0 { gp / (1.0 - gm) } else { 0.0 };
        rng.gen::<f64>() <= pr
    } else {
        false
    }
}

/// Sorted-slice intersection (allocating).
fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Sorted-slice intersection size (non-allocating).
fn count_intersection(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::GraphBuilder;
    use pit_walk::WalkConfig;

    #[test]
    fn grouping_probs_basic() {
        let ru = vec![NodeId(0), NodeId(1), NodeId(2)];
        let rv = vec![NodeId(1), NodeId(2), NodeId(3)];
        let (gp, gm) = grouping_probs(&ru, &rv, 10);
        assert!((gp - 0.2).abs() < 1e-12); // {1,2} common
        assert!((gm - 0.2).abs() < 1e-12); // {0} and {3}
    }

    #[test]
    fn grouping_probs_empty_probe() {
        assert_eq!(grouping_probs(&[], &[], 0), (0.0, 0.0));
    }

    #[test]
    fn rule1_groups_clear_in() {
        let mut rng = SmallRng::seed_from_u64(1);
        // GP+ = 0.6, GP- = 0.1, GP* = 0.3 → rule 1.
        assert!(apply_rules(0.6, 0.1, &mut rng));
    }

    #[test]
    fn rule2_splits_clear_out() {
        let mut rng = SmallRng::seed_from_u64(1);
        // GP- dominates.
        assert!(!apply_rules(0.1, 0.6, &mut rng));
    }

    #[test]
    fn rule3_is_probabilistic() {
        // GP+ = 0.2, GP- = 0.1, GP* = 0.7 → rule 3 with Pr = 0.2/0.9 ≈ 0.22.
        let mut yes = 0;
        for seed in 0..2000 {
            let mut rng = SmallRng::seed_from_u64(seed);
            if apply_rules(0.2, 0.1, &mut rng) {
                yes += 1;
            }
        }
        let frac = yes as f64 / 2000.0;
        assert!(
            (frac - 0.2 / 0.9).abs() < 0.05,
            "rule-3 acceptance {frac} far from expected {}",
            0.2 / 0.9
        );
    }

    #[test]
    fn property1_grouping_beats_splitting_probability() {
        // Property 1: if GP+ ≥ GP−, then GP+/(GP+ + GP*) ≥ GP−/(GP− + GP*).
        for &(gp, gm) in &[(0.2f64, 0.1f64), (0.3, 0.3), (0.05, 0.0), (0.4, 0.2)] {
            let gs = 1.0 - gp - gm;
            if gp >= gm && gs > 0.0 {
                assert!(
                    gp / (gp + gs) >= gm / (gm + gs) - 1e-12,
                    "property 1 violated at ({gp}, {gm})"
                );
            }
        }
    }

    #[test]
    fn probe_sampling_scales_with_rate() {
        let mut b = GraphBuilder::new(500);
        for i in 0..499u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let small = sample_probe_set(&g, 0.05, 42).len();
        let large = sample_probe_set(&g, 0.5, 42).len();
        assert!(large > small);
        // Expected sizes ~25 and ~250.
        assert!((5..=70).contains(&small), "small probe = {small}");
        assert!((150..=400).contains(&large), "large probe = {large}");
    }

    #[test]
    fn probe_sampling_prefers_high_degree() {
        // Star: node 0 has degree 200, leaves degree 1. Over many seeds node 0
        // must be sampled far more often than any single leaf.
        let mut b = GraphBuilder::new(201);
        for i in 1..=200u32 {
            b.add_edge(NodeId(i), NodeId(0), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let mut hub = 0;
        let mut leaf = 0;
        for seed in 0..200 {
            let probe = sample_probe_set(&g, 0.05, seed);
            if probe.contains(&NodeId(0)) {
                hub += 1;
            }
            if probe.contains(&NodeId(7)) {
                leaf += 1;
            }
        }
        assert!(hub > 150, "hub sampled only {hub}/200");
        assert!(leaf < hub / 2, "leaf sampled {leaf} vs hub {hub}");
    }

    #[test]
    fn probe_reach_intersects_with_probe() {
        // Path 0→1→2→3; probe = {0, 2}; reach(3) within L=3 = {0,1,2};
        // restricted = {0, 2}.
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let walks = WalkIndex::build(&g, WalkConfig::new(3, 2));
        let probe = vec![NodeId(0), NodeId(2)];
        let reaches = probe_reach(&walks, &probe, &[NodeId(3)]);
        assert_eq!(reaches[0], vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn labels_symmetric_and_reflexive() {
        let reaches = vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(5)],
        ];
        let labels = compute_labels(&reaches, 4, 9);
        assert!(labels.grouped(0, 0));
        assert_eq!(labels.grouped(0, 1), labels.grouped(1, 0));
        // Nodes 0 and 1 share their whole probe reach: GP+ = 0.5, GP- = 0,
        // GP* = 0.5 → rule 1 groups them.
        assert!(labels.grouped(0, 1));
        // Node 2 shares nothing with 0: GP+ = 0, GP- = 0.75 ≥ GP* → split.
        assert!(!labels.grouped(0, 2));
    }
}
